//! The pruning engine: drives one collection per call, dispatching on the
//! state machine, and owns the edge table, the current selection, and the
//! deferred out-of-memory error.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lp_gc::{trace, CollectionOutcome, Collector, IncrementalMarker, QuantumReport, TraceAll};
use lp_heap::{Heap, RootSet};
use lp_telemetry::{EdgeShare, Event, SpanGuard, Telemetry};

use crate::closures::{
    InUseVisitor, MostStaleVisitor, ObserveVisitor, PruneVisitor, Selection, StaleVisitor,
};
use crate::config::{PredictionPolicy, PruningConfig};
use crate::edge_table::{EdgeKey, EdgeTable};
use crate::error::OutOfMemoryError;
use crate::liveness::{LivenessSummaries, Signal, StaticVerdicts, EMPTY_VERDICTS};
use crate::par_closures::{par_select_mark, ParObserveVisitor, ParPruneVisitor};
use crate::record::{GcRecord, SelectionInfo};
use crate::state::{next_state, State, TransitionContext};

pub(crate) struct Pruner {
    state: State,
    table: EdgeTable,
    policy: PredictionPolicy,
    expected_threshold: f64,
    nearly_full_threshold: f64,
    prune_only_when_full: bool,
    forced: Option<State>,
    pruning_enabled: bool,
    selection: Option<SelectionInfo>,
    averted_oom: Option<OutOfMemoryError>,
    exhausted_once: bool,
    /// The current SELECT (and the PRUNE that follows it) was entered
    /// early, on static verdicts alone, with occupancy still below the
    /// nearly-full threshold. Candidacy is then restricted to
    /// statically-covered edges: dynamic staleness has not yet earned the
    /// right to prune (see [`crate::state`]'s module docs).
    select_static_only: bool,
    /// Per-edge pruned-reference counts. A hash map because PRUNE
    /// collections update it on the hot path; anything user-facing sorts at
    /// report time ([`crate::Runtime::prune_report`]), so iteration order
    /// never leaks out.
    pruned_census: HashMap<EdgeKey, u64>,
    total_pruned_refs: u64,
    /// Collections between which the mutator ran — the clock staleness
    /// counters tick on. Consecutive collections inside one allocation
    /// stall share a clock value (the program could not have used
    /// anything in between).
    stale_clock: u64,
    decay_period: Option<u64>,
    select_collections: u64,
    /// Static liveness summaries loaded from
    /// [`PruningConfig::liveness_summaries`], kept so classes registered
    /// at any point pick up their verdicts.
    summaries: Option<LivenessSummaries>,
    /// The per-class-index verdict table the hybrid SELECT probes, filled
    /// from `summaries` as the runtime registers classes.
    statics: StaticVerdicts,
    /// The in-flight incremental mark cycle, if one is active. Only
    /// INACTIVE and OBSERVE collections run incrementally; SELECT and
    /// PRUNE need an atomic view of staleness and stay stop-the-world.
    cycle: Option<IncrementalCycle>,
    /// Span covering the in-flight incremental cycle, from
    /// [`Pruner::begin_incremental_cycle`] to the terminal events of the
    /// flush. Detached (no stack parent): the cycle outlives the
    /// `collect_until_fits` scope that opened it, so parenting it there
    /// would break well-nesting. Quantum and flush spans parent under it
    /// explicitly. Inert when no cycle is active.
    cycle_span: SpanGuard,
    /// Shared event bus (the runtime's); state transitions, SELECT
    /// decisions and exhaustion events go out on it.
    telemetry: Telemetry,
}

/// State of one in-flight incremental full collection: the marker's
/// worklist plus everything [`Pruner::collect`] would otherwise compute at
/// a single stop-the-world point — the state and staleness clock are
/// snapshotted at cycle start so every quantum observes with the same
/// clock, and the collection is attributed to the state it *began* in.
struct IncrementalCycle {
    marker: IncrementalMarker,
    state: State,
    observing: bool,
    stale_clock: Option<u64>,
    gc_index: u64,
    /// Accumulated marking wall time across the start scan and quanta.
    mark_time: Duration,
}

impl Pruner {
    pub fn new(config: &PruningConfig, telemetry: Telemetry) -> Self {
        let forced = config.forced_state().map(|f| f.as_state());
        let summaries = config.liveness_summaries().and_then(|path| {
            match LivenessSummaries::load(path) {
                Ok(loaded) => Some(loaded),
                Err(err) => {
                    // Degrade, don't crash: a missing or malformed summary
                    // file falls back to the purely dynamic policy, exactly
                    // like an empty verdict table.
                    eprintln!(
                        "leak-pruning: ignoring liveness summaries {}: {err}",
                        path.display()
                    );
                    None
                }
            }
        });
        Pruner {
            state: forced.unwrap_or(State::Inactive),
            table: EdgeTable::new(config.edge_table_slots()),
            policy: config.policy(),
            expected_threshold: config.expected_threshold(),
            nearly_full_threshold: config.nearly_full_threshold(),
            prune_only_when_full: config.prune_only_when_full(),
            forced,
            pruning_enabled: config.pruning_enabled(),
            selection: None,
            averted_oom: None,
            exhausted_once: false,
            select_static_only: false,
            pruned_census: HashMap::new(),
            total_pruned_refs: 0,
            stale_clock: 0,
            decay_period: config.decay_max_stale_use_every(),
            select_collections: 0,
            summaries,
            statics: StaticVerdicts::empty(),
            cycle: None,
            cycle_span: SpanGuard::inert(),
            telemetry,
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    pub fn table(&self) -> &EdgeTable {
        &self.table
    }

    pub fn averted_oom(&self) -> Option<&OutOfMemoryError> {
        self.averted_oom.as_ref()
    }

    pub fn pruned_census(&self) -> &HashMap<EdgeKey, u64> {
        &self.pruned_census
    }

    /// The selection the last SELECT collection committed, while it is
    /// still the active prune target.
    pub fn selection(&self) -> Option<&SelectionInfo> {
        self.selection.as_ref()
    }

    pub fn total_pruned_refs(&self) -> u64 {
        self.total_pruned_refs
    }

    /// Installs the loaded static liveness verdicts for a newly registered
    /// class (called by [`Runtime::register_class`](crate::Runtime)).
    /// Name-keyed summaries resolve to the class index here, once, so the
    /// mark-path probe is two array indexes.
    pub fn note_class(&mut self, class: lp_heap::ClassId, name: &str) {
        if let Some(summaries) = &self.summaries {
            self.statics.note_class(class, name, summaries);
        }
    }

    /// Number of (class, field) static verdicts installed so far.
    pub fn static_verdicts_installed(&self) -> usize {
        self.statics.installed()
    }

    /// Whether barriers should maintain the edge table (every state but
    /// INACTIVE).
    pub fn observing(&self) -> bool {
        self.state.observes()
    }

    /// Captures the pruner's mutable state for a checkpoint. Config-derived
    /// fields (policy, thresholds, forced state, decay period, summaries)
    /// are deliberately absent: restore rebuilds them from the same
    /// [`PruningConfig`], so an image can never smuggle in a policy the
    /// config did not ask for. Census and edge rows are sorted so the image
    /// — and any fingerprint over it — is independent of hash-map and
    /// hash-table iteration order.
    ///
    /// # Panics
    ///
    /// Panics if an incremental mark cycle is in flight: a half-marked
    /// cycle has no serializable meaning, and every checkpoint entry point
    /// closes the cycle first (the quiescence rule).
    pub fn image(&self) -> crate::recovery::PrunerImage {
        assert!(
            self.cycle.is_none(),
            "cannot capture a pruner image mid-incremental-cycle"
        );
        let mut pruned_census: Vec<(u32, u32, u64)> = self
            .pruned_census
            .iter()
            .map(|(key, &refs)| (key.src.index(), key.tgt.index(), refs))
            .collect();
        pruned_census.sort_unstable();
        let mut edges: Vec<(u32, u32, u8)> = self
            .table
            .iter()
            .map(|entry| {
                (
                    entry.key.src.index(),
                    entry.key.tgt.index(),
                    entry.max_stale_use,
                )
            })
            .collect();
        edges.sort_unstable();
        crate::recovery::PrunerImage {
            state: self.state.name().to_owned(),
            exhausted_once: self.exhausted_once,
            select_static_only: self.select_static_only,
            averted_oom: self
                .averted_oom
                .as_ref()
                .map(|oom| crate::recovery::OomImage {
                    gc_index: oom.gc_index(),
                    used_bytes: oom.used_bytes(),
                    capacity: oom.capacity(),
                }),
            selection: self
                .selection
                .as_ref()
                .map(crate::recovery::SelectionImage::from_info),
            pruned_census,
            total_pruned_refs: self.total_pruned_refs,
            stale_clock: self.stale_clock,
            select_collections: self.select_collections,
            edges,
        }
    }

    /// Reinstates the mutable state captured by [`Pruner::image`] into a
    /// freshly constructed pruner. The edge table is rebuilt entry by entry
    /// through [`EdgeTable::note_stale_use`], which is exact: `bytes_used`
    /// windows are zero at every quiescent point (reset after each SELECT),
    /// so `max_stale_use` is the only per-edge state a checkpoint carries.
    ///
    /// # Errors
    ///
    /// Returns the offending name when `image.state` is not one of the four
    /// Figure-2 names.
    pub fn restore_image(&mut self, image: &crate::recovery::PrunerImage) -> Result<(), String> {
        let state = State::from_name(&image.state).ok_or_else(|| image.state.clone())?;
        self.state = state;
        self.exhausted_once = image.exhausted_once;
        self.select_static_only = image.select_static_only;
        self.averted_oom = image
            .averted_oom
            .as_ref()
            .map(|oom| OutOfMemoryError::new(oom.gc_index, oom.used_bytes, oom.capacity));
        self.selection = image.selection.as_ref().map(|s| s.to_info());
        self.pruned_census = image
            .pruned_census
            .iter()
            .map(|&(src, tgt, refs)| {
                (
                    EdgeKey::new(
                        lp_heap::ClassId::from_index(src),
                        lp_heap::ClassId::from_index(tgt),
                    ),
                    refs,
                )
            })
            .collect();
        self.total_pruned_refs = image.total_pruned_refs;
        self.stale_clock = image.stale_clock;
        self.select_collections = image.select_collections;
        self.table = EdgeTable::new(self.table.capacity());
        for &(src, tgt, max_stale_use) in &image.edges {
            // `note_stale_use` with 0 still claims the slot, so edges the
            // program recorded but never used stale keep their census row.
            self.table.note_stale_use(
                EdgeKey::new(
                    lp_heap::ClassId::from_index(src),
                    lp_heap::ClassId::from_index(tgt),
                ),
                max_stale_use,
            );
        }
        Ok(())
    }

    /// Records that the program truly exhausted memory (an allocation still
    /// failed after a collection).
    ///
    /// Exhaustion is the strongest form of "nearly run out of memory", so
    /// it forces the state machine into SELECT even when occupancy sits
    /// below the nearly-full threshold — the case of a program whose
    /// allocation bursts are larger than the threshold headroom, which §3.1
    /// frames as "the VM is about to throw an out-of-memory error".
    pub fn note_exhausted(&mut self, gc_index: u64, used: u64, capacity: u64) {
        self.exhausted_once = true;
        self.telemetry.emit(|| Event::Exhausted {
            gc_index,
            used_bytes: used,
            capacity,
        });
        if self.averted_oom.is_none() {
            self.averted_oom = Some(OutOfMemoryError::new(gc_index, used, capacity));
        }
        if self.pruning_enabled
            && self.forced.is_none()
            && matches!(self.state, State::Inactive | State::Observe)
        {
            let from = self.state;
            self.state = State::Select;
            // A real exhaustion justifies the full dynamic candidate test,
            // whatever occupancy the sweep reaches afterwards.
            self.select_static_only = false;
            self.telemetry.emit(|| Event::StateTransition {
                gc_index,
                from: from.name(),
                to: State::Select.name(),
                occupancy: if capacity == 0 {
                    1.0
                } else {
                    used as f64 / capacity as f64
                },
                expected_threshold: self.expected_threshold,
                nearly_full_threshold: self.nearly_full_threshold,
                exhausted_once: true,
            });
        }
    }

    /// Performs one full-heap collection appropriate to the current state
    /// and advances the state machine. Returns the collection record and
    /// the classes of finalizable objects the sweep reclaimed.
    pub fn collect(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        collector: &mut Collector,
        marker_threads: usize,
        mutator_ran: bool,
    ) -> (GcRecord, lp_heap::FinalizeLog) {
        let state = self.state;
        let stale_clock = if mutator_ran {
            self.stale_clock += 1;
            Some(self.stale_clock)
        } else {
            None
        };

        let (outcome, pruned_refs, selected) = if !self.pruning_enabled {
            (
                self.collect_base(heap, roots, collector, marker_threads),
                0,
                None,
            )
        } else {
            match state {
                State::Inactive => (
                    self.collect_base(heap, roots, collector, marker_threads),
                    0,
                    None,
                ),
                State::Observe => {
                    if marker_threads > 1 {
                        let visitor = ParObserveVisitor { stale_clock };
                        (
                            collector.collect_parallel(heap, roots, &visitor, marker_threads),
                            0,
                            None,
                        )
                    } else {
                        let mut visitor = ObserveVisitor { stale_clock };
                        (collector.collect(heap, roots, &mut visitor), 0, None)
                    }
                }
                State::Select => {
                    let (outcome, info) =
                        self.collect_select(heap, roots, collector, stale_clock, marker_threads);
                    self.selection = info;
                    (outcome, 0, info)
                }
                State::Prune => {
                    let (outcome, pruned) =
                        self.collect_prune(heap, roots, collector, stale_clock, marker_threads);
                    (outcome, pruned, None)
                }
            }
        };

        // Full collections always carry an index; `None` is the minor
        // collector's marker and never reaches this path.
        let gc_index = outcome.gc_index.unwrap_or_default();
        self.advance_state(state, heap, gc_index);

        let mut outcome = outcome;
        let finalized = std::mem::take(&mut outcome.swept.finalized);
        let record = GcRecord {
            gc_index,
            state,
            live_bytes_after: outcome.live_bytes_after,
            live_objects_after: outcome.live_objects_after,
            freed_bytes: outcome.swept.freed_bytes,
            freed_objects: outcome.swept.freed_objects,
            pruned_refs,
            selected,
            mark_time: outcome.mark_time,
            sweep_time: outcome.sweep_time,
            flush_time: None,
        };
        (record, finalized)
    }

    /// Whether an incremental mark cycle is in flight.
    pub fn incremental_active(&self) -> bool {
        self.cycle.is_some()
    }

    /// Starts an incremental full collection if the current state admits
    /// one: snapshots the state and staleness clock, opens the mark epoch,
    /// activates the SATB log, and marks the roots grey. Returns `false`
    /// (and starts nothing) in SELECT or PRUNE, whose closures need an
    /// atomic view of staleness — the caller falls back to
    /// [`Pruner::collect`].
    pub fn begin_incremental_cycle(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        collector: &mut Collector,
        budget: usize,
        mutator_ran: bool,
    ) -> bool {
        debug_assert!(self.cycle.is_none(), "incremental cycle already active");
        let state = self.state;
        if self.pruning_enabled && matches!(state, State::Select | State::Prune) {
            return false;
        }
        let observing = self.pruning_enabled && state == State::Observe;
        let stale_clock = if mutator_ran {
            self.stale_clock += 1;
            Some(self.stale_clock)
        } else {
            None
        };
        let gc_index = collector.begin_incremental(heap);
        let started = Instant::now();
        let marker = if observing {
            let mut visitor = ObserveVisitor { stale_clock };
            IncrementalMarker::start(heap, roots, budget, &mut visitor)
        } else {
            IncrementalMarker::start(heap, roots, budget, &mut TraceAll)
        };
        self.cycle = Some(IncrementalCycle {
            marker,
            state,
            observing,
            stale_clock,
            gc_index,
            mark_time: started.elapsed(),
        });
        self.cycle_span = self.telemetry.span_detached("cycle", gc_index);
        true
    }

    /// Runs one bounded mark quantum of the active cycle and emits its
    /// telemetry. `None` with no active cycle; the report's `done` flag
    /// says the worklist is drained and [`Pruner::finish_cycle`] can run.
    pub fn cycle_quantum(&mut self, heap: &mut Heap) -> Option<QuantumReport> {
        let cycle = self.cycle.as_mut()?;
        let _quantum_span = self
            .telemetry
            .span_under(&self.cycle_span, "quantum", cycle.gc_index);
        let started = Instant::now();
        let report = if cycle.observing {
            let mut visitor = ObserveVisitor {
                stale_clock: cycle.stale_clock,
            };
            cycle.marker.quantum(heap, &mut visitor)
        } else {
            cycle.marker.quantum(heap, &mut TraceAll)
        };
        let elapsed = started.elapsed();
        cycle.mark_time += elapsed;
        let gc_index = cycle.gc_index;
        self.telemetry.emit(|| Event::MarkQuantum {
            gc_index,
            objects: report.objects,
            bytes: report.bytes,
            satb_drained: report.satb_drained,
            nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        });
        Some(report)
    }

    /// Closes the active cycle: a short stop-the-world flush (drain the
    /// SATB log, re-scan the roots, finish the closure), then the sweep.
    /// Returns the collection record exactly like [`Pruner::collect`],
    /// with `flush_time` carrying the terminal pause's mark component.
    /// `None` with no active cycle.
    pub fn finish_cycle(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        collector: &mut Collector,
    ) -> Option<(GcRecord, lp_heap::FinalizeLog)> {
        let mut cycle = self.cycle.take()?;
        let flush_span = self
            .telemetry
            .span_under(&self.cycle_span, "flush", cycle.gc_index);
        let flush_started = Instant::now();
        if cycle.observing {
            let mut visitor = ObserveVisitor {
                stale_clock: cycle.stale_clock,
            };
            cycle.marker.flush(heap, roots, &mut visitor);
        } else {
            cycle.marker.flush(heap, roots, &mut TraceAll);
        }
        let flush_time = flush_started.elapsed();
        drop(flush_span);
        let mark_time = cycle.mark_time + flush_time;

        let outcome = collector.finish_incremental(
            heap,
            cycle.gc_index,
            cycle.marker.stats(),
            mark_time,
            cycle.marker.quanta(),
            cycle.marker.budget_overruns(),
        );
        self.advance_state(cycle.state, heap, cycle.gc_index);

        let mut outcome = outcome;
        let finalized = std::mem::take(&mut outcome.swept.finalized);
        let record = GcRecord {
            gc_index: cycle.gc_index,
            state: cycle.state,
            live_bytes_after: outcome.live_bytes_after,
            live_objects_after: outcome.live_objects_after,
            freed_bytes: outcome.swept.freed_bytes,
            freed_objects: outcome.swept.freed_objects,
            pruned_refs: 0,
            selected: None,
            mark_time: outcome.mark_time,
            sweep_time: outcome.sweep_time,
            flush_time: Some(flush_time),
        };
        Some((record, finalized))
    }

    /// Closes the cycle span opened by
    /// [`Pruner::begin_incremental_cycle`]. The runtime calls this after
    /// emitting the cycle's terminal `Collection` events so they land
    /// inside the span; dropping the pruner closes it as a fallback,
    /// keeping traces balanced even on abandoned cycles.
    pub fn close_cycle_span(&mut self) {
        self.cycle_span = SpanGuard::inert();
    }

    fn advance_state(&mut self, performed: State, heap: &Heap, gc_index: u64) {
        if let Some(forced) = self.forced {
            self.state = forced;
            return;
        }
        if !self.pruning_enabled {
            return;
        }
        let ctx = TransitionContext {
            occupancy: heap.occupancy(),
            expected_threshold: self.expected_threshold,
            nearly_full_threshold: self.nearly_full_threshold,
            prune_only_when_full: self.prune_only_when_full,
            exhausted_once: self.exhausted_once,
            // Only the default policy runs the hybrid candidate test, so
            // only it may take the early OBSERVE→SELECT edge.
            static_verdicts: self.policy == PredictionPolicy::LeakPruning
                && self.statics.installed() > 0,
        };
        let next = next_state(performed, &ctx);
        match next {
            // Entering SELECT below the nearly-full threshold can only
            // happen on the static early edge; restrict candidacy
            // accordingly. A genuine exhaustion unlocks the full test.
            State::Select => {
                self.select_static_only = ctx.static_verdicts
                    && ctx.occupancy <= ctx.nearly_full_threshold
                    && !self.exhausted_once;
            }
            // The PRUNE that consumes a SELECT's selection keeps its mode
            // so re-discovery matches what was charged.
            State::Prune => {}
            State::Inactive | State::Observe => self.select_static_only = false,
        }
        if next != performed {
            let _state_span = self.telemetry.span("state", gc_index);
            self.telemetry.emit(|| Event::StateTransition {
                gc_index,
                from: performed.name(),
                to: next.name(),
                occupancy: ctx.occupancy,
                expected_threshold: ctx.expected_threshold,
                nearly_full_threshold: ctx.nearly_full_threshold,
                exhausted_once: ctx.exhausted_once,
            });
        }
        if next == State::Prune && self.averted_oom.is_none() {
            // Under option (2) the first PRUNE is entered before a literal
            // exhaustion; the "nearly full" threshold plays the role of the
            // maximum heap size (§3.1), so the deferred error is recorded
            // here.
            self.averted_oom = Some(OutOfMemoryError::new(
                gc_index,
                heap.used_bytes(),
                heap.capacity(),
            ));
        }
        self.state = next;
    }

    fn collect_base(
        &self,
        heap: &mut Heap,
        roots: &RootSet,
        collector: &mut Collector,
        marker_threads: usize,
    ) -> CollectionOutcome {
        if marker_threads > 1 {
            collector.collect_parallel(heap, roots, &TraceAll, marker_threads)
        } else {
            collector.collect(heap, roots, &mut TraceAll)
        }
    }

    fn collect_select(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        collector: &mut Collector,
        stale_clock: Option<u64>,
        marker_threads: usize,
    ) -> (CollectionOutcome, Option<SelectionInfo>) {
        let policy = self.policy;
        self.select_collections += 1;
        if let Some(period) = self.decay_period {
            if self.select_collections.is_multiple_of(period) {
                // The phased-behaviour extension: forget one level of
                // recorded use so long-finished phases stop protecting
                // their data structures forever.
                self.table.decay_max_stale_use();
            }
        }
        let table = &self.table;
        // Only the default policy runs the hybrid test; the §6.1
        // comparison policies stay purely dynamic.
        let statics = &self.statics;
        let static_only = self.select_static_only;
        let telemetry = &self.telemetry;
        // The selection events below are emitted from inside the mark
        // closure, where the collector has already claimed this index.
        let gc_index = collector.next_gc_index();
        let _select_span = telemetry.span("select", gc_index);
        let mut info = None;

        let root_handles: Vec<lp_heap::Handle> = roots.iter().collect();
        let outcome = collector.collect_with(heap, |heap| match policy {
            // The parallel path mirrors MMTk's shared-pool trace (§4.5);
            // only the default policy is parallelized — the comparison
            // policies of §6.1 stay serial.
            PredictionPolicy::LeakPruning if marker_threads > 1 => {
                let (stats, candidates) = par_select_mark(
                    heap,
                    &root_handles,
                    table,
                    statics,
                    stale_clock,
                    static_only,
                    marker_threads,
                );
                if let Some((edge, bytes)) = table.select_max_bytes() {
                    let signal = fold_signals(
                        candidates
                            .iter()
                            .filter(|c| c.edge == edge)
                            .map(|c| c.signal),
                    );
                    info = Some(SelectionInfo::Edge { edge, bytes });
                    emit_selection(telemetry, table, gc_index, edge, bytes, signal);
                }
                table.reset_bytes();
                stats
            }
            PredictionPolicy::LeakPruning => {
                // Phase 1: the in-use closure, deferring candidates.
                let mut in_use = InUseVisitor::new(stale_clock, table, statics);
                in_use.static_only = static_only;
                let mut stats = trace(heap, roots.iter(), &mut in_use);

                // Phase 2: the stale closure. Processing candidates in
                // queue order sizes each stale data structure; subtrees
                // already marked (in use, or claimed by an earlier
                // candidate) charge nothing.
                let mut stale = StaleVisitor { stale_clock };
                for candidate in &in_use.candidates {
                    if heap.is_marked(candidate.target.slot()) {
                        continue;
                    }
                    // The root itself may have been deferred twice via two
                    // different references; `trace` marks it exactly once.
                    let subtree = trace(heap, [candidate.target], &mut stale);
                    table.add_bytes(candidate.edge, subtree.bytes_marked);
                    stats = stats.merged(subtree);
                }

                if let Some((edge, bytes)) = table.select_max_bytes() {
                    let signal = fold_signals(
                        in_use
                            .candidates
                            .iter()
                            .filter(|c| c.edge == edge)
                            .map(|c| c.signal),
                    );
                    info = Some(SelectionInfo::Edge { edge, bytes });
                    emit_selection(telemetry, table, gc_index, edge, bytes, signal);
                }
                table.reset_bytes();
                stats
            }
            PredictionPolicy::IndividualRefs => {
                let mut visitor = crate::closures::IndividualRefsVisitor { stale_clock, table };
                let stats = trace(heap, roots.iter(), &mut visitor);
                if let Some((edge, bytes)) = table.select_max_bytes() {
                    info = Some(SelectionInfo::Edge { edge, bytes });
                    emit_selection(telemetry, table, gc_index, edge, bytes, Signal::Stale);
                }
                table.reset_bytes();
                stats
            }
            PredictionPolicy::MostStale => {
                let mut visitor = MostStaleVisitor {
                    stale_clock,
                    max_stale: 0,
                };
                let stats = trace(heap, roots.iter(), &mut visitor);
                if visitor.max_stale >= 2 {
                    info = Some(SelectionInfo::StaleLevel(visitor.max_stale));
                    telemetry.emit(|| Event::SelectionStale {
                        gc_index,
                        level: visitor.max_stale,
                    });
                }
                stats
            }
        });

        (outcome, info)
    }

    fn collect_prune(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        collector: &mut Collector,
        stale_clock: Option<u64>,
        marker_threads: usize,
    ) -> (CollectionOutcome, u64) {
        let Some(selected) = self.selection.take() else {
            // Nothing was selectable; fall back to an observing collection.
            let mut visitor = ObserveVisitor { stale_clock };
            return (collector.collect(heap, roots, &mut visitor), 0);
        };

        let _prune_span = self.telemetry.span("prune", collector.next_gc_index());
        let selection: Selection = selected.selection();
        let table = &self.table;
        // PRUNE must re-discover exactly the candidates SELECT charged, so
        // it consults the verdict table only under the default policy.
        let statics = match self.policy {
            PredictionPolicy::LeakPruning => &self.statics,
            _ => &EMPTY_VERDICTS,
        };

        let static_only = self.select_static_only;
        let (outcome, pruned_map) = if marker_threads > 1 {
            let mut visitor = ParPruneVisitor::new(stale_clock, table, statics, selection);
            visitor.static_only = static_only;
            let outcome = collector.collect_parallel(heap, roots, &visitor, marker_threads);
            (outcome, visitor.into_pruned())
        } else {
            let mut visitor = PruneVisitor::new(stale_clock, table, statics, selection);
            visitor.static_only = static_only;
            let outcome =
                collector.collect_with(heap, |heap| trace(heap, roots.iter(), &mut visitor));
            (outcome, visitor.pruned)
        };

        let pruned: u64 = pruned_map.values().sum();
        for (edge, count) in &pruned_map {
            *self.pruned_census.entry(*edge).or_insert(0) += count;
        }
        self.total_pruned_refs += pruned;
        (outcome, pruned)
    }
}

/// Folds the per-candidate signals of the selected edge into the edge's
/// winning signal: all-dynamic stays `Stale`, all-static stays `Static`,
/// any mix is `Both`. An edge can only win with charged candidates, so the
/// empty default is unreachable in practice; `Stale` keeps it on the
/// baseline event shape.
fn fold_signals(signals: impl Iterator<Item = Signal>) -> Signal {
    signals.reduce(Signal::merged).unwrap_or(Signal::Stale)
}

/// Emits a SELECT decision with the runner-up edges it beat (read before
/// `reset_bytes` wipes the window), so selection is explainable from the
/// trace alone. Purely dynamic selections keep the paper-era
/// `SelectionEdge` shape; selections the static signal participated in
/// become `SelectionStatic`, recording which signal won.
fn emit_selection(
    telemetry: &Telemetry,
    table: &EdgeTable,
    gc_index: u64,
    edge: EdgeKey,
    bytes: u64,
    signal: Signal,
) {
    let runners_up = || {
        table
            .top_bytes(4)
            .into_iter()
            .filter(|(key, _)| *key != edge)
            .take(3)
            .map(|(key, edge_bytes)| EdgeShare {
                src: key.src.index(),
                tgt: key.tgt.index(),
                bytes: edge_bytes,
            })
            .collect()
    };
    match signal {
        Signal::Stale => telemetry.emit(|| Event::SelectionEdge {
            gc_index,
            src: edge.src.index(),
            tgt: edge.tgt.index(),
            bytes,
            runners_up: runners_up(),
        }),
        participated => telemetry.emit(|| Event::SelectionStatic {
            gc_index,
            src: edge.src.index(),
            tgt: edge.tgt.index(),
            bytes,
            signal: participated.name(),
            runners_up: runners_up(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ForcedState;
    use lp_heap::{AllocSpec, ClassRegistry, Handle, TaggedRef};

    /// Builds the exact heap of Figures 3-5 and checks that SELECT chooses
    /// B -> C with the bytes of the two stale subtrees, and that PRUNE then
    /// poisons b1->c1, b3->c3 and b4->c4 while e1's subtree survives.
    #[test]
    fn paper_figure5_worked_example() {
        let mut classes = ClassRegistry::new();
        let (a, b, c, d, e) = (
            classes.register("A"),
            classes.register("B"),
            classes.register("C"),
            classes.register("D"),
            classes.register("E"),
        );

        let mut heap = Heap::new(1 << 20);
        let mut roots = RootSet::new();

        let alloc =
            |heap: &mut Heap, cls, refs| heap.alloc(cls, &AllocSpec::with_refs(refs)).unwrap();
        let a1 = alloc(&mut heap, a, 4);
        let e1 = alloc(&mut heap, e, 1);
        let bs: Vec<Handle> = (0..4).map(|_| alloc(&mut heap, b, 1)).collect();
        let c1 = alloc(&mut heap, c, 2);
        let c2 = alloc(&mut heap, c, 0);
        let c3 = alloc(&mut heap, c, 2);
        let c4 = alloc(&mut heap, c, 2);
        let ds: Vec<Handle> = (0..6).map(|_| alloc(&mut heap, d, 0)).collect();

        // Roots -> a1, e1 (in-use references: no unlogged bit).
        let ra = roots.add_static();
        let re = roots.add_static();
        roots.set_static(ra, Some(a1));
        roots.set_static(re, Some(e1));

        // a1 -> b1..b4 in use (the program walks them).
        for (i, bi) in bs.iter().enumerate() {
            heap.object(a1).store_ref(i, TaggedRef::from_handle(*bi));
        }
        // b -> c references are stale (unlogged bit set).
        let stale_ref = |h: Handle| TaggedRef::from_handle(h).with_unlogged();
        heap.object(bs[0]).store_ref(0, stale_ref(c1));
        heap.object(bs[1]).store_ref(0, stale_ref(c2));
        heap.object(bs[2]).store_ref(0, stale_ref(c3));
        heap.object(bs[3]).store_ref(0, stale_ref(c4));
        // e1 -> c4 is also stale, but E->C has maxstaleuse 2.
        heap.object(e1).store_ref(0, stale_ref(c4));
        // Subtrees.
        heap.object(c1).store_ref(0, stale_ref(ds[0]));
        heap.object(c1).store_ref(1, stale_ref(ds[1]));
        heap.object(c3).store_ref(0, stale_ref(ds[2]));
        heap.object(c3).store_ref(1, stale_ref(ds[3]));
        heap.object(c4).store_ref(0, stale_ref(ds[4]));
        heap.object(c4).store_ref(1, stale_ref(ds[5]));

        // Stale counters from the figure.
        heap.object(c1).set_stale(4);
        heap.object(c2).set_stale(1);
        heap.object(c3).set_stale(4);
        heap.object(c4).set_stale(3);
        for di in &ds {
            heap.object(*di).set_stale(4);
        }

        let config = PruningConfig::builder(1 << 20).build();
        let mut pruner = Pruner::new(&config, Telemetry::new());
        // The program once used an E->C reference at staleness 2.
        pruner.table.note_stale_use(EdgeKey::new(e, c), 2);
        // Start in SELECT (the heap is "nearly full" by assumption).
        pruner.state = State::Select;

        let mut collector = Collector::new();
        let (record, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert_eq!(record.state, State::Select);

        let expected_bytes: u64 = [c1, ds[0], ds[1], c3, ds[2], ds[3]]
            .iter()
            .map(|h| u64::from(heap.object(*h).footprint()))
            .sum();
        match record.selected {
            Some(SelectionInfo::Edge { edge, bytes }) => {
                assert_eq!(edge, EdgeKey::new(b, c), "B->C has the most stale bytes");
                assert_eq!(bytes, expected_bytes, "c4's subtree is in use via e1");
            }
            other => panic!("expected an edge selection, got {other:?}"),
        }
        // SELECT retains everything.
        assert_eq!(record.freed_objects, 0);
        assert_eq!(pruner.state(), State::Prune, "option (2): prune next");

        // PRUNE: b1->c1, b3->c3 and b4->c4 are poisoned; c4's subtree
        // survives through e1 (Figure 4).
        let (record, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert_eq!(record.state, State::Prune);
        assert_eq!(record.pruned_refs, 3);
        assert!(heap.object(bs[0]).load_ref(0).is_poisoned());
        assert!(
            !heap.object(bs[1]).load_ref(0).is_poisoned(),
            "c2 not stale enough"
        );
        assert!(heap.object(bs[2]).load_ref(0).is_poisoned());
        assert!(heap.object(bs[3]).load_ref(0).is_poisoned());
        assert!(
            !heap.object(e1).load_ref(0).is_poisoned(),
            "E->C protected by maxstaleuse"
        );

        assert!(
            !heap.contains(c1) && !heap.contains(c3),
            "stale subtrees reclaimed"
        );
        assert!(!heap.contains(ds[0]) && !heap.contains(ds[3]));
        assert!(heap.contains(c4) && heap.contains(ds[4]) && heap.contains(ds[5]));
        assert_eq!(record.freed_objects, 6);
        assert_eq!(pruner.total_pruned_refs(), 3);
        assert!(
            pruner.averted_oom().is_some(),
            "deferred error recorded at first PRUNE"
        );
    }

    /// A certainly-dead verdict lets SELECT choose an edge whose target is
    /// only at staleness 1 — far below the dynamic `max_stale_use + 2`
    /// threshold — and PRUNE poisons it. The decision goes out as a
    /// `SelectionStatic` event with the `static` signal; purely dynamic
    /// runs never emit that kind.
    #[test]
    fn static_verdict_selects_and_prunes_before_dynamic_threshold() {
        let mut classes = ClassRegistry::new();
        let registry = classes.register("session.Registry");
        let record = classes.register("session.Record");

        let mut heap = Heap::new(1 << 20);
        let mut roots = RootSet::new();
        let r1 = heap.alloc(registry, &AllocSpec::with_refs(1)).unwrap();
        let root = roots.add_static();
        roots.set_static(root, Some(r1));
        let rec1 = heap.alloc(record, &AllocSpec::with_refs(0)).unwrap();
        heap.object(r1)
            .store_ref(0, TaggedRef::from_handle(rec1).with_unlogged());
        heap.object(rec1).set_stale(1);

        let config = PruningConfig::builder(1 << 20).build();
        let telemetry = Telemetry::with_recorder(64);
        let mut pruner = Pruner::new(&config, telemetry.clone());
        pruner.statics.install_verdict(registry, 0, 1);
        pruner.state = State::Select;

        let mut collector = Collector::new();
        let (rec, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        match rec.selected {
            Some(SelectionInfo::Edge { edge, bytes }) => {
                assert_eq!(edge, EdgeKey::new(registry, record));
                assert!(bytes > 0);
            }
            other => panic!("expected an edge selection, got {other:?}"),
        }
        let statics: Vec<&'static str> = telemetry
            .recorder_snapshot()
            .iter()
            .filter_map(|l| match l.event {
                Event::SelectionStatic { signal, .. } => Some(signal),
                _ => None,
            })
            .collect();
        assert_eq!(statics, ["static"], "the static signal won alone");

        assert_eq!(pruner.state(), State::Prune);
        let (rec, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert_eq!(rec.pruned_refs, 1);
        assert!(heap.object(r1).load_ref(0).is_poisoned());
        assert!(!heap.contains(rec1), "statically dead record reclaimed");
    }

    /// When the selected edge has both a dynamic-threshold candidate and a
    /// static-verdict candidate, the winning signal is `both`.
    #[test]
    fn mixed_candidates_report_both_signal() {
        let mut classes = ClassRegistry::new();
        let registry = classes.register("Registry");
        let record = classes.register("Record");

        let mut heap = Heap::new(1 << 20);
        let mut roots = RootSet::new();
        let r1 = heap.alloc(registry, &AllocSpec::with_refs(2)).unwrap();
        let root = roots.add_static();
        roots.set_static(root, Some(r1));
        // Field 0: static-only candidate (stale 1, verdict installed).
        let young = heap.alloc(record, &AllocSpec::with_refs(0)).unwrap();
        heap.object(r1)
            .store_ref(0, TaggedRef::from_handle(young).with_unlogged());
        heap.object(young).set_stale(1);
        // Field 1: dynamic-only candidate (stale 4, no verdict).
        let old = heap.alloc(record, &AllocSpec::with_refs(0)).unwrap();
        heap.object(r1)
            .store_ref(1, TaggedRef::from_handle(old).with_unlogged());
        heap.object(old).set_stale(4);

        let config = PruningConfig::builder(1 << 20).build();
        let telemetry = Telemetry::with_recorder(64);
        let mut pruner = Pruner::new(&config, telemetry.clone());
        pruner.statics.install_verdict(registry, 0, 1);
        pruner.state = State::Select;

        let mut collector = Collector::new();
        let (rec, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert!(matches!(rec.selected, Some(SelectionInfo::Edge { .. })));
        let statics: Vec<&'static str> = telemetry
            .recorder_snapshot()
            .iter()
            .filter_map(|l| match l.event {
                Event::SelectionStatic { signal, .. } => Some(signal),
                _ => None,
            })
            .collect();
        assert_eq!(statics, ["both"]);

        // PRUNE poisons both candidate references of the selected edge.
        let (rec, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert_eq!(rec.pruned_refs, 2);
    }

    /// Without any verdict installed, SELECT still emits the paper-era
    /// `SelectionEdge` event — the trace shape of dynamic-only runs is
    /// unchanged by the hybrid machinery.
    #[test]
    fn dynamic_only_selection_keeps_baseline_event_shape() {
        let mut classes = ClassRegistry::new();
        let registry = classes.register("Registry");
        let record = classes.register("Record");

        let mut heap = Heap::new(1 << 20);
        let mut roots = RootSet::new();
        let r1 = heap.alloc(registry, &AllocSpec::with_refs(1)).unwrap();
        let root = roots.add_static();
        roots.set_static(root, Some(r1));
        let old = heap.alloc(record, &AllocSpec::with_refs(0)).unwrap();
        heap.object(r1)
            .store_ref(0, TaggedRef::from_handle(old).with_unlogged());
        heap.object(old).set_stale(4);

        let config = PruningConfig::builder(1 << 20).build();
        let telemetry = Telemetry::with_recorder(64);
        let mut pruner = Pruner::new(&config, telemetry.clone());
        pruner.state = State::Select;

        let mut collector = Collector::new();
        let (rec, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert!(matches!(rec.selected, Some(SelectionInfo::Edge { .. })));
        let lines = telemetry.recorder_snapshot();
        assert!(lines
            .iter()
            .any(|l| matches!(l.event, Event::SelectionEdge { .. })));
        assert!(!lines
            .iter()
            .any(|l| matches!(l.event, Event::SelectionStatic { .. })));
    }

    #[test]
    fn forced_state_never_advances() {
        let config = PruningConfig::builder(1024)
            .force_state(ForcedState::Select)
            .build();
        let mut pruner = Pruner::new(&config, Telemetry::new());
        let mut heap = Heap::new(1024);
        let roots = RootSet::new();
        let mut collector = Collector::new();
        for _ in 0..3 {
            let (record, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
            assert_eq!(record.state, State::Select);
        }
        assert_eq!(pruner.state(), State::Select);
        assert!(pruner.averted_oom().is_none(), "forced SELECT never prunes");
    }

    #[test]
    fn disabled_pruning_keeps_state_inactive() {
        let config = PruningConfig::base(1024);
        let mut pruner = Pruner::new(&config, Telemetry::new());
        let mut heap = Heap::new(64); // tiny: always "full"
        let roots = RootSet::new();
        let mut collector = Collector::new();
        let (record, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert_eq!(record.state, State::Inactive);
        assert_eq!(pruner.state(), State::Inactive);
    }

    #[test]
    fn prune_without_selection_degrades_to_observe() {
        let config = PruningConfig::builder(1 << 20).build();
        let mut pruner = Pruner::new(&config, Telemetry::new());
        pruner.state = State::Prune;
        let mut heap = Heap::new(1 << 20);
        let roots = RootSet::new();
        let mut collector = Collector::new();
        let (record, _) = pruner.collect(&mut heap, &roots, &mut collector, 1, true);
        assert_eq!(record.pruned_refs, 0);
        assert_eq!(record.state, State::Prune);
        // Empty heap: occupancy 0 -> back to OBSERVE.
        assert_eq!(pruner.state(), State::Observe);
    }
}
