//! The [`Runtime`] facade: the "virtual machine" mutator programs run on.
//!
//! The runtime ties together the heap, the root set, the collector, and the
//! pruning engine, and implements the two instrumentation points the paper
//! adds to the VM:
//!
//! * **Allocation** ([`Runtime::alloc`]): when an allocation does not fit,
//!   the runtime collects; if memory stays exhausted it escalates through
//!   the state machine (OBSERVE → SELECT → PRUNE), reclaiming predicted-dead
//!   data structures instead of throwing — and only surfaces an
//!   [`OutOfMemoryError`](crate::OutOfMemoryError) once pruning can make no
//!   further progress.
//! * **Reference loads** ([`Runtime::read_field`]): the conditional read
//!   barrier of §4.1/§4.4 — poisoned reference → error carrying the deferred
//!   out-of-memory error; unlogged reference → clear the bit, record
//!   `max_stale_use` if the target was stale, zero the target's stale
//!   counter.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use lp_diagnose::{
    Capture, HeapSnapshot, PostmortemBundle, PostmortemContext, PrunedEdgeMeta, PrunerView,
    SelectedPrune,
};
use lp_gc::{Collector, GcStats};
use lp_heap::{
    AllocSpec, ClassId, ClassRegistry, FrameId, Handle, Heap, RootSet, StaticId, TaggedRef,
};
use lp_telemetry::json::JsonValue;
use lp_telemetry::{CensusEntry, Event, Telemetry};

use crate::config::{BarrierMode, PruningConfig};
use crate::edge_table::{EdgeKey, EdgeTable};
use crate::engine::Pruner;
use crate::error::{OutOfMemoryError, PrunedAccessError, RuntimeError};
use crate::record::{GcRecord, SelectionInfo};
use crate::report::{PruneReport, PrunedEdge};
use crate::state::State;

/// Mutator-side instrumentation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutatorCounters {
    /// Reference-field loads executed ([`Runtime::read_field`] calls).
    pub ref_reads: u64,
    /// Loads that took the barrier's out-of-line cold path (a tag bit was
    /// set). The paper's barrier design makes this at most once per
    /// reference per collection.
    pub barrier_cold_hits: u64,
    /// Cold-path hits that updated an edge's `max_stale_use` (target was
    /// stale when used).
    pub stale_use_updates: u64,
    /// Loads that threw because the reference (or its whole target object)
    /// had been pruned.
    pub pruned_access_throws: u64,
    /// Finalizers run.
    pub finalizers_run: u64,
    /// Finalizers skipped because pruning had started and
    /// [`run_finalizers_after_prune`](crate::PruningConfig::run_finalizers_after_prune)
    /// is off.
    pub finalizers_skipped: u64,
    /// Minor (nursery) collections performed (generational configuration
    /// only).
    pub minor_collections: u64,
    /// Old-to-young stores recorded by the generational write barrier.
    pub remembered_stores: u64,
}

/// A managed runtime with leak pruning.
///
/// # Example
///
/// ```
/// use leak_pruning::{PruningConfig, Runtime};
/// use lp_heap::AllocSpec;
///
/// let mut rt = Runtime::new(PruningConfig::builder(1 << 20).build());
/// let list = rt.register_class("List");
/// let node = rt.register_class("Node");
///
/// let head = rt.alloc(list, &AllocSpec::with_refs(1))?;
/// let global = rt.add_static();
/// rt.set_static(global, Some(head));
///
/// let n = rt.alloc(node, &AllocSpec::with_refs(1))?;
/// rt.write_field(head, 0, Some(n));
/// assert_eq!(rt.read_field(head, 0)?, Some(n));
/// # Ok::<(), leak_pruning::RuntimeError>(())
/// ```
pub struct Runtime {
    config: PruningConfig,
    classes: ClassRegistry,
    heap: Heap,
    roots: RootSet,
    collector: Collector,
    pruner: Pruner,
    history: Vec<GcRecord>,
    counters: MutatorCounters,
    finalizer_hook: Option<Box<dyn FnMut(ClassId) + Send>>,
    /// Bytes allocated since the last collection — one measure of mutator
    /// progress gating the staleness clock.
    bytes_since_gc: u64,
    /// Reference loads since the last collection — the other measure.
    reads_since_gc: u64,
    /// Heap usage at the end of the last full collection, for the
    /// generational full-collection trigger.
    used_at_last_full: u64,
    /// The runtime's event bus. Heap, collector and pruner hold clones, so
    /// one attached sink sees allocation, GC-phase, state-machine and
    /// per-collection events on a single sequenced stream.
    telemetry: Telemetry,
    /// Counter values at the last `CounterDelta` emission, so each event
    /// carries deltas rather than cumulative totals.
    counters_at_last_emit: MutatorCounters,
    /// Whether the one-shot exhaustion snapshot
    /// ([`PruningConfig::snapshot_on_exhaustion`]) has been written.
    exhaustion_snapshot_done: bool,
    /// Collection index at which the last postmortem bundle was written,
    /// per trigger tag — the rate limiter for automatic bundles.
    postmortem_last: HashMap<String, u64>,
    /// Bundles successfully written over the runtime's lifetime.
    postmortem_count: u64,
    /// Path of the most recently written bundle.
    postmortem_latest: Option<PathBuf>,
    /// Edge trigger for allocation-driven incremental cycles: set while
    /// free space sits above the start threshold, cleared when a cycle
    /// starts. Firing only on the armed->low transition means a cycle
    /// whose sweep fails to recover headroom is not immediately followed
    /// by another full mark — the next collection comes from exhaustion,
    /// where the escalation logic lives, exactly as in stop-the-world
    /// mode.
    incremental_armed: bool,
}

/// Fraction of the heap the mutator must allocate between two collections
/// for the second to age objects (1/16 of capacity).
const MUTATOR_PROGRESS_DIVISOR: u64 = 16;

/// Alternatively, reference loads between two collections that count as
/// mutator progress — programs under memory pressure allocate little but
/// still *use* their data.
///
/// Collections separated by neither signal (allocation stalls, or the §6.3
/// grind where every allocation collects) give the program no real chance
/// to use anything, so aging objects across them would turn hot data into
/// pruning candidates.
const MUTATOR_PROGRESS_READS: u64 = 32;

/// Minimum full-heap collections between two automatic postmortem bundles
/// of the same trigger. A prune storm exhausts memory on every allocation
/// for a while; one bundle per storm is evidence, one per allocation is a
/// disk-filling denial of service against ourselves. Manual requests
/// ([`Runtime::write_postmortem`]) bypass the limit.
const POSTMORTEM_MIN_GC_INTERVAL: u64 = 32;

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("state", &self.state())
            .field("used_bytes", &self.heap.used_bytes())
            .field("capacity", &self.heap.capacity())
            .field("collections", &self.collector.collections())
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: PruningConfig) -> Self {
        // Every full-heap collection — allocation-triggered, forced, and the
        // pruner's SELECT/PRUNE collections — goes through this one
        // collector, so configuring it here plumbs the sweep parallelism
        // everywhere.
        let mut collector = Collector::new();
        collector.set_sweep_threads(config.sweep_threads());
        // One bus for the whole runtime: the heap (alloc/free events and the
        // collector's phase spans) and the pruner (state machine, selection)
        // hold clones, so everything lands on a single sequenced stream.
        let telemetry = Telemetry::new();
        if let Some(slots) = config.flight_recorder_slots() {
            telemetry.enable_recorder(slots);
        }
        let mut heap = Heap::new(config.heap_capacity());
        heap.set_telemetry(telemetry.clone());
        Runtime {
            heap,
            pruner: Pruner::new(&config, telemetry.clone()),
            classes: ClassRegistry::new(),
            roots: RootSet::new(),
            collector,
            history: Vec::new(),
            counters: MutatorCounters::default(),
            finalizer_hook: None,
            bytes_since_gc: 0,
            reads_since_gc: 0,
            used_at_last_full: 0,
            telemetry,
            counters_at_last_emit: MutatorCounters::default(),
            exhaustion_snapshot_done: false,
            postmortem_last: HashMap::new(),
            postmortem_count: 0,
            postmortem_latest: None,
            incremental_armed: true,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// The runtime's event bus. Attach sinks or a flight recorder here; all
    /// components (heap, collector, pruner, workload drivers) share it.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    // ----- classes --------------------------------------------------------

    /// Interns a class name.
    pub fn register_class(&mut self, name: &str) -> ClassId {
        let id = self.classes.register(name);
        // Traces are self-describing: replay tools resolve the raw class
        // indices later events carry from these registrations.
        self.telemetry.emit(|| Event::ClassReg {
            class: id.index(),
            name: name.to_owned(),
        });
        // Static liveness verdicts are keyed by class name; resolve them to
        // this class index once, here, so the SELECT probe never compares
        // strings.
        self.pruner.note_class(id, name);
        id
    }

    /// Number of (class, field) static liveness verdicts installed for the
    /// classes registered so far (see
    /// [`PruningConfig::liveness_summaries`]). Zero when no summary file
    /// is loaded — the purely dynamic baseline.
    pub fn static_verdicts_installed(&self) -> usize {
        self.pruner.static_verdicts_installed()
    }

    /// The class registry.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Name of a registered class.
    pub fn class_name(&self, id: ClassId) -> &str {
        self.classes.name(id)
    }

    // ----- roots -----------------------------------------------------------

    /// Adds a static (global) root slot.
    pub fn add_static(&mut self) -> StaticId {
        self.roots.add_static()
    }

    /// Reads a static slot. Statics hold plain handles ("registers"), so no
    /// read barrier applies.
    pub fn static_ref(&self, id: StaticId) -> Option<Handle> {
        self.roots.static_ref(id)
    }

    /// Re-derives the id of static slot `index` after a restore — slot
    /// numbering survives [`Runtime::restore_from`] exactly, so a program
    /// that added its statics in a known order reattaches them here. `None`
    /// if no such slot exists.
    pub fn static_id(&self, index: u32) -> Option<StaticId> {
        self.roots.static_id(index)
    }

    /// Re-derives the id of live frame `index` after a restore (see
    /// [`Runtime::static_id`]).
    pub fn frame_id(&self, index: u32) -> Option<FrameId> {
        self.roots.frame_id(index)
    }

    /// Writes a static slot.
    pub fn set_static(&mut self, id: StaticId, value: Option<Handle>) {
        self.roots.set_static(id, value);
    }

    /// Pushes a stack frame with `slots` local reference slots (e.g. a
    /// thread the program spawned).
    pub fn push_frame(&mut self, slots: usize) -> FrameId {
        self.roots.push_frame(slots)
    }

    /// Pops a stack frame.
    pub fn pop_frame(&mut self, id: FrameId) {
        self.roots.pop_frame(id);
    }

    /// Reads a frame slot (no barrier; frames are registers).
    pub fn frame_ref(&self, id: FrameId, index: usize) -> Option<Handle> {
        self.roots.frame_ref(id, index)
    }

    /// Writes a frame slot.
    pub fn set_frame_ref(&mut self, id: FrameId, index: usize, value: Option<Handle>) {
        self.roots.set_frame_ref(id, index, value);
    }

    // ----- allocation ------------------------------------------------------

    /// Allocates an object, collecting — and, when enabled, pruning — as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutOfMemory`] when the heap stays exhausted
    /// after collection and pruning cannot reclaim enough memory (or is
    /// disabled).
    pub fn alloc(&mut self, class: ClassId, spec: &AllocSpec) -> Result<Handle, RuntimeError> {
        let bytes = u64::from(spec.footprint());
        // Generational fast path: when the nursery fills, a cheap minor
        // collection reclaims the short-lived majority without a full
        // trace. Leak pruning is untouched by minor collections (§5: the
        // paper's collector is generational; pruning piggybacks on
        // full-heap collections only).
        // Incremental mode: one bounded mark quantum per allocation slice
        // keeps the cycle progressing at mutator speed.
        self.pump_incremental();
        if let Some(fraction) = self.config.nursery_fraction() {
            let nursery_capacity = (self.heap.capacity() as f64 * fraction) as u64;
            // Minor collections are suppressed while an incremental cycle
            // is active: they would open a new mark epoch and destroy the
            // cycle's marks. The cycle's own sweep empties the nursery.
            if self.heap.young_bytes().saturating_add(bytes) > nursery_capacity
                && !self.pruner.incremental_active()
            {
                self.run_minor_collection();
                // Old-generation growth triggers full collections (the
                // standard generational heuristic): without it, minor
                // collections would defer the first full-heap collection —
                // and with it all staleness observation — until the heap
                // is nearly exhausted. In incremental mode the same
                // trigger starts a cycle from `pump_incremental` instead.
                let growth_step = self.heap.capacity() / 8;
                if self.config.incremental_mark_budget().is_none()
                    && self.heap.used_bytes() > self.used_at_last_full.saturating_add(growth_step)
                {
                    self.run_collection(false);
                }
            }
        }
        if !self.heap.fits(bytes) {
            self.collect_until_fits(bytes)?;
        }
        let handle = self
            .heap
            .alloc(class, spec)
            .expect("heap has room after collection");
        self.bytes_since_gc += bytes;
        // The new object lives in a mutator register until the program
        // stores it somewhere; the register file keeps it rooted across
        // collections triggered mid-construction.
        self.roots.note_allocation(handle);
        Ok(handle)
    }

    /// Allocates an object that carries a finalizer.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::alloc`].
    pub fn alloc_finalizable(
        &mut self,
        class: ClassId,
        spec: &AllocSpec,
    ) -> Result<Handle, RuntimeError> {
        let handle = self.alloc(class, spec)?;
        self.heap.set_finalizable(handle);
        Ok(handle)
    }

    fn collect_until_fits(&mut self, bytes: u64) -> Result<(), RuntimeError> {
        // The span carries the allocation size that forced collection, so
        // a trace ties every pause (and any prune storm) back to the
        // request that could not fit.
        let _span = self.telemetry.span("collect_until_fits", bytes);
        // Closing an in-flight incremental cycle is itself a full
        // collection and may already make room.
        if self.pruner.incremental_active() {
            self.finish_incremental_collection();
            if self.heap.fits(bytes) {
                return Ok(());
            }
        }
        let mut no_progress = 0u32;
        for _ in 0..self.config.max_gc_attempts_per_alloc() {
            // Whether this collection ages objects is decided by how much
            // the mutator allocated since the previous one.
            let record = self.run_collection(false);
            let progress =
                record.freed_bytes > 0 || record.pruned_refs > 0 || record.selected.is_some();
            if self.heap.fits(bytes) {
                return Ok(());
            }
            // The program has genuinely exhausted memory: a full collection
            // did not make room. Record the (deferred) error.
            self.pruner.note_exhausted(
                record.gc_index,
                self.heap.used_bytes(),
                self.heap.capacity(),
            );
            self.maybe_snapshot_exhaustion();
            self.maybe_write_postmortem("exhaustion");
            if !self.config.pruning_enabled() {
                break;
            }
            if progress {
                no_progress = 0;
            } else {
                no_progress += 1;
                if no_progress >= 3 {
                    // A full OBSERVE -> SELECT -> PRUNE cycle achieved
                    // nothing; the remaining memory is live (or at least
                    // unprunable). Give up.
                    break;
                }
            }
        }
        Err(RuntimeError::OutOfMemory(self.current_oom(bytes)))
    }

    /// Writes the one-shot exhaustion snapshot if
    /// [`PruningConfig::snapshot_on_exhaustion`] is set and this is the
    /// first exhaustion. A write failure is reported on stderr, never
    /// surfaced to the allocating program — diagnosis must not change
    /// whether the program survives.
    fn maybe_snapshot_exhaustion(&mut self) {
        if self.exhaustion_snapshot_done {
            return;
        }
        let Some(path) = self.config.snapshot_on_exhaustion().map(Path::to_path_buf) else {
            return;
        };
        self.exhaustion_snapshot_done = true;
        let capture = self.capture_snapshot();
        if let Err(err) = std::fs::write(&path, capture.snapshot.to_jsonl()) {
            eprintln!(
                "leak-pruning: failed to write exhaustion snapshot to {}: {err}",
                path.display()
            );
        }
    }

    fn current_oom(&self, _requested: u64) -> OutOfMemoryError {
        OutOfMemoryError::new(
            self.collector.collections(),
            self.heap.used_bytes(),
            self.heap.capacity(),
        )
    }

    /// Forces a full-heap collection (driver/test hook). Forced collections
    /// always advance the staleness clock. An in-flight incremental cycle
    /// is closed first, so the returned record is always stop-the-world.
    pub fn force_gc(&mut self) -> GcRecord {
        self.run_collection(true)
    }

    /// Whether an incremental mark cycle is currently in flight.
    pub fn incremental_active(&self) -> bool {
        self.pruner.incremental_active()
    }

    /// Starts an incremental full collection now. Returns `false` — and
    /// starts nothing — unless [`PruningConfig::incremental_mark_budget`]
    /// is set, no cycle is already active, and the current state marks
    /// incrementally (INACTIVE and OBSERVE do; SELECT and PRUNE stay
    /// stop-the-world). The runtime normally starts cycles itself from the
    /// allocation path; this is the driver/host hook.
    pub fn start_incremental_cycle(&mut self) -> bool {
        let Some(budget) = self.config.incremental_mark_budget() else {
            return false;
        };
        if self.pruner.incremental_active() {
            return false;
        }
        let byte_threshold = (self.heap.capacity() / MUTATOR_PROGRESS_DIVISOR).max(1);
        let mutator_ran =
            self.bytes_since_gc >= byte_threshold || self.reads_since_gc >= MUTATOR_PROGRESS_READS;
        if !self.pruner.begin_incremental_cycle(
            &mut self.heap,
            &self.roots,
            &mut self.collector,
            budget,
            mutator_ran,
        ) {
            return false;
        }
        self.bytes_since_gc = 0;
        self.reads_since_gc = 0;
        true
    }

    /// Runs up to `max_quanta` bounded mark quanta of the active
    /// incremental cycle, closing the collection (stop-the-world flush +
    /// sweep) when the closure completes. Returns the number of quanta
    /// run (0 with no active cycle). A multi-tenant host calls this
    /// between requests so marking progresses even while a tenant is not
    /// allocating.
    pub fn step_incremental(&mut self, max_quanta: u32) -> u32 {
        let mut ran = 0;
        while ran < max_quanta {
            let Some(report) = self.pruner.cycle_quantum(&mut self.heap) else {
                break;
            };
            ran += 1;
            if report.done {
                self.finish_incremental_collection();
                break;
            }
        }
        ran
    }

    /// Drives the incremental collector between mutator steps: one pending
    /// quantum if a cycle is active, or a new cycle once free space drops
    /// below a capacity-eighth. Starting only on the approach to
    /// exhaustion keeps total mark work at stop-the-world parity: the
    /// cycle that begins here is the same collection exhaustion was about
    /// to force, just spread over the remaining allocation slack
    /// ([`Runtime::collect_until_fits`] closes it and returns without a
    /// second mark when the sweep makes room). No-op unless
    /// [`PruningConfig::incremental_mark_budget`] is set.
    fn pump_incremental(&mut self) {
        if self.config.incremental_mark_budget().is_none() {
            return;
        }
        if self.pruner.incremental_active() {
            self.step_incremental(1);
        } else {
            let capacity = self.heap.capacity();
            let headroom = (capacity / 16).max(1);
            if capacity.saturating_sub(self.heap.used_bytes()) >= headroom {
                self.incremental_armed = true;
            } else if self.incremental_armed && self.start_incremental_cycle() {
                self.incremental_armed = false;
            }
        }
    }

    /// Closes the active incremental cycle: final stop-the-world flush,
    /// sweep, history, telemetry, and (relaxed) verification.
    fn finish_incremental_collection(&mut self) {
        let Some((record, finalized)) =
            self.pruner
                .finish_cycle(&mut self.heap, &self.roots, &mut self.collector)
        else {
            return;
        };
        self.dispatch_finalizers(finalized);
        self.history.push(record.clone());
        self.used_at_last_full = self.heap.used_bytes();
        self.emit_collection_events(&record);
        // The terminal Collection/CounterDelta events above belong to the
        // cycle; only now does its span close.
        self.pruner.close_cycle_span();
        if let Some(period) = self.config.verify_period() {
            if record.gc_index.is_multiple_of(period) {
                self.verify_after_collection(record.gc_index, true);
            }
        }
    }

    /// Forces collections — escalating through the Figure-2 state machine
    /// to pruning when plain collection is not enough — until used bytes
    /// drop to `target_bytes` or no further progress is possible. Returns
    /// the used bytes afterwards.
    ///
    /// This is the hook a multi-tenant host's memory arbiter calls on the
    /// heaviest tenants when *aggregate* pressure crosses the shared limit:
    /// unlike [`Runtime::alloc`]'s internal collect-until-fits path it never
    /// surfaces an error, because failing to reach an externally imposed
    /// target is not an out-of-memory condition for this tenant — the
    /// arbiter simply moves on to the next one. Escalation goes through
    /// `note_exhausted`, so pruned references throw the same deferred OOM
    /// they would after a real exhaustion.
    pub fn reclaim_to(&mut self, target_bytes: u64) -> u64 {
        if self.heap.used_bytes() <= target_bytes {
            return self.heap.used_bytes();
        }
        let mut no_progress = 0u32;
        for _ in 0..self.config.max_gc_attempts_per_alloc() {
            let record = self.run_collection(true);
            let progress =
                record.freed_bytes > 0 || record.pruned_refs > 0 || record.selected.is_some();
            if self.heap.used_bytes() <= target_bytes {
                break;
            }
            self.pruner.note_exhausted(
                record.gc_index,
                self.heap.used_bytes(),
                self.heap.capacity(),
            );
            self.maybe_write_postmortem("exhaustion");
            if !self.config.pruning_enabled() {
                break;
            }
            if progress {
                no_progress = 0;
            } else {
                no_progress += 1;
                if no_progress >= 3 {
                    // A full OBSERVE -> SELECT -> PRUNE cycle achieved
                    // nothing; what remains is live or unprunable.
                    break;
                }
            }
        }
        self.heap.used_bytes()
    }

    /// Captures a heap snapshot for offline diagnosis (`lp-diagnose`).
    ///
    /// The capture piggybacks on a stop-the-world collection: it runs the
    /// mark phase itself (skipping poisoned references, exactly like the
    /// pruning closures) and dumps the live object graph while the world
    /// is stopped, so the snapshot is a consistent cut. The collection
    /// sweeps garbage and advances the collection index like any forced
    /// GC, but stays outside the pruner's bookkeeping: stale counters,
    /// the edge table and the Figure-2 state machine are unaffected.
    ///
    /// Emits [`Event::SnapshotBegin`]/[`Event::SnapshotEnd`] around the
    /// capture; the end event carries the pause cost in nanoseconds.
    pub fn capture_snapshot(&mut self) -> Capture {
        // The capture's collection needs its own mark epoch; close any
        // in-flight incremental cycle first.
        if self.pruner.incremental_active() {
            self.finish_incremental_collection();
        }
        let gc_index = self.collector.next_gc_index();
        let snapshot_span = self.telemetry.span("snapshot", gc_index);
        self.telemetry.emit(|| Event::SnapshotBegin { gc_index });
        let pruner_view = self.pruner_view();
        let roots = &self.roots;
        let classes = &self.classes;
        let mut captured: Option<Capture> = None;
        let outcome = self.collector.collect_with(&mut self.heap, |heap| {
            let (capture, stats) =
                HeapSnapshot::capture(heap, roots, classes, gc_index, Some(pruner_view))
                    .expect("quiescent: incremental cycle closed above");
            captured = Some(capture);
            stats
        });
        let capture = captured.expect("mark closure ran");
        // The sweep may reclaim finalizable garbage; honour the hook just
        // like an ordinary collection.
        self.dispatch_finalizers(outcome.swept.finalized);
        self.used_at_last_full = self.heap.used_bytes();
        let snapshot = &capture.snapshot;
        self.telemetry.emit(|| Event::SnapshotEnd {
            gc_index,
            objects: snapshot.object_count(),
            edges: snapshot.edge_count(),
            live_bytes: snapshot.live_bytes(),
            nanos: capture.trace_nanos + capture.record_nanos,
        });
        drop(snapshot_span);
        capture
    }

    /// The pruner's state as snapshot-header metadata: Figure-2 state,
    /// deferred-OOM flag, active selection, and the pruned-edge census
    /// joined with the edge table's `max_stale_use` — everything a
    /// postmortem needs to explain *why* each edge was pruned.
    fn pruner_view(&self) -> PrunerView {
        let table = self.pruner.table();
        let mut pruned_edges: Vec<PrunedEdgeMeta> = self
            .pruner
            .pruned_census()
            .iter()
            .map(|(&edge, &refs)| PrunedEdgeMeta {
                src: edge.src.index(),
                tgt: edge.tgt.index(),
                refs,
                max_stale_use: table.max_stale_use(edge),
            })
            .collect();
        pruned_edges.sort_by(|a, b| {
            b.refs
                .cmp(&a.refs)
                .then(a.src.cmp(&b.src))
                .then(a.tgt.cmp(&b.tgt))
        });
        let selected = self.pruner.selection().map(|info| match *info {
            SelectionInfo::Edge { edge, bytes } => SelectedPrune::Edge {
                src: edge.src.index(),
                tgt: edge.tgt.index(),
                bytes,
            },
            SelectionInfo::StaleLevel(level) => SelectedPrune::StaleLevel(level),
        });
        PrunerView {
            state: self.pruner.state().name().to_owned(),
            averted_oom: self.pruner.averted_oom().is_some(),
            selected,
            pruned_edges,
        }
    }

    /// The configuration knobs a postmortem reader needs to interpret the
    /// bundle, as JSON.
    fn config_json(&self) -> JsonValue {
        let c = &self.config;
        let mut fields = vec![
            (
                "heap_capacity".to_owned(),
                JsonValue::from_u64(c.heap_capacity()),
            ),
            ("pruning".to_owned(), JsonValue::Bool(c.pruning_enabled())),
            (
                "policy".to_owned(),
                JsonValue::Str(format!("{:?}", c.policy())),
            ),
            (
                "barrier_mode".to_owned(),
                JsonValue::Str(format!("{:?}", c.barrier_mode())),
            ),
            (
                "expected_threshold".to_owned(),
                JsonValue::Float(c.expected_threshold()),
            ),
            (
                "nearly_full_threshold".to_owned(),
                JsonValue::Float(c.nearly_full_threshold()),
            ),
            (
                "edge_table_slots".to_owned(),
                JsonValue::from_u64(c.edge_table_slots() as u64),
            ),
        ];
        if let Some(budget) = c.incremental_mark_budget() {
            fields.push((
                "incremental_mark_budget".to_owned(),
                JsonValue::from_u64(budget as u64),
            ));
        }
        JsonValue::Obj(fields)
    }

    /// Captures a postmortem bundle *without* collecting: the mark phase
    /// runs (so reachability is current), but nothing is swept and no
    /// collection index is consumed. That is the point — the
    /// dead-but-reachable objects the bundle exists to show are exactly
    /// what a sweep would erase.
    ///
    /// The embedded snapshot's `gc_index` is the number of collections
    /// performed so far (the capture happens *between* collections).
    pub fn capture_postmortem(&mut self, trigger: &str) -> PostmortemBundle {
        self.capture_postmortem_with(trigger, &PostmortemContext::default())
    }

    /// [`capture_postmortem`](Self::capture_postmortem) with host-supplied
    /// context (timeseries window, arbiter state) stamped into the bundle.
    pub fn capture_postmortem_with(
        &mut self,
        trigger: &str,
        context: &PostmortemContext,
    ) -> PostmortemBundle {
        // A half-marked incremental cycle would make the mark bits lie;
        // close it first (a full collection, as on any stop-the-world
        // entry point).
        if self.pruner.incremental_active() {
            self.finish_incremental_collection();
        }
        let gc_index = self.collector.collections();
        let pruner_view = self.pruner_view();
        // A fresh mark epoch, then the capture's own transitive closure.
        // Leaving the marks set afterwards is safe: every collection path
        // begins its own epoch.
        self.heap.begin_mark_epoch();
        let (capture, _stats) = HeapSnapshot::capture(
            &self.heap,
            &self.roots,
            &self.classes,
            gc_index,
            Some(pruner_view),
        )
        .expect("quiescent: incremental cycle closed above");
        PostmortemBundle {
            trigger: trigger.to_owned(),
            gc_index,
            recorder_dropped: self.telemetry.recorder_dropped(),
            spans: self
                .telemetry
                .active_spans()
                .into_iter()
                .map(|(name, arg)| (name.to_owned(), arg))
                .collect(),
            config: self.config_json(),
            timeseries: context.timeseries.clone(),
            arbiter: context.arbiter.clone(),
            snapshot: capture.snapshot,
            events: self.telemetry.recorder_snapshot(),
        }
    }

    /// Writes a postmortem bundle into
    /// [`PruningConfig::postmortem_dir`] now, bypassing the per-trigger
    /// rate limit (this is the manual/host-requested path). Returns the
    /// bundle's path, or `None` when no directory is configured or the
    /// write failed — a failed write is reported on stderr, never
    /// surfaced: diagnosis must not change whether the program survives.
    pub fn write_postmortem(&mut self, trigger: &str) -> Option<PathBuf> {
        self.write_postmortem_with(trigger, &PostmortemContext::default())
    }

    /// [`write_postmortem`](Self::write_postmortem) with host-supplied
    /// context stamped into the bundle.
    pub fn write_postmortem_with(
        &mut self,
        trigger: &str,
        context: &PostmortemContext,
    ) -> Option<PathBuf> {
        let dir = self.config.postmortem_dir().map(Path::to_path_buf)?;
        let bundle = self.capture_postmortem_with(trigger, context);
        let gc_index = bundle.gc_index;
        let text = bundle.to_jsonl();
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "leak-pruning: failed to create postmortem dir {}: {err}",
                dir.display()
            );
            return None;
        }
        let path = dir.join(format!("postmortem-{trigger}-gc{gc_index}.jsonl"));
        if let Err(err) = std::fs::write(&path, &text) {
            eprintln!(
                "leak-pruning: failed to write postmortem bundle to {}: {err}",
                path.display()
            );
            return None;
        }
        // Stable "most recent bundle" pointer for humans and dashboards.
        let latest = dir.join("postmortem-latest.jsonl");
        if let Err(err) = std::fs::write(&latest, &text) {
            eprintln!("leak-pruning: failed to write {}: {err}", latest.display());
        }
        self.postmortem_last.insert(trigger.to_owned(), gc_index);
        self.postmortem_count += 1;
        self.postmortem_latest = Some(path.clone());
        let path_text = path.display().to_string();
        self.telemetry.emit(|| Event::PostmortemWritten {
            trigger: trigger.to_owned(),
            path: path_text.clone(),
            gc_index,
        });
        Some(path)
    }

    /// Postmortem bundles successfully written so far (automatic and
    /// manual).
    pub fn postmortem_count(&self) -> u64 {
        self.postmortem_count
    }

    /// Path of the most recently written postmortem bundle.
    pub fn postmortem_latest(&self) -> Option<&Path> {
        self.postmortem_latest.as_deref()
    }

    /// Rate-limited automatic bundle write: at most one bundle per
    /// `trigger` every [`POSTMORTEM_MIN_GC_INTERVAL`] collections (the
    /// first for a trigger always writes). No-op without a configured
    /// directory.
    fn maybe_write_postmortem(&mut self, trigger: &str) {
        if self.config.postmortem_dir().is_none() {
            return;
        }
        let gc_index = self.collector.collections();
        if let Some(&last) = self.postmortem_last.get(trigger) {
            if gc_index.saturating_sub(last) < POSTMORTEM_MIN_GC_INTERVAL {
                return;
            }
        }
        self.write_postmortem(trigger);
    }

    fn run_minor_collection(&mut self) {
        let outcome = lp_gc::collect_minor(&mut self.heap, &self.roots);
        self.counters.minor_collections += 1;
        // Minor collections get their own event kind: they carry no
        // `gc_index` because they do not advance the full-heap numbering,
        // and a `collection` event would misattribute them to one.
        self.telemetry.emit(|| Event::MinorCollection {
            freed_objects: outcome.swept.freed_objects,
            freed_bytes: outcome.swept.freed_bytes,
            mark_nanos: outcome.mark_time.as_nanos() as u64,
            sweep_nanos: outcome.sweep_time.as_nanos() as u64,
        });
        self.dispatch_finalizers(outcome.swept.finalized);
    }

    /// Runs or skips the finalizers of reclaimed finalizable objects,
    /// honouring [`PruningConfig::run_finalizers_after_prune`].
    fn dispatch_finalizers(&mut self, mut finalized: lp_heap::FinalizeLog) {
        if finalized.is_empty() {
            return;
        }
        let pruning_started = self.pruner.averted_oom().is_some();
        if pruning_started && !self.config.run_finalizers_after_prune() {
            self.counters.finalizers_skipped += finalized.len() as u64;
        } else {
            self.counters.finalizers_run += finalized.len() as u64;
            if let Some(hook) = self.finalizer_hook.as_mut() {
                for class in finalized.drain() {
                    hook(class);
                }
            }
        }
    }

    fn run_collection(&mut self, force_tick: bool) -> GcRecord {
        // A stop-the-world collection needs its own mark epoch; an
        // in-flight incremental cycle must close first.
        if self.pruner.incremental_active() {
            self.finish_incremental_collection();
        }
        // (used_at_last_full is refreshed after the sweep, below.)
        let had_averted_oom = self.pruner.averted_oom().is_some();
        let byte_threshold = (self.heap.capacity() / MUTATOR_PROGRESS_DIVISOR).max(1);
        let mutator_ran = force_tick
            || self.bytes_since_gc >= byte_threshold
            || self.reads_since_gc >= MUTATOR_PROGRESS_READS;
        self.bytes_since_gc = 0;
        self.reads_since_gc = 0;
        // The span's arg is the index this collection is about to claim;
        // the terminal Collection/CounterDelta events land inside it.
        let _collection_span = self
            .telemetry
            .span("collection", self.collector.next_gc_index());
        let (record, finalized) = self.pruner.collect(
            &mut self.heap,
            &self.roots,
            &mut self.collector,
            self.config.marker_threads(),
            mutator_ran,
        );
        self.dispatch_finalizers(finalized);
        self.history.push(record.clone());
        self.used_at_last_full = self.heap.used_bytes();
        self.emit_collection_events(&record);
        if let Some(period) = self.config.verify_period() {
            if record.gc_index.is_multiple_of(period) {
                self.verify_after_collection(record.gc_index, false);
            }
        }
        // Entering PRUNE records the deferred out-of-memory error — the
        // moment the program would have died without pruning, whether or
        // not an allocation literally failed first (under the nearly-full
        // threshold PRUNE usually lands *before* a real exhaustion). That
        // is exactly when a postmortem is owed.
        if !had_averted_oom && self.pruner.averted_oom().is_some() {
            self.maybe_write_postmortem("exhaustion");
        }
        record
    }

    /// The sanitizer hook: full structural + reachability verification,
    /// telemetry, and a panic on any violation. Runs at the one point where
    /// the reachability check is sound — the world is stopped and the sweep
    /// just finished. After an incremental collection the relaxed variant
    /// applies: floating garbage (marked but unreachable by the flush) is
    /// legitimate there.
    fn verify_after_collection(&self, gc_index: u64, incremental: bool) {
        let start = std::time::Instant::now();
        let mut violations = self.verify_heap();
        violations.extend(if incremental {
            lp_gc::verify_post_incremental_collection(&self.heap, &self.roots)
        } else {
            lp_gc::verify_post_collection(&self.heap, &self.roots)
        });
        let nanos = start.elapsed().as_nanos() as u64;
        self.telemetry.emit(|| Event::VerifyHeap {
            gc_index,
            violations: violations.len() as u64,
            nanos,
        });
        if violations.is_empty() {
            return;
        }
        for violation in &violations {
            self.telemetry.emit(|| Event::VerifyViolation {
                gc_index,
                kind: violation.kind.to_owned(),
                detail: violation.detail.clone(),
            });
        }
        let summary: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        panic!(
            "heap verification failed after collection {gc_index}: {} violation(s)\n{}",
            violations.len(),
            summary.join("\n")
        );
    }

    /// Per-collection telemetry: a `Collection` snapshot, a `CounterDelta`
    /// against the previous emission, and (every `census_period` collections,
    /// when configured) an edge-table census.
    fn emit_collection_events(&mut self, record: &GcRecord) {
        if !self.telemetry.is_enabled() {
            // Leave `counters_at_last_emit` untouched so the next delta,
            // emitted once a sink attaches, covers the gap.
            return;
        }
        self.telemetry.emit(|| Event::Collection {
            gc_index: record.gc_index,
            state: record.state.name().to_owned(),
            live_bytes_after: record.live_bytes_after,
            live_objects_after: record.live_objects_after,
            freed_bytes: record.freed_bytes,
            freed_objects: record.freed_objects,
            pruned_refs: record.pruned_refs,
            mark_nanos: record.mark_time.as_nanos() as u64,
            sweep_nanos: record.sweep_time.as_nanos() as u64,
            flush_nanos: record.flush_time.map(|d| d.as_nanos() as u64),
        });
        let now = self.counters;
        let last = self.counters_at_last_emit;
        self.counters_at_last_emit = now;
        self.telemetry.emit(|| Event::CounterDelta {
            gc_index: record.gc_index,
            ref_reads: now.ref_reads - last.ref_reads,
            barrier_cold_hits: now.barrier_cold_hits - last.barrier_cold_hits,
            stale_use_updates: now.stale_use_updates - last.stale_use_updates,
            pruned_access_throws: now.pruned_access_throws - last.pruned_access_throws,
            finalizers_run: now.finalizers_run - last.finalizers_run,
            finalizers_skipped: now.finalizers_skipped - last.finalizers_skipped,
            minor_collections: now.minor_collections - last.minor_collections,
            remembered_stores: now.remembered_stores - last.remembered_stores,
        });
        if let Some(period) = self.config.census_period() {
            if record.gc_index.is_multiple_of(period) {
                self.emit_edge_census();
            }
        }
    }

    /// Emits an [`Event::EdgeCensus`] snapshot of the edge table right now.
    ///
    /// Runs automatically every `census_period` collections when the config
    /// sets one; callers can also invoke it directly (e.g. once at the end
    /// of a run) to get a final snapshot into the trace.
    pub fn emit_edge_census(&self) {
        let table = self.pruner.table();
        self.telemetry.emit(|| Event::EdgeCensus {
            gc_index: self.collector.collections(),
            edge_types: table.len() as u64,
            capacity: table.capacity() as u64,
            footprint_bytes: table.footprint_bytes() as u64,
            entries: table
                .iter()
                .map(|entry| CensusEntry {
                    src: entry.key.src.index(),
                    tgt: entry.key.tgt.index(),
                    max_stale_use: entry.max_stale_use,
                    bytes_used: entry.bytes_used,
                })
                .collect(),
        });
    }

    // ----- field access (the read barrier) ---------------------------------

    /// Loads reference field `field` of `src` through the read barrier.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PrunedAccess`] if the reference was pruned;
    /// the error's cause is the out-of-memory error the pruning deferred.
    ///
    /// # Panics
    ///
    /// Panics if `field` is out of bounds for `src`'s class.
    pub fn read_field(
        &mut self,
        src: Handle,
        field: usize,
    ) -> Result<Option<Handle>, RuntimeError> {
        self.counters.ref_reads += 1;
        self.reads_since_gc += 1;
        let Some(src_obj) = self.heap.object_checked(src) else {
            // The program kept this handle aside (a register alias) while
            // every heap path to the object was pruned and the object
            // reclaimed. Reaching it is an access to pruned memory: the
            // program could only have revalidated the alias by loading one
            // of the poisoned references.
            let cause = self
                .pruner
                .averted_oom()
                .cloned()
                .unwrap_or_else(|| self.current_oom(0));
            self.counters.pruned_access_throws += 1;
            return Err(RuntimeError::PrunedAccess(PrunedAccessError::new(
                cause, None, field,
            )));
        };
        let reference = src_obj.load_ref(field);

        // Fast path: no tag bits, or barriers compiled out entirely.
        if matches!(self.config.barrier_mode(), BarrierMode::None) || !reference.is_tagged() {
            return Ok(self.heap.resolve(reference));
        }

        // Out-of-line cold path.
        self.counters.barrier_cold_hits += 1;
        if reference.is_poisoned() {
            let cause = self
                .pruner
                .averted_oom()
                .cloned()
                .unwrap_or_else(|| self.current_oom(0));
            self.counters.pruned_access_throws += 1;
            return Err(RuntimeError::PrunedAccess(PrunedAccessError::new(
                cause,
                Some(src_obj.class()),
                field,
            )));
        }

        // Clear the unlogged bit; the store is conditional on the field not
        // having been overwritten (the paper's `[iff a.f == t]`).
        src_obj.cas_ref(field, reference, reference.without_unlogged());
        let src_class = src_obj.class();

        let resolved = self.heap.resolve(reference);
        if let Some(target) = resolved {
            let tgt_obj = self.heap.object(target);
            let stale = tgt_obj.stale();
            // §4.1: update maxstaleuse only for staleness >= 2 ("a value of
            // 1 is not very stale").
            if stale > 1 && self.pruner.observing() {
                self.counters.stale_use_updates += 1;
                self.pruner
                    .table()
                    .note_stale_use(EdgeKey::new(src_class, tgt_obj.class()), stale);
            }
            tgt_obj.clear_stale();
        }
        Ok(resolved)
    }

    /// Stores into reference field `field` of `src`. There is no *read*
    /// barrier bookkeeping on stores; newly written references start with
    /// clear tag bits, exactly as newly allocated objects do in the paper.
    /// In the generational configuration this is also the write barrier:
    /// old-to-young stores enter the remembered set.
    ///
    /// # Panics
    ///
    /// Panics if `field` is out of bounds.
    pub fn write_field(&mut self, src: Handle, field: usize, value: Option<Handle>) {
        if self.config.nursery_fraction().is_some() {
            if let Some(target) = value {
                if self.heap.is_young(target.slot()) && !self.heap.is_young(src.slot()) {
                    self.heap.note_old_to_young(src.slot());
                    self.counters.remembered_stores += 1;
                }
            }
        }
        // SATB deleted-reference barrier: while an incremental mark cycle
        // is active, log the reference being overwritten so the closure
        // still covers everything reachable at the cycle's start — without
        // it, the only path to a snapshot-reachable object could be copied
        // into an already-scanned object and then severed here, hiding the
        // object from the marker. Unconditional in every barrier mode: it
        // is a soundness barrier, not bookkeeping. Root writes need no
        // logging (the final flush re-scans the roots), and poisoned
        // references are skipped exactly as the closures skip them.
        if self.heap.satb_active() {
            let old = self.heap.object(src).load_ref(field);
            if !old.is_poisoned() {
                if let Some(slot) = old.slot() {
                    self.heap.satb_push(slot);
                }
            }
        }
        self.heap
            .object(src)
            .store_ref(field, TaggedRef::from_optional(value));
    }

    /// Loads scalar word `index` of `src` (no barrier: scalar accesses do
    /// not participate in staleness, matching the paper's reference-load
    /// barrier placement).
    pub fn read_word(&self, src: Handle, index: usize) -> u64 {
        self.heap.object(src).load_word(index)
    }

    /// Stores scalar word `index` of `src`.
    pub fn write_word(&mut self, src: Handle, index: usize, value: u64) {
        self.heap.object(src).store_word(index, value);
    }

    /// Whether `handle` still designates a live (unreclaimed) object.
    pub fn is_live(&self, handle: Handle) -> bool {
        self.heap.contains(handle)
    }

    /// Drops the register-file roots that keep recent allocations alive —
    /// call when a unit of work (an iteration) finishes and its
    /// temporaries go out of scope. Without this, up to
    /// [`lp_heap::REGISTER_FILE_SIZE`] recent allocations stay rooted.
    pub fn release_registers(&mut self) {
        self.roots.clear_registers();
    }

    /// The class of a live object (diagnostics).
    pub fn class_of(&self, handle: Handle) -> ClassId {
        self.heap.object(handle).class()
    }

    /// The stale counter of a live object (diagnostics).
    pub fn stale_of(&self, handle: Handle) -> u8 {
        self.heap.object(handle).stale()
    }

    // ----- introspection ----------------------------------------------------

    /// Current leak-pruning state.
    pub fn state(&self) -> State {
        self.pruner.state()
    }

    /// Simulated bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.heap.used_bytes()
    }

    /// Heap capacity in simulated bytes.
    pub fn capacity(&self) -> u64 {
        self.heap.capacity()
    }

    /// Heap occupancy in `0.0..=1.0`.
    pub fn occupancy(&self) -> f64 {
        self.heap.occupancy()
    }

    /// Registers (or clears) an advisory byte budget on the heap — see
    /// [`lp_heap::Heap::set_soft_budget`]. A multi-tenant host registers
    /// each tenant's share of the global limit here.
    pub fn set_byte_budget(&mut self, budget: Option<u64>) {
        self.heap.set_soft_budget(budget);
    }

    /// The registered advisory byte budget, if any.
    pub fn byte_budget(&self) -> Option<u64> {
        self.heap.soft_budget()
    }

    /// Whether current usage exceeds the registered byte budget.
    pub fn over_budget(&self) -> bool {
        self.heap.over_soft_budget()
    }

    /// Live object count.
    pub fn live_objects(&self) -> u64 {
        self.heap.live_objects()
    }

    /// Number of full-heap collections performed.
    pub fn gc_count(&self) -> u64 {
        self.collector.collections()
    }

    /// Per-collection history (the data behind the paper's memory plots).
    pub fn history(&self) -> &[GcRecord] {
        &self.history
    }

    /// Collector timing statistics.
    pub fn gc_stats(&self) -> &GcStats {
        self.collector.stats()
    }

    /// The edge table (diagnostics; §6.2's census).
    pub fn edge_table(&self) -> &EdgeTable {
        self.pruner.table()
    }

    /// The deferred out-of-memory error, if pruning has engaged.
    pub fn averted_oom(&self) -> Option<&OutOfMemoryError> {
        self.pruner.averted_oom()
    }

    /// Mutator instrumentation counters.
    pub fn counters(&self) -> &MutatorCounters {
        &self.counters
    }

    /// Registers a callback invoked with the class of each finalizable
    /// object that is reclaimed.
    pub fn set_finalizer_hook(&mut self, hook: Box<dyn FnMut(ClassId) + Send>) {
        self.finalizer_hook = Some(hook);
    }

    /// Per-class census of *stale* bytes: for every class, the total
    /// footprint of its objects whose stale counter is at least
    /// `min_stale`, sorted by bytes descending.
    ///
    /// This is the diagnostic view behind leak pruning's heritage in leak
    /// *detection* (§7): highly stale classes with growing byte counts are
    /// leak suspects whether or not pruning is enabled.
    pub fn stale_census(&self, min_stale: u8) -> Vec<(ClassId, u64)> {
        let mut by_class: std::collections::BTreeMap<ClassId, u64> =
            std::collections::BTreeMap::new();
        for (_, object) in self.heap.iter() {
            if object.stale() >= min_stale {
                *by_class.entry(object.class()).or_insert(0) += u64::from(object.footprint());
            }
        }
        let mut census: Vec<(ClassId, u64)> = by_class.into_iter().collect();
        census.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        census
    }

    /// Runs the heap invariant sanitizer and returns every violation found
    /// (empty means the heap is sound).
    ///
    /// Composes the structural checks of [`lp_heap::Heap::verify`] — tag-bit
    /// legality, slot-index validity, chunk summaries, free-list
    /// disjointness, allocation accounting — with the two invariants only
    /// the pruning runtime can state:
    ///
    /// * **[`edge-bytes`](crate::verify::EDGE_BYTES)** — the edge table's
    ///   `bytes_used` windows are all zero outside a SELECT closure;
    /// * **[`poison-state`](crate::verify::POISON_STATE)** — no stored
    ///   reference is poisoned unless a PRUNE collection has run (the
    ///   deferred out-of-memory error exists).
    ///
    /// Safe to call at any point the mutator could run; unlike the
    /// post-collection hook ([`PruningConfig::verify_period`]) it does not
    /// recompute reachability, which is only meaningful right after a full
    /// collection.
    pub fn verify_heap(&self) -> Vec<lp_heap::Violation> {
        let mut violations = self.heap.verify();
        for entry in self.pruner.table().iter() {
            if entry.bytes_used != 0 {
                violations.push(lp_heap::Violation::new(
                    crate::verify::EDGE_BYTES,
                    format!(
                        "edge {} -> {} carries {} stale bytes outside a SELECT closure",
                        entry.key.src.index(),
                        entry.key.tgt.index(),
                        entry.bytes_used
                    ),
                ));
            }
        }
        if self.pruner.averted_oom().is_none() {
            for (slot, object) in self.heap.iter() {
                for (field, reference) in object.iter_refs() {
                    if reference.is_poisoned() {
                        violations.push(lp_heap::Violation::new(
                            crate::verify::POISON_STATE,
                            format!(
                                "slot {slot} field {field} is poisoned but the \
                                 runtime never entered PRUNE"
                            ),
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Direct heap access for invariant-sanitizer tests that need to plant
    /// corruptions. Never used by the runtime itself.
    #[doc(hidden)]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable variant of [`Runtime::heap`], for corruption hooks that need
    /// `&mut Heap`.
    #[doc(hidden)]
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    // ----- checkpoint / restore --------------------------------------------

    /// Captures a diagnostic heap snapshot *without* collecting — the
    /// checkpoint-side capture. Unlike [`Runtime::capture_snapshot`] this
    /// performs no sweep and consumes no collection index, so a run that
    /// checkpoints is observationally identical to one that never did: only
    /// mark bits move, and those are excluded from images and fingerprints.
    ///
    /// An in-flight incremental cycle is still closed first (the quiescence
    /// rule); with incremental marking disabled this method is entirely
    /// non-perturbing.
    pub fn snapshot_view(&mut self) -> Capture {
        if self.pruner.incremental_active() {
            self.finish_incremental_collection();
        }
        let gc_index = self.collector.collections();
        let pruner_view = self.pruner_view();
        // A fresh mark epoch, then the capture's own transitive closure —
        // the same no-sweep discipline as `capture_postmortem`.
        self.heap.begin_mark_epoch();
        let (capture, _stats) = HeapSnapshot::capture(
            &self.heap,
            &self.roots,
            &self.classes,
            gc_index,
            Some(pruner_view),
        )
        .expect("quiescent: incremental cycle closed above");
        capture
    }

    /// Captures a complete serializable image of the runtime at a quiescent
    /// point — the state side of a checkpoint (see [`crate::recovery`]).
    ///
    /// An in-flight incremental mark cycle is closed first (a full
    /// collection, exactly as on any stop-the-world entry point), so the
    /// image never contains a half-marked cycle and the SATB log is always
    /// drained — the quiescence rule, enforced by construction.
    pub fn image(&mut self) -> crate::recovery::RuntimeImage {
        if self.pruner.incremental_active() {
            self.finish_incremental_collection();
        }
        let state_name = |state: &State| state.name().to_owned();
        crate::recovery::RuntimeImage {
            classes: self
                .classes
                .iter()
                .map(|(_, name)| name.to_owned())
                .collect(),
            heap: self.heap.image(),
            roots: self.roots.image(),
            gc_count: self.collector.collections(),
            counters: self.counters,
            bytes_since_gc: self.bytes_since_gc,
            reads_since_gc: self.reads_since_gc,
            used_at_last_full: self.used_at_last_full,
            incremental_armed: self.incremental_armed,
            pruner: self.pruner.image(),
            history: self
                .history
                .iter()
                .map(|record| crate::recovery::GcRecordImage {
                    gc_index: record.gc_index,
                    state: state_name(&record.state),
                    live_bytes_after: record.live_bytes_after,
                    live_objects_after: record.live_objects_after,
                    freed_bytes: record.freed_bytes,
                    freed_objects: record.freed_objects,
                    pruned_refs: record.pruned_refs,
                    selected: record
                        .selected
                        .as_ref()
                        .map(crate::recovery::SelectionImage::from_info),
                    mark_nanos: record.mark_time.as_nanos() as u64,
                    sweep_nanos: record.sweep_time.as_nanos() as u64,
                    flush_nanos: record.flush_time.map(|d| d.as_nanos() as u64),
                })
                .collect(),
        }
    }

    /// Rebuilds a runtime from an image captured by [`Runtime::image`].
    ///
    /// The configuration is an argument, not part of the image: policy,
    /// thresholds and barrier mode always come from `config`, so a restored
    /// tenant runs under exactly the configuration its host supplies. The
    /// heap is materialized slot by slot (tag bits — poison included — and
    /// generations exact), classes re-registered in order so every raw
    /// class index in the image resolves to the same id, and the pruner's
    /// state machine, edge table and deferred out-of-memory error
    /// reinstated. The restored heap runs the full invariant verifier
    /// before this returns; on success an [`Event::Restore`] goes out on
    /// the new runtime's bus.
    ///
    /// # Errors
    ///
    /// Refuses images with invalid heap state, class indices outside the
    /// image's class list, unknown state names, or verifier violations.
    pub fn restore_from(
        config: PruningConfig,
        image: &crate::recovery::RuntimeImage,
    ) -> Result<Runtime, crate::recovery::RestoreImageError> {
        use crate::recovery::{RestoreImageError, SelectionImage};
        let class_count = u32::try_from(image.classes.len()).unwrap_or(u32::MAX);
        let check_class = |index: u32| {
            if index < class_count {
                Ok(())
            } else {
                Err(RestoreImageError::BadClassIndex(index))
            }
        };
        for slot in &image.heap.slots {
            check_class(slot.class.index())?;
        }
        for &(src, tgt, _) in &image.pruner.edges {
            check_class(src)?;
            check_class(tgt)?;
        }
        for &(src, tgt, _) in &image.pruner.pruned_census {
            check_class(src)?;
            check_class(tgt)?;
        }
        if let Some(SelectionImage::Edge { src, tgt, .. }) = image.pruner.selection {
            check_class(src)?;
            check_class(tgt)?;
        }

        let mut rt = Runtime::new(config);
        // Re-registration in order reproduces every ClassId and reinstalls
        // static liveness verdicts through the normal `note_class` path.
        for name in &image.classes {
            rt.register_class(name);
        }
        let mut heap = Heap::materialize(&image.heap)?;
        heap.set_telemetry(rt.telemetry.clone());
        rt.heap = heap;
        rt.roots = RootSet::from_image(&image.roots);
        rt.collector.restore_collections(image.gc_count);
        rt.pruner
            .restore_image(&image.pruner)
            .map_err(RestoreImageError::BadState)?;
        rt.counters = image.counters;
        // Deltas emitted after restore cover only post-restore activity;
        // the pre-crash trace already carries the rest.
        rt.counters_at_last_emit = image.counters;
        rt.bytes_since_gc = image.bytes_since_gc;
        rt.reads_since_gc = image.reads_since_gc;
        rt.used_at_last_full = image.used_at_last_full;
        rt.incremental_armed = image.incremental_armed;
        rt.history = image
            .history
            .iter()
            .map(|record| {
                Ok(GcRecord {
                    gc_index: record.gc_index,
                    state: State::from_name(&record.state)
                        .ok_or_else(|| RestoreImageError::BadState(record.state.clone()))?,
                    live_bytes_after: record.live_bytes_after,
                    live_objects_after: record.live_objects_after,
                    freed_bytes: record.freed_bytes,
                    freed_objects: record.freed_objects,
                    pruned_refs: record.pruned_refs,
                    selected: record.selected.as_ref().map(|s| s.to_info()),
                    mark_time: std::time::Duration::from_nanos(record.mark_nanos),
                    sweep_time: std::time::Duration::from_nanos(record.sweep_nanos),
                    flush_time: record.flush_nanos.map(std::time::Duration::from_nanos),
                })
            })
            .collect::<Result<Vec<_>, RestoreImageError>>()?;

        // The restore event is a liveness proof: it goes out only once the
        // full invariant sanitizer has passed on the materialized heap.
        let violations = rt.verify_heap();
        if !violations.is_empty() {
            return Err(RestoreImageError::Verify(
                violations.iter().map(|v| v.to_string()).collect(),
            ));
        }
        let (gc_index, objects, bytes) = (image.gc_count, rt.live_objects(), rt.used_bytes());
        rt.telemetry.emit(|| Event::Restore {
            gc_index,
            objects,
            bytes,
        });
        Ok(rt)
    }

    /// A 64-bit fingerprint of the runtime's replay-relevant state: heap
    /// graph with tag bits and generations, free/young/remembered order,
    /// roots, class registry, collection count and pruner state. Wall-clock
    /// timings and telemetry are excluded, so a checkpointed-and-restored
    /// runtime fingerprints identically to one that never stopped (see
    /// [`crate::recovery::fingerprint_image`]).
    ///
    /// Closes any in-flight incremental cycle (the fingerprint is defined
    /// only at quiescent points, like the image it hashes).
    pub fn fingerprint(&mut self) -> u64 {
        crate::recovery::fingerprint_image(&self.image())
    }

    /// Builds the end-of-run report (§3.2's optional diagnostics).
    pub fn prune_report(&self) -> PruneReport {
        let mut pruned_edges: Vec<PrunedEdge> = self
            .pruner
            .pruned_census()
            .iter()
            .map(|(edge, refs)| PrunedEdge {
                src: self.classes.name(edge.src).to_owned(),
                tgt: self.classes.name(edge.tgt).to_owned(),
                refs: *refs,
            })
            .collect();
        // The census accumulates in an unordered hash map; sorting here —
        // refs descending, then class names — keeps the report deterministic.
        pruned_edges.sort_by(|a, b| {
            b.refs
                .cmp(&a.refs)
                .then_with(|| a.src.cmp(&b.src))
                .then_with(|| a.tgt.cmp(&b.tgt))
        });
        PruneReport {
            averted_oom: self.pruner.averted_oom().cloned(),
            pruned_edges,
            total_pruned_refs: self.pruner.total_pruned_refs(),
            edge_types_recorded: self.pruner.table().len(),
            edge_table_footprint: self.pruner.table().footprint_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ForcedState, PredictionPolicy};

    const KB: u64 = 1024;

    /// A linked-list leak: every iteration pushes a node (kept forever via
    /// a static) and allocates transient scratch. Returns the runtime and
    /// the number of iterations completed before `limit`.
    fn run_list_leak(config: PruningConfig, limit: u64) -> (Runtime, u64, Option<RuntimeError>) {
        let mut rt = Runtime::new(config);
        let node = rt.register_class("Node");
        let scratch = rt.register_class("Scratch");
        let head = rt.add_static();
        for i in 0..limit {
            let unit = rt.alloc(node, &AllocSpec::new(1, 0, 512)).and_then(|n| {
                rt.write_field(n, 0, rt.static_ref(head));
                rt.set_static(head, Some(n));
                rt.alloc(scratch, &AllocSpec::leaf(2048))
            });
            if let Err(e) = unit {
                return (rt, i, Some(e));
            }
        }
        (rt, limit, None)
    }

    #[test]
    fn base_runs_out_of_memory() {
        let (rt, iters, err) = run_list_leak(PruningConfig::base(256 * KB), 10_000);
        assert!(err.expect("base must die").is_out_of_memory());
        assert!(iters < 1000);
        assert_eq!(rt.state(), State::Inactive);
    }

    #[test]
    fn pruning_runs_list_leak_indefinitely() {
        let (rt, iters, err) = run_list_leak(PruningConfig::builder(256 * KB).build(), 5_000);
        assert!(
            err.is_none(),
            "leak pruning should keep the program alive: {err:?}"
        );
        assert_eq!(iters, 5_000);
        let report = rt.prune_report();
        assert!(report.total_pruned_refs > 0);
        assert!(report.averted_oom.is_some());
        // The pruned reference type is Node -> Node.
        assert_eq!(report.pruned_edges[0].src, "Node");
        assert_eq!(report.pruned_edges[0].tgt, "Node");
    }

    #[test]
    fn reclaim_to_escalates_to_pruning_and_reaches_target() {
        // Build a list leak that plain collection cannot shrink: every node
        // stays reachable from the static head, so only pruning can get
        // used bytes under the target.
        let (mut rt, iters, err) = run_list_leak(PruningConfig::builder(256 * KB).build(), 300);
        assert!(err.is_none());
        assert_eq!(iters, 300);
        // Registers still root the most recent allocations; an idle tenant
        // would have released them at the end of its last request.
        rt.release_registers();
        let target = 64 * KB;
        let after = rt.reclaim_to(target);
        assert!(
            after <= target,
            "reclaim_to left {after} bytes, target {target}"
        );
        assert!(rt.prune_report().total_pruned_refs > 0);
        // Already under target: a no-op that runs no collection.
        let gcs = rt.gc_count();
        assert_eq!(rt.reclaim_to(target), after);
        assert_eq!(rt.gc_count(), gcs);
    }

    #[test]
    fn reclaim_to_without_pruning_stops_at_live_data() {
        let (mut rt, _, err) = run_list_leak(PruningConfig::base(1024 * KB), 500);
        assert!(err.is_none());
        let before = rt.used_bytes();
        // Everything reachable, pruning disabled: the call must terminate
        // and report the (unchanged modulo transients) usage.
        let after = rt.reclaim_to(1);
        assert!(after > 1, "live data cannot be collected away");
        assert!(after <= before);
    }

    #[test]
    fn byte_budget_is_advisory() {
        let mut rt = Runtime::new(PruningConfig::base(256 * KB));
        assert_eq!(rt.byte_budget(), None);
        assert!(!rt.over_budget());
        rt.set_byte_budget(Some(KB));
        let cls = rt.register_class("T");
        let root = rt.add_static();
        let h = rt.alloc(cls, &AllocSpec::leaf(4096)).unwrap();
        rt.set_static(root, Some(h));
        assert!(rt.over_budget(), "4 KiB used against a 1 KiB budget");
        assert_eq!(rt.byte_budget(), Some(KB));
    }

    #[test]
    fn pruning_beats_base_on_iterations() {
        let (_, base_iters, _) = run_list_leak(PruningConfig::base(256 * KB), 10_000);
        let (_, prune_iters, _) = run_list_leak(PruningConfig::builder(256 * KB).build(), 10_000);
        assert!(
            prune_iters > 10 * base_iters,
            "pruning {prune_iters} vs base {base_iters}"
        );
    }

    #[test]
    fn accessing_pruned_reference_raises_internal_error_with_cause() {
        let mut rt = Runtime::new(PruningConfig::builder(128 * KB).build());
        let holder = rt.register_class("Holder");
        let blob = rt.register_class("Blob");
        let scratch = rt.register_class("Scratch");

        // A permanently reachable holder whose blob the program stops
        // using. The blob fills >90% of the heap, so collections leave the
        // heap nearly full and the state machine escalates to PRUNE.
        let root = rt.add_static();
        let h = rt.alloc(holder, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root, Some(h));
        let b = rt.alloc(blob, &AllocSpec::leaf(116 * 1024)).unwrap();
        rt.write_field(h, 0, Some(b));

        // Fill the heap with transient garbage until pruning reclaims the
        // blob.
        let mut pruned = false;
        for _ in 0..10_000 {
            rt.alloc(scratch, &AllocSpec::leaf(4096)).expect("scratch");
            rt.release_registers(); // the unit of work returns
            if rt.prune_report().total_pruned_refs > 0 {
                pruned = true;
                break;
            }
        }
        assert!(pruned, "the blob should eventually be pruned");

        let err = rt.read_field(h, 0).expect_err("poisoned access");
        match err {
            RuntimeError::PrunedAccess(e) => {
                let class = e.source_class().expect("holder object still live");
                assert_eq!(rt.class_name(class), "Holder");
                assert_eq!(e.cause().capacity(), 128 * KB);
            }
            other => panic!("expected pruned access, got {other:?}"),
        }
    }

    #[test]
    fn used_references_are_not_pruned() {
        // Same shape as above, but the program reads holder->blob every
        // iteration; the blob must survive.
        let mut rt = Runtime::new(PruningConfig::builder(128 * KB).build());
        let holder = rt.register_class("Holder");
        let blob = rt.register_class("Blob");
        let scratch = rt.register_class("Scratch");

        let root = rt.add_static();
        let h = rt.alloc(holder, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root, Some(h));
        // Same pressure as the pruned-blob test: the heap stays nearly
        // full, so SELECT/PRUNE collections run constantly — but the
        // in-use reference must never be chosen.
        let b = rt.alloc(blob, &AllocSpec::leaf(116 * 1024)).unwrap();
        rt.write_field(h, 0, Some(b));

        for _ in 0..2000 {
            rt.alloc(scratch, &AllocSpec::leaf(4096)).expect("scratch");
            rt.release_registers();
            let got = rt.read_field(h, 0).expect("blob is never pruned");
            assert_eq!(got, Some(b));
        }
    }

    #[test]
    fn image_restore_is_exact_after_pruning() {
        // Run the list leak until references are poisoned, then image and
        // restore: the heap graph (poison bits included), pruner state and
        // fingerprint must survive exactly, and the restored runtime must
        // pass the full invariant sanitizer.
        let config = PruningConfig::builder(256 * KB).build();
        let (mut rt, _, err) = run_list_leak(config.clone(), 2000);
        assert!(err.is_none());
        assert!(rt.prune_report().total_pruned_refs > 0);

        let image = rt.image();
        let fingerprint = rt.fingerprint();
        let mut restored = Runtime::restore_from(config, &image).expect("image restores");
        assert!(restored.verify_heap().is_empty());
        assert_eq!(restored.fingerprint(), fingerprint);
        assert_eq!(restored.image(), image, "image round-trips exactly");
        assert_eq!(restored.gc_count(), rt.gc_count());
        assert_eq!(restored.used_bytes(), rt.used_bytes());
        assert_eq!(restored.state(), rt.state());
        assert_eq!(restored.history().len(), rt.history().len());
        assert_eq!(
            restored.averted_oom().map(|e| e.gc_index()),
            rt.averted_oom().map(|e| e.gc_index())
        );
        assert_eq!(
            restored.prune_report().pruned_edges,
            rt.prune_report().pruned_edges
        );
    }

    #[test]
    fn restored_runtime_replays_identically() {
        // Deterministic replay: continuing the original and the restored
        // runtime through the same request suffix must keep their
        // fingerprints in lock step — allocation order, collection points
        // and pruning decisions all included.
        let config = PruningConfig::builder(256 * KB).build();
        let (mut original, _, err) = run_list_leak(config.clone(), 1500);
        assert!(err.is_none());

        let image = original.image();
        let mut restored = Runtime::restore_from(config, &image).expect("image restores");
        // Class ids were re-registered in order; resolve by name.
        let node = restored.classes().lookup("Node").unwrap();
        let scratch = restored.classes().lookup("Scratch").unwrap();
        // The list head is static slot 0 in `run_list_leak`; slot numbering
        // survives restore, so the reattach hook re-derives it.
        let head = restored.static_id(0).expect("static slot 0 restored");

        for _ in 0..500 {
            for rt in [&mut original, &mut restored] {
                let n = rt.alloc(node, &AllocSpec::new(1, 0, 512)).unwrap();
                rt.write_field(n, 0, rt.static_ref(head));
                rt.set_static(head, Some(n));
                rt.alloc(scratch, &AllocSpec::leaf(2048)).unwrap();
            }
        }
        assert_eq!(original.gc_count(), restored.gc_count());
        assert_eq!(original.fingerprint(), restored.fingerprint());
        assert!(restored.verify_heap().is_empty());
    }

    #[test]
    fn restore_refuses_bad_class_indices_and_states() {
        let config = PruningConfig::builder(256 * KB).build();
        let (mut rt, _, _) = run_list_leak(config.clone(), 200);
        let image = rt.image();

        let mut bad_edge = image.clone();
        bad_edge.pruner.edges.push((99, 0, 3));
        assert_eq!(
            Runtime::restore_from(config.clone(), &bad_edge).err(),
            Some(crate::recovery::RestoreImageError::BadClassIndex(99))
        );

        let mut bad_state = image.clone();
        bad_state.pruner.state = "LIMBO".to_owned();
        assert_eq!(
            Runtime::restore_from(config, &bad_state).err(),
            Some(crate::recovery::RestoreImageError::BadState(
                "LIMBO".to_owned()
            ))
        );
    }

    #[test]
    fn capture_snapshot_survives_poisoned_references() {
        // Run the list leak until pruning has poisoned references, then
        // snapshot: the capture must skip poisoned edges rather than
        // tracing through them, and still record the surviving list.
        let (mut rt, _, err) = run_list_leak(PruningConfig::builder(256 * KB).build(), 3000);
        assert!(err.is_none());
        assert!(rt.prune_report().total_pruned_refs > 0);

        let capture = rt.capture_snapshot();
        let snapshot = &capture.snapshot;
        assert!(snapshot.object_count() > 0);
        assert_eq!(snapshot.live_bytes(), rt.used_bytes());
        assert!(snapshot.classes.iter().any(|c| c == "Node"));
        // The snapshot collection is numbered like any other.
        assert_eq!(snapshot.gc_index, rt.gc_count());
        // And it round-trips through the file format.
        let parsed = lp_diagnose::HeapSnapshot::parse(&snapshot.to_jsonl()).unwrap();
        assert_eq!(parsed.object_count(), snapshot.object_count());
    }

    #[test]
    fn capture_snapshot_emits_paired_events() {
        let mut rt = Runtime::new(PruningConfig::builder(256 * KB).flight_recorder(64).build());
        let node = rt.register_class("Node");
        let root = rt.add_static();
        let n = rt.alloc(node, &AllocSpec::leaf(64)).unwrap();
        rt.set_static(root, Some(n));

        let capture = rt.capture_snapshot();
        assert_eq!(capture.snapshot.object_count(), 1);

        let lines = rt.telemetry().recorder_snapshot();
        let begin = lines
            .iter()
            .find_map(|l| match l.event {
                Event::SnapshotBegin { gc_index } => Some(gc_index),
                _ => None,
            })
            .expect("snapshot_begin emitted");
        let (end_gc, objects, nanos) = lines
            .iter()
            .find_map(|l| match l.event {
                Event::SnapshotEnd {
                    gc_index,
                    objects,
                    nanos,
                    ..
                } => Some((gc_index, objects, nanos)),
                _ => None,
            })
            .expect("snapshot_end emitted");
        assert_eq!(begin, end_gc);
        assert_eq!(objects, 1);
        assert!(nanos > 0);
        assert_eq!(
            nanos,
            capture.trace_nanos + capture.record_nanos,
            "pause cost in the event matches the capture"
        );
    }

    #[test]
    fn exhaustion_writes_snapshot_once() {
        let dir =
            std::env::temp_dir().join(format!("lp-exhaustion-snapshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exhausted.jsonl");
        let _ = std::fs::remove_file(&path);

        // Base config (no pruning) exhausts quickly and deterministically.
        let config = PruningConfig::builder(64 * KB)
            .pruning(false)
            .snapshot_on_exhaustion(&path)
            .build();
        let (_rt, _, err) = run_list_leak(config, 10_000);
        assert!(err.expect("base config must exhaust").is_out_of_memory());

        let text = std::fs::read_to_string(&path).expect("snapshot written");
        let snapshot = lp_diagnose::HeapSnapshot::parse(&text).unwrap();
        assert!(snapshot.object_count() > 0);
        assert!(snapshot.classes.iter().any(|c| c == "Node"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn postmortem_snapshot_records_poisoned_edges_and_every_slot() {
        let (mut rt, _, err) = run_list_leak(PruningConfig::builder(256 * KB).build(), 3000);
        assert!(err.is_none());
        assert!(rt.prune_report().total_pruned_refs > 0);
        rt.release_registers();

        let bundle = rt.capture_postmortem("manual");
        let snapshot = &bundle.snapshot;
        // The delta v1 could not show: poisoned Node -> Node references
        // survive in the capture instead of disappearing behind the
        // tracer's "skip poisoned" rule.
        assert!(snapshot.poisoned_edge_count() > 0);
        // Every occupied slot lands in exactly one reachability bucket
        // and the totals match the heap's own accounting.
        assert_eq!(snapshot.used, Some(rt.used_bytes()));
        assert_eq!(
            snapshot.live_bytes() + snapshot.dead_reachable_bytes() + snapshot.floating_bytes(),
            rt.used_bytes()
        );
        // The pruner header names the pruned edge and the averted OOM.
        let pruner = snapshot.pruner.as_ref().expect("pruner state recorded");
        assert!(pruner.averted_oom);
        assert!(!pruner.pruned_edges.is_empty());
        let top = &pruner.pruned_edges[0];
        assert_eq!(snapshot.class_name(top.src), "Node");
        assert_eq!(snapshot.class_name(top.tgt), "Node");
        // And the whole bundle round-trips through the file format.
        let parsed = PostmortemBundle::parse(&bundle.to_jsonl()).expect("bundle parses");
        parsed.check().expect("bundle is internally consistent");
        assert_eq!(parsed.trigger, "manual");
        assert_eq!(
            parsed.snapshot.poisoned_edge_count(),
            snapshot.poisoned_edge_count()
        );
    }

    #[test]
    fn postmortem_captures_dead_but_reachable_objects() {
        let mut rt = Runtime::new(PruningConfig::builder(128 * KB).build());
        let holder = rt.register_class("Holder");
        let blob = rt.register_class("Blob");
        let scratch = rt.register_class("Scratch");

        // Two holders with stale blobs. The first blob supplies the stale
        // bytes that make SELECT choose Holder -> Blob; the second blob
        // is *also* pinned by a static, so PRUNE poisons its reference
        // (the whole edge type is pruned) while the sweep cannot reclaim
        // the object itself.
        let root1 = rt.add_static();
        let h1 = rt.alloc(holder, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root1, Some(h1));
        let b1 = rt.alloc(blob, &AllocSpec::leaf(100 * 1024)).unwrap();
        rt.write_field(h1, 0, Some(b1));

        let root2 = rt.add_static();
        let h2 = rt.alloc(holder, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root2, Some(h2));
        let b2 = rt.alloc(blob, &AllocSpec::leaf(16 * 1024)).unwrap();
        rt.write_field(h2, 0, Some(b2));
        let pin = rt.add_static();
        rt.set_static(pin, Some(b2));

        let mut pruned = false;
        for _ in 0..10_000 {
            rt.alloc(scratch, &AllocSpec::leaf(4096)).expect("scratch");
            rt.release_registers();
            if rt.prune_report().total_pruned_refs > 0 {
                pruned = true;
                break;
            }
        }
        assert!(pruned, "the Holder -> Blob edge should be pruned");
        // Both references of the edge type were poisoned in the same
        // PRUNE; the pinned blob survived its sweep.
        assert!(rt.read_field(h2, 0).is_err(), "h2's reference is poisoned");

        // Drop the pin: the blob is now dead but reachable — only the
        // poisoned reference still leads to it, and only until the next
        // sweep erases it. The non-destructive capture makes it visible.
        rt.set_static(pin, None);
        let bundle = rt.capture_postmortem("manual");
        let snapshot = &bundle.snapshot;
        assert!(
            snapshot.dead_reachable_bytes() >= 16 * KB,
            "expected the 16 KiB blob behind the poisoned edge, got {}",
            snapshot.dead_reachable_bytes()
        );
        assert!(snapshot.objects.iter().any(|o| {
            o.reach == lp_diagnose::Reachability::DeadReachable
                && snapshot.class_name(o.class) == "Blob"
                && u64::from(o.bytes) >= 16 * KB
        }));
        assert_eq!(
            snapshot.live_bytes() + snapshot.dead_reachable_bytes() + snapshot.floating_bytes(),
            rt.used_bytes()
        );
    }

    #[test]
    fn exhaustion_writes_rate_limited_postmortem_bundle() {
        let dir = std::env::temp_dir().join(format!("lp-postmortem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Base config (no pruning) exhausts quickly and deterministically.
        let config = PruningConfig::builder(64 * KB)
            .pruning(false)
            .flight_recorder(32)
            .postmortem_on(&dir)
            .build();
        let (mut rt, _, err) = run_list_leak(config, 10_000);
        assert!(err.expect("base config must exhaust").is_out_of_memory());

        let exhaustion_bundles = |dir: &std::path::Path| -> Vec<String> {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .expect("postmortem dir created")
                .map(|e| {
                    e.expect("dir entry")
                        .file_name()
                        .to_string_lossy()
                        .into_owned()
                })
                .filter(|n| n.contains("exhaustion"))
                .collect();
            names.sort();
            names
        };
        assert_eq!(
            exhaustion_bundles(&dir).len(),
            1,
            "exactly one automatic exhaustion bundle"
        );
        assert!(dir.join("postmortem-latest.jsonl").exists());

        // A second exhaustion right after the first is inside the
        // rate-limit window: no new bundle.
        let more = rt.register_class("More");
        assert!(rt.alloc(more, &AllocSpec::leaf(4096)).is_err());
        assert_eq!(exhaustion_bundles(&dir).len(), 1);

        // The manual path bypasses the rate limit and stamps its trigger.
        let manual = rt
            .write_postmortem("operator")
            .expect("manual bundle written");
        assert!(manual.exists());
        let text = std::fs::read_to_string(dir.join("postmortem-latest.jsonl")).unwrap();
        let bundle = PostmortemBundle::parse(&text).expect("bundle parses");
        bundle.check().expect("bundle is internally consistent");
        assert_eq!(bundle.trigger, "operator");
        assert!(bundle.snapshot.object_count() > 0);
        // The tiny recorder evicted events during the run; the bundle
        // says so instead of pretending the tail is complete.
        assert!(bundle.recorder_dropped > 0);
        assert!(bundle.recorder_dropped <= rt.telemetry().recorder_dropped());
        assert!(bundle.events.len() <= 32);
        // Each successful write leaves a marker event in the recorder.
        let written = rt
            .telemetry()
            .recorder_snapshot()
            .iter()
            .filter(|l| matches!(l.event, Event::PostmortemWritten { .. }))
            .count();
        assert!(written >= 1, "postmortem_written event recorded");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_machine_progresses_through_observe() {
        let (rt, _, _) = run_list_leak(PruningConfig::builder(512 * KB).build(), 2000);
        let states: Vec<State> = rt.history().iter().map(|r| r.state).collect();
        assert!(states.contains(&State::Inactive));
        assert!(states.contains(&State::Observe));
        assert!(states.contains(&State::Select));
        assert!(states.contains(&State::Prune));
        // INACTIVE never recurs after OBSERVE.
        let first_observe = states.iter().position(|s| *s == State::Observe).unwrap();
        assert!(states[first_observe..]
            .iter()
            .all(|s| *s != State::Inactive));
    }

    #[test]
    fn option_one_waits_for_exhaustion() {
        let (rt, iters, err) = run_list_leak(
            PruningConfig::builder(256 * KB)
                .prune_only_when_full(true)
                .build(),
            3000,
        );
        assert!(
            err.is_none(),
            "option (1) still tolerates the leak: {err:?}"
        );
        assert_eq!(iters, 3000);
        // The first PRUNE happened only after a true exhaustion, i.e. some
        // SELECT collection was followed by another SELECT.
        let states: Vec<State> = rt.history().iter().map(|r| r.state).collect();
        let first_prune = states.iter().position(|s| *s == State::Prune).unwrap();
        let selects_before = states[..first_prune]
            .iter()
            .filter(|s| **s == State::Select)
            .count();
        assert!(selects_before >= 1);
    }

    #[test]
    fn finalizers_run_for_dead_objects_and_hook_fires() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let mut rt = Runtime::new(PruningConfig::builder(64 * KB).build());
        let res = rt.register_class("Resource");
        let count = Arc::new(AtomicU64::new(0));
        let hook_count = Arc::clone(&count);
        rt.set_finalizer_hook(Box::new(move |_| {
            hook_count.fetch_add(1, Ordering::Relaxed);
        }));

        for _ in 0..200 {
            rt.alloc_finalizable(res, &AllocSpec::leaf(1024)).unwrap();
            rt.release_registers();
        }
        rt.force_gc();
        assert!(rt.counters().finalizers_run > 0);
        assert_eq!(count.load(Ordering::Relaxed), rt.counters().finalizers_run);
    }

    #[test]
    fn barrier_counters_track_cold_path() {
        let mut rt = Runtime::new(
            PruningConfig::builder(1024 * KB)
                .force_state(ForcedState::Observe)
                .build(),
        );
        let pair = rt.register_class("Pair");
        let root = rt.add_static();
        let a = rt.alloc(pair, &AllocSpec::with_refs(1)).unwrap();
        let b = rt.alloc(pair, &AllocSpec::default()).unwrap();
        rt.set_static(root, Some(a));
        rt.write_field(a, 0, Some(b));

        // Freshly written reference: fast path.
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().barrier_cold_hits, 0);

        // A collection sets the unlogged bit; the next read is cold, the
        // one after that fast again.
        rt.force_gc();
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().barrier_cold_hits, 1);
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().barrier_cold_hits, 1);
        assert_eq!(rt.counters().ref_reads, 3);
    }

    #[test]
    fn barrier_mode_none_skips_all_bookkeeping() {
        let mut rt = Runtime::new(PruningConfig::base(1024 * KB));
        let pair = rt.register_class("Pair");
        let root = rt.add_static();
        let a = rt.alloc(pair, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root, Some(a));
        rt.write_field(a, 0, Some(a));
        rt.force_gc();
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().barrier_cold_hits, 0);
    }

    #[test]
    fn most_stale_policy_prunes_live_but_stale_data() {
        // A structure the program uses only rarely: MostStale reclaims it
        // (and the program later dies), the default policy's maxstaleuse
        // protects it.
        fn run(policy: PredictionPolicy) -> Option<RuntimeError> {
            let mut rt = Runtime::new(PruningConfig::builder(128 * KB).policy(policy).build());
            let holder = rt.register_class("Cache");
            let val = rt.register_class("Value");
            let node = rt.register_class("Node");
            let scratch = rt.register_class("Scratch");

            let root = rt.add_static();
            let h = rt.alloc(holder, &AllocSpec::with_refs(1)).unwrap();
            rt.set_static(root, Some(h));
            let v = rt.alloc(val, &AllocSpec::leaf(256)).unwrap();
            rt.write_field(h, 0, Some(v));

            // A genuine leak to exercise pruning, plus a rare (every 64
            // iterations) use of the cache.
            let head = rt.add_static();
            for i in 0..4000u64 {
                let unit = rt.alloc(node, &AllocSpec::new(1, 0, 512)).and_then(|n| {
                    rt.write_field(n, 0, rt.static_ref(head));
                    rt.set_static(head, Some(n));
                    rt.alloc(scratch, &AllocSpec::leaf(2048))
                });
                if let Err(e) = unit {
                    return Some(e);
                }
                if i % 64 == 0 {
                    if let Err(e) = rt.read_field(h, 0) {
                        return Some(e);
                    }
                }
            }
            None
        }

        let default_err = run(PredictionPolicy::LeakPruning);
        assert!(default_err.is_none(), "default survives: {default_err:?}");
        let most_stale_err = run(PredictionPolicy::MostStale);
        assert!(
            matches!(most_stale_err, Some(RuntimeError::PrunedAccess(_))),
            "most-stale should eventually prune the rarely-used cache: {most_stale_err:?}"
        );
    }

    #[test]
    fn debug_format_is_nonempty() {
        let rt = Runtime::new(PruningConfig::builder(KB).build());
        assert!(format!("{rt:?}").contains("Runtime"));
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use crate::config::ForcedState;

    fn observing_runtime() -> (Runtime, Handle, Handle) {
        let mut rt = Runtime::new(
            PruningConfig::builder(1 << 20)
                .force_state(ForcedState::Observe)
                .build(),
        );
        let cls = rt.register_class("T");
        let root = rt.add_static();
        let a = rt.alloc(cls, &AllocSpec::with_refs(2)).unwrap();
        let b = rt.alloc(cls, &AllocSpec::default()).unwrap();
        rt.set_static(root, Some(a));
        rt.write_field(a, 0, Some(b));
        (rt, a, b)
    }

    #[test]
    fn null_reads_stay_on_fast_path() {
        let (mut rt, a, _) = observing_runtime();
        rt.force_gc();
        // Field 1 is null: a null reference never carries tag bits.
        assert_eq!(rt.read_field(a, 1).unwrap(), None);
        assert_eq!(rt.counters().barrier_cold_hits, 0);
    }

    #[test]
    fn barrier_clears_target_staleness() {
        let (mut rt, a, b) = observing_runtime();
        for _ in 0..8 {
            rt.force_gc(); // b ages
        }
        assert!(rt.stale_of(b) >= 2);
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.stale_of(b), 0, "use zeroes the stale counter");
    }

    #[test]
    fn max_stale_use_updated_only_for_stale_targets() {
        let (mut rt, a, _) = observing_runtime();
        // One collection: staleness 1 — "not very stale", no edge update.
        rt.force_gc();
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().stale_use_updates, 0);
        assert_eq!(rt.edge_table().len(), 0);

        // Several collections: staleness >= 2 — update recorded.
        for _ in 0..4 {
            rt.force_gc();
        }
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().stale_use_updates, 1);
        assert_eq!(rt.edge_table().len(), 1);
    }

    /// §4.1 boundary: staleness 0 (the target was just used through another
    /// reference) must not update `max_stale_use`.
    #[test]
    fn stale_zero_never_updates_edge_table() {
        let (mut rt, a, b) = observing_runtime();
        rt.write_field(a, 1, Some(b)); // second path to the same target
        rt.force_gc(); // tags both fields; b's staleness is now 1
        rt.read_field(a, 0).unwrap(); // clears b's staleness to 0
        assert_eq!(rt.stale_of(b), 0);
        // Cold-path read through the still-tagged second field: stale = 0.
        let cold_before = rt.counters().barrier_cold_hits;
        rt.read_field(a, 1).unwrap();
        assert_eq!(rt.counters().barrier_cold_hits, cold_before + 1);
        assert_eq!(rt.counters().stale_use_updates, 0);
        assert_eq!(rt.edge_table().len(), 0);
    }

    /// §4.1 boundary: staleness exactly 1 — "a value of 1 is not very
    /// stale" — must not update the edge table.
    #[test]
    fn stale_one_never_updates_edge_table() {
        let (mut rt, a, b) = observing_runtime();
        rt.force_gc();
        assert_eq!(rt.stale_of(b), 1);
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().stale_use_updates, 0);
        assert_eq!(rt.edge_table().len(), 0);
    }

    /// §4.1 boundary: staleness exactly 2 is the first level that records a
    /// stale use, and the recorded `max_stale_use` is exactly 2.
    #[test]
    fn stale_two_records_exactly_one_update() {
        let (mut rt, a, b) = observing_runtime();
        rt.force_gc();
        rt.force_gc();
        assert_eq!(rt.stale_of(b), 2);
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().stale_use_updates, 1);
        let entries: Vec<_> = rt.edge_table().iter().collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].max_stale_use, 2);
    }

    /// In INACTIVE the pruner is not observing: stale uses tick nothing and
    /// the edge table stays empty, no matter how stale the target is.
    #[test]
    fn inactive_state_records_no_stale_uses() {
        // Large heap, no forced state: occupancy stays far below the
        // expected-use threshold, so the machine stays INACTIVE.
        let mut rt = Runtime::new(PruningConfig::builder(1 << 24).build());
        let cls = rt.register_class("T");
        let root = rt.add_static();
        let a = rt.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = rt.alloc(cls, &AllocSpec::default()).unwrap();
        rt.set_static(root, Some(a));
        rt.write_field(a, 0, Some(b));
        for _ in 0..6 {
            rt.force_gc();
        }
        assert_eq!(rt.state(), crate::State::Inactive);
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().stale_use_updates, 0);
        assert_eq!(rt.edge_table().len(), 0);
    }

    #[test]
    fn overwriting_a_field_resets_its_logging_state() {
        let (mut rt, a, b) = observing_runtime();
        rt.force_gc();
        // The program overwrites the field: the new reference starts with
        // clear bits, so the next read is a fast-path read.
        rt.write_field(a, 0, Some(b));
        rt.read_field(a, 0).unwrap();
        assert_eq!(rt.counters().barrier_cold_hits, 0);
    }

    #[test]
    fn stale_census_ranks_classes_by_stale_bytes() {
        let mut rt = Runtime::new(
            PruningConfig::builder(1 << 20)
                .force_state(ForcedState::Observe)
                .build(),
        );
        let big = rt.register_class("BigStale");
        let small = rt.register_class("SmallStale");
        let root = rt.add_static();
        let holder_cls = rt.register_class("Holder");
        let holder = rt.alloc(holder_cls, &AllocSpec::with_refs(2)).unwrap();
        rt.set_static(root, Some(holder));
        let b = rt.alloc(big, &AllocSpec::leaf(10_000)).unwrap();
        let s = rt.alloc(small, &AllocSpec::leaf(100)).unwrap();
        rt.write_field(holder, 0, Some(b));
        rt.write_field(holder, 1, Some(s));
        for _ in 0..8 {
            rt.force_gc();
        }
        let census = rt.stale_census(2);
        assert!(census.len() >= 2);
        assert_eq!(rt.class_name(census[0].0), "BigStale");
        assert!(census[0].1 > census[1].1);
        // A tighter threshold excludes everything fresh.
        assert!(rt.stale_census(u8::MAX).is_empty() || rt.stale_census(7).len() <= census.len());
    }

    #[test]
    fn finalizers_skippable_after_pruning_starts() {
        let mut rt = Runtime::new(
            PruningConfig::builder(128 * 1024)
                .run_finalizers_after_prune(false)
                .build(),
        );
        let node = rt.register_class("Node");
        let res = rt.register_class("Resource");
        let head = rt.add_static();
        // Leak until pruning starts, with finalizable transients.
        for _ in 0..4000 {
            let n = rt.alloc(node, &AllocSpec::new(1, 0, 256)).unwrap();
            rt.write_field(n, 0, rt.static_ref(head));
            rt.set_static(head, Some(n));
            rt.alloc_finalizable(res, &AllocSpec::leaf(1024)).unwrap();
            rt.release_registers();
            if rt.averted_oom().is_some() {
                break;
            }
        }
        assert!(rt.averted_oom().is_some(), "pruning engaged");
        let skipped_at_prune = rt.counters().finalizers_skipped;
        // Keep going: finalizers must now be skipped, not run.
        let ran_before = rt.counters().finalizers_run;
        for _ in 0..500 {
            rt.alloc_finalizable(res, &AllocSpec::leaf(1024)).unwrap();
            rt.release_registers();
        }
        assert!(rt.counters().finalizers_skipped > skipped_at_prune);
        assert_eq!(rt.counters().finalizers_run, ran_before);
    }

    #[test]
    fn frames_participate_in_rooting() {
        let mut rt = Runtime::new(PruningConfig::builder(1 << 20).build());
        let cls = rt.register_class("T");
        let f = rt.push_frame(2);
        let a = rt.alloc(cls, &AllocSpec::leaf(64)).unwrap();
        rt.set_frame_ref(f, 0, Some(a));
        rt.release_registers();
        rt.force_gc();
        assert!(rt.is_live(a), "frame keeps the object alive");
        assert_eq!(rt.frame_ref(f, 0), Some(a));

        rt.pop_frame(f);
        rt.force_gc();
        assert!(!rt.is_live(a), "popping the frame drops the root");
    }

    #[test]
    fn scalar_words_roundtrip_through_runtime() {
        let mut rt = Runtime::new(PruningConfig::builder(1 << 20).build());
        let cls = rt.register_class("T");
        let h = rt.alloc(cls, &AllocSpec::new(0, 2, 0)).unwrap();
        rt.write_word(h, 1, 0xfeed);
        assert_eq!(rt.read_word(h, 1), 0xfeed);
        assert_eq!(rt.read_word(h, 0), 0);
    }
}

#[cfg(test)]
mod generational_tests {
    use super::*;

    /// A transient-heavy program: with a nursery, almost all collection
    /// work happens in cheap minor collections.
    #[test]
    fn nursery_absorbs_transient_garbage() {
        let mut rt = Runtime::new(
            PruningConfig::builder(1 << 20)
                .nursery_fraction(0.25)
                .build(),
        );
        let cls = rt.register_class("Transient");
        for _ in 0..4000 {
            rt.alloc(cls, &AllocSpec::leaf(512)).unwrap();
            rt.release_registers();
        }
        assert!(rt.counters().minor_collections > 0, "minor GCs ran");
        assert_eq!(rt.gc_count(), 0, "no full collection was ever needed");
    }

    /// Long-lived data survives minor collections via the remembered set
    /// and stays readable.
    #[test]
    fn remembered_set_preserves_old_to_young_stores() {
        let mut rt = Runtime::new(
            PruningConfig::builder(1 << 20)
                .nursery_fraction(0.2)
                .build(),
        );
        let cls = rt.register_class("Holder");
        let root = rt.add_static();
        let holder = rt.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root, Some(holder));
        rt.force_gc(); // promote the holder

        // Repeatedly store fresh young values into the old holder while
        // churning transients through the nursery.
        for i in 0..2000u64 {
            let value = rt.alloc(cls, &AllocSpec::new(0, 1, 64)).unwrap();
            rt.write_word(value, 0, i);
            rt.write_field(holder, 0, Some(value));
            rt.alloc(cls, &AllocSpec::leaf(512)).unwrap(); // transient
            rt.release_registers();
            let read_back = rt.read_field(holder, 0).unwrap().expect("kept alive");
            assert_eq!(rt.read_word(read_back, 0), i);
        }
        assert!(rt.counters().minor_collections > 0);
        assert!(rt.counters().remembered_stores > 0);
    }

    /// The headline composition: a leak is tolerated identically with the
    /// generational configuration, with pruning still only acting at
    /// full-heap collections.
    #[test]
    fn pruning_tolerates_leaks_with_a_nursery() {
        let mut rt = Runtime::new(
            PruningConfig::builder(256 * 1024)
                .nursery_fraction(0.2)
                .build(),
        );
        let node = rt.register_class("Node");
        let scratch = rt.register_class("Scratch");
        let head = rt.add_static();
        for _ in 0..5000 {
            let n = rt.alloc(node, &AllocSpec::new(1, 0, 512)).unwrap();
            rt.write_field(n, 0, rt.static_ref(head));
            rt.set_static(head, Some(n));
            rt.alloc(scratch, &AllocSpec::leaf(2048)).unwrap();
            rt.release_registers();
        }
        assert!(rt.prune_report().total_pruned_refs > 0, "leak pruned");
        assert!(rt.counters().minor_collections > 0, "nursery active");
        assert!(rt.gc_count() > 0, "full collections drove the pruning");
    }

    /// Minor collections are far cheaper than full ones: they mark only
    /// the nursery.
    #[test]
    fn minor_collections_mark_only_the_nursery() {
        let mut rt = Runtime::new(
            PruningConfig::builder(4 << 20)
                .nursery_fraction(0.05)
                .build(),
        );
        let cls = rt.register_class("T");
        // A large old generation.
        let root = rt.add_static();
        let hub = rt.alloc(cls, &AllocSpec::with_refs(4000)).unwrap();
        rt.set_static(root, Some(hub));
        for i in 0..4000 {
            let o = rt.alloc(cls, &AllocSpec::leaf(64)).unwrap();
            rt.write_field(hub, i, Some(o));
        }
        rt.force_gc(); // promote all of it
        let full_marked = rt.history().last().unwrap().live_objects_after;
        assert!(full_marked > 4000);

        // Churn transients; minor GCs must not grow with the old gen.
        let before = rt.counters().minor_collections;
        for _ in 0..2000 {
            rt.alloc(cls, &AllocSpec::leaf(256)).unwrap();
            rt.release_registers();
        }
        assert!(rt.counters().minor_collections > before);
        assert_eq!(rt.gc_count(), 1, "only the forced full collection");
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;

    const KB: u64 = 1024;

    fn incremental_config(capacity: u64) -> PruningConfig {
        PruningConfig::builder(capacity)
            .incremental_mark(256)
            .build()
    }

    /// The headline behaviour: with bounded mark quanta the list leak is
    /// still tolerated indefinitely, and at least some full collections
    /// complete incrementally, recording a short terminal flush instead of
    /// a full-heap mark pause.
    #[test]
    fn incremental_mode_tolerates_list_leak() {
        let mut rt = Runtime::new(incremental_config(256 * KB));
        let node = rt.register_class("Node");
        let scratch = rt.register_class("Scratch");
        let head = rt.add_static();
        for _ in 0..5000 {
            let n = rt.alloc(node, &AllocSpec::new(1, 0, 512)).unwrap();
            rt.write_field(n, 0, rt.static_ref(head));
            rt.set_static(head, Some(n));
            rt.alloc(scratch, &AllocSpec::leaf(2048)).unwrap();
            rt.release_registers();
        }
        assert!(rt.prune_report().total_pruned_refs > 0, "leak pruned");
        let incremental = rt
            .history()
            .iter()
            .filter(|r| r.flush_time.is_some())
            .count();
        assert!(incremental > 0, "some collections ran incrementally");
        // SELECT and PRUNE stay stop-the-world, so not every record
        // carries a flush.
        assert!(incremental < rt.history().len());
    }

    /// Severing the only reference to an object *during* a cycle must not
    /// hide it from the closure: the deleted-reference barrier logs the
    /// overwritten target, so the snapshot is retained until the next
    /// stop-the-world collection.
    #[test]
    fn satb_barrier_retains_snapshot_reachable_objects() {
        let mut rt = Runtime::new(incremental_config(1 << 20));
        let cls = rt.register_class("T");
        let root = rt.add_static();
        let holder = rt.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        rt.set_static(root, Some(holder));
        let victim = rt.alloc(cls, &AllocSpec::leaf(64)).unwrap();
        rt.write_field(holder, 0, Some(victim));
        rt.release_registers();
        rt.force_gc(); // both objects are old and unmarked

        assert!(rt.start_incremental_cycle());
        // The holder is grey but unscanned; without the barrier this store
        // would make the victim invisible to the rest of the mark.
        rt.write_field(holder, 0, None);
        while rt.incremental_active() {
            rt.step_incremental(8);
        }
        assert!(rt.is_live(victim), "SATB retains the cycle's snapshot");
        assert!(rt.history().last().unwrap().flush_time.is_some());

        // The next stop-the-world collection sees the severed heap and
        // reclaims the floating garbage.
        rt.force_gc();
        assert!(!rt.is_live(victim));
    }

    /// A heap bigger than one quantum's budget is marked across many
    /// bounded steps, each reported as its own telemetry event.
    #[test]
    fn mark_work_is_split_into_bounded_quanta() {
        let mut rt = Runtime::new(
            PruningConfig::builder(1 << 20)
                .incremental_mark(64)
                .flight_recorder(4096)
                .build(),
        );
        let cls = rt.register_class("T");
        let root = rt.add_static();
        let hub = rt.alloc(cls, &AllocSpec::with_refs(1000)).unwrap();
        rt.set_static(root, Some(hub));
        for i in 0..1000 {
            let o = rt.alloc(cls, &AllocSpec::leaf(64)).unwrap();
            rt.write_field(hub, i, Some(o));
        }
        rt.release_registers();

        assert!(rt.start_incremental_cycle());
        let mut quanta = 0u32;
        while rt.incremental_active() {
            quanta += rt.step_incremental(1);
        }
        assert!(quanta >= 10, "1001 objects at 64/quantum, got {quanta}");
        let lines = rt.telemetry().recorder_snapshot();
        let quantum_events = lines
            .iter()
            .filter(|l| matches!(l.event, Event::MarkQuantum { .. }))
            .count();
        assert_eq!(quantum_events as u32, quanta);
        // The closing collection event carries the flush pause.
        assert!(lines.iter().any(|l| matches!(
            l.event,
            Event::Collection {
                flush_nanos: Some(_),
                ..
            }
        )));
        assert!(rt.is_live(hub));
    }

    /// Stop-the-world entry points (forced collections, snapshots) close an
    /// in-flight cycle first instead of corrupting its mark state.
    #[test]
    fn forced_collection_closes_an_active_cycle_first() {
        let mut rt = Runtime::new(incremental_config(1 << 20));
        let cls = rt.register_class("T");
        let root = rt.add_static();
        let mut prev = None;
        for _ in 0..600 {
            let n = rt.alloc(cls, &AllocSpec::new(1, 0, 64)).unwrap();
            rt.write_field(n, 0, prev);
            rt.set_static(root, Some(n));
            prev = Some(n);
        }
        rt.release_registers();

        assert!(rt.start_incremental_cycle());
        assert!(rt.incremental_active());
        let record = rt.force_gc();
        assert!(!rt.incremental_active());
        assert!(record.flush_time.is_none(), "forced record is STW");
        let n = rt.history().len();
        assert!(n >= 2, "closed cycle + forced collection");
        assert!(rt.history()[n - 2].flush_time.is_some());
    }

    /// Without the config knob the public hooks are inert.
    #[test]
    fn incremental_hooks_are_inert_without_the_knob() {
        let mut rt = Runtime::new(PruningConfig::builder(1 << 20).build());
        assert!(!rt.start_incremental_cycle());
        assert!(!rt.incremental_active());
        assert_eq!(rt.step_incremental(4), 0);
        assert_eq!(rt.gc_count(), 0);
    }
}
