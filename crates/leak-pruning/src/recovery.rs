//! Checkpoint/restore images of a running [`Runtime`](crate::Runtime).
//!
//! A [`RuntimeImage`] is the complete serializable state of a runtime at a
//! *quiescent point*: no incremental mark cycle in flight, SATB log drained,
//! no collection underway. [`Runtime::image`](crate::Runtime::image) closes
//! any in-flight cycle first, so every image honours the quiescence rule by
//! construction.
//!
//! # What an image contains — and what it deliberately omits
//!
//! Captured exactly: every occupied heap slot (class, footprint, stale
//! counter, reference words *with their tag bits* — poison included — and
//! scalar payload), the free list with per-slot generations, the nursery
//! and remembered set in order, the root set, the class registry, the
//! collector's collection count, the pruner's Figure-2 state with its edge
//! table, census, deferred out-of-memory error and staleness clock, the
//! mutator counters, and the per-collection history.
//!
//! Omitted on purpose: mark bits and the mark epoch (a restored heap starts
//! at epoch 0 with zeroed marks, indistinguishable from a fresh heap after
//! the next `begin_mark_epoch`), timing statistics (wall-clock, not
//! semantic), and everything derivable from the [`PruningConfig`]
//! (thresholds, policy, decay period) — restore takes the config as an
//! argument, so an image cannot smuggle in a policy change.
//!
//! # Fingerprints
//!
//! [`Runtime::fingerprint`](crate::Runtime::fingerprint) folds the same
//! canonical state into a 64-bit FNV-1a hash. Two runtimes with equal
//! fingerprints have identical heap graphs (including tag bits and
//! generations), identical free/young/remembered lists — hence identical
//! future allocation behaviour — and identical pruner state. Wall-clock
//! timings and telemetry are excluded, so a checkpointed-and-restored
//! runtime fingerprints identically to one that never stopped.

use crate::record::SelectionInfo;

/// Serialized form of the deferred [`OutOfMemoryError`](crate::OutOfMemoryError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomImage {
    /// Collection index at which memory was (nearly) exhausted.
    pub gc_index: u64,
    /// Bytes in use at that point.
    pub used_bytes: u64,
    /// Heap capacity.
    pub capacity: u64,
}

/// Serialized form of a [`SelectionInfo`]: class ids flattened to raw
/// indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionImage {
    /// An edge-type selection (the default policy and `IndividualRefs`).
    Edge {
        /// Source class index.
        src: u32,
        /// Target class index.
        tgt: u32,
        /// Bytes charged to the edge by the SELECT closure.
        bytes: u64,
    },
    /// A staleness-level selection (the `MostStale` comparison policy).
    StaleLevel(u8),
}

impl SelectionImage {
    /// Flattens a [`SelectionInfo`] into its serializable form.
    pub fn from_info(info: &SelectionInfo) -> Self {
        match *info {
            SelectionInfo::Edge { edge, bytes } => SelectionImage::Edge {
                src: edge.src.index(),
                tgt: edge.tgt.index(),
                bytes,
            },
            SelectionInfo::StaleLevel(level) => SelectionImage::StaleLevel(level),
        }
    }

    /// Rebuilds the [`SelectionInfo`].
    pub fn to_info(&self) -> SelectionInfo {
        match *self {
            SelectionImage::Edge { src, tgt, bytes } => SelectionInfo::Edge {
                edge: crate::edge_table::EdgeKey::new(
                    lp_heap::ClassId::from_index(src),
                    lp_heap::ClassId::from_index(tgt),
                ),
                bytes,
            },
            SelectionImage::StaleLevel(level) => SelectionInfo::StaleLevel(level),
        }
    }
}

/// The pruning engine's mutable state (see `Pruner::image` for what is
/// omitted and why). Census and edge rows are sorted by `(src, tgt)`, so
/// equal pruner states produce byte-equal images regardless of hash-map
/// iteration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrunerImage {
    /// Figure-2 state name (`INACTIVE`/`OBSERVE`/`SELECT`/`PRUNE`).
    pub state: String,
    /// Whether an allocation ever failed after a full collection.
    pub exhausted_once: bool,
    /// Whether the current SELECT/PRUNE episode is restricted to
    /// statically-covered edges.
    pub select_static_only: bool,
    /// The deferred out-of-memory error, once pruning has engaged.
    pub averted_oom: Option<OomImage>,
    /// The active selection awaiting its PRUNE collection, if any.
    pub selection: Option<SelectionImage>,
    /// Per-edge pruned-reference counts, sorted by `(src, tgt)`.
    pub pruned_census: Vec<(u32, u32, u64)>,
    /// Total references poisoned over the runtime's lifetime.
    pub total_pruned_refs: u64,
    /// The staleness clock (collections between which the mutator ran).
    pub stale_clock: u64,
    /// SELECT collections performed (drives `max_stale_use` decay).
    pub select_collections: u64,
    /// Edge-table rows as `(src, tgt, max_stale_use)`, sorted. `bytes_used`
    /// windows are zero at every quiescent point and are not captured.
    pub edges: Vec<(u32, u32, u8)>,
}

/// One serialized [`GcRecord`](crate::GcRecord): durations flattened to
/// nanoseconds, class ids to raw indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcRecordImage {
    /// Collection index.
    pub gc_index: u64,
    /// State the collection was performed in (Figure-2 name).
    pub state: String,
    /// Live bytes after the sweep.
    pub live_bytes_after: u64,
    /// Live objects after the sweep.
    pub live_objects_after: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Objects reclaimed.
    pub freed_objects: u64,
    /// References poisoned (PRUNE collections).
    pub pruned_refs: u64,
    /// The selection committed (SELECT collections).
    pub selected: Option<SelectionImage>,
    /// Mark-phase wall time in nanoseconds.
    pub mark_nanos: u64,
    /// Sweep-phase wall time in nanoseconds.
    pub sweep_nanos: u64,
    /// Final-flush pause of an incremental collection, if one.
    pub flush_nanos: Option<u64>,
}

/// The complete serializable state of a [`Runtime`](crate::Runtime) at a
/// quiescent point. See the [module docs](self) for capture/omission rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeImage {
    /// Class names in registration order — re-registering them in order
    /// reproduces every `ClassId` the heap image's raw indices refer to.
    pub classes: Vec<String>,
    /// The heap: every slot, free-list and nursery order, byte accounting.
    pub heap: lp_heap::HeapImage,
    /// The root set (statics, frames, register file).
    pub roots: lp_heap::RootImage,
    /// Full-heap collections performed; restored gc indices continue the
    /// pre-crash sequence.
    pub gc_count: u64,
    /// Mutator instrumentation counters.
    pub counters: crate::MutatorCounters,
    /// Bytes allocated since the last collection (staleness-clock gate).
    pub bytes_since_gc: u64,
    /// Reference loads since the last collection (the other gate).
    pub reads_since_gc: u64,
    /// Heap usage at the end of the last full collection (generational
    /// full-collection trigger).
    pub used_at_last_full: u64,
    /// Edge trigger for allocation-driven incremental cycles.
    pub incremental_armed: bool,
    /// The pruning engine's mutable state.
    pub pruner: PrunerImage,
    /// Per-collection history records.
    pub history: Vec<GcRecordImage>,
}

/// Why a [`RuntimeImage`] was refused by
/// [`Runtime::restore_from`](crate::Runtime::restore_from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreImageError {
    /// The heap image failed [`lp_heap::Heap::materialize`]'s validation.
    Heap(lp_heap::RestoreError),
    /// A raw class index in the image is not covered by its class list.
    BadClassIndex(u32),
    /// A state name is not one of the four Figure-2 names.
    BadState(String),
    /// The heap verifier found violations immediately after materializing —
    /// the image encodes a structurally impossible runtime.
    Verify(Vec<String>),
}

impl std::fmt::Display for RestoreImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreImageError::Heap(err) => write!(f, "heap image refused: {err}"),
            RestoreImageError::BadClassIndex(index) => {
                write!(f, "class index {index} outside the image's class list")
            }
            RestoreImageError::BadState(name) => write!(f, "unknown state name {name:?}"),
            RestoreImageError::Verify(violations) => write!(
                f,
                "restored heap failed verification with {} violation(s): {}",
                violations.len(),
                violations.join("; ")
            ),
        }
    }
}

impl std::error::Error for RestoreImageError {}

impl From<lp_heap::RestoreError> for RestoreImageError {
    fn from(err: lp_heap::RestoreError) -> Self {
        RestoreImageError::Heap(err)
    }
}

/// 64-bit FNV-1a, the fingerprint accumulator. Not cryptographic — the
/// fingerprint detects replay divergence, not adversaries.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    /// Folds raw bytes into the accumulator.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a length-prefixed `u64` (fixed 8-byte little-endian encoding,
    /// so field boundaries cannot alias).
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Folds a length-prefixed string.
    pub fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        self.write(value.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Folds a [`RuntimeImage`]'s replay-relevant state into a fingerprint:
/// classes, the full heap image (slots with tag bits and generations, free
/// list, nursery, remembered set), roots, collection count and pruner
/// state. History and counters are excluded — they carry wall-clock
/// timings and diagnostics, not semantics.
pub fn fingerprint_image(image: &RuntimeImage) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_u64(image.classes.len() as u64);
    for name in &image.classes {
        fp.write_str(name);
    }
    let heap = &image.heap;
    fp.write_u64(heap.capacity);
    fp.write_u64(heap.soft_budget.map_or(u64::MAX, |b| b));
    fp.write_u64(heap.soft_budget.is_some() as u64);
    fp.write_u64(u64::from(heap.slot_count));
    fp.write_u64(heap.slots.len() as u64);
    for slot in &heap.slots {
        fp.write_u64(u64::from(slot.slot));
        fp.write_u64(u64::from(slot.generation));
        fp.write_u64(u64::from(slot.class.index()));
        fp.write_u64(u64::from(slot.footprint));
        fp.write_u64(slot.finalizable as u64);
        fp.write_u64(u64::from(slot.stale));
        fp.write_u64(slot.refs.len() as u64);
        for &raw in &slot.refs {
            fp.write_u64(u64::from(raw));
        }
        fp.write_u64(slot.data.len() as u64);
        for &word in &slot.data {
            fp.write_u64(word);
        }
    }
    fp.write_u64(heap.free.len() as u64);
    for &(slot, generation) in &heap.free {
        fp.write_u64(u64::from(slot));
        fp.write_u64(u64::from(generation));
    }
    fp.write_u64(heap.young.len() as u64);
    for &slot in &heap.young {
        fp.write_u64(u64::from(slot));
    }
    fp.write_u64(heap.remembered.len() as u64);
    for &slot in &heap.remembered {
        fp.write_u64(u64::from(slot));
    }
    let roots = &image.roots;
    fp.write_u64(roots.statics.len() as u64);
    for entry in &roots.statics {
        fingerprint_root(&mut fp, entry.as_ref());
    }
    fp.write_u64(roots.frames.len() as u64);
    for frame in &roots.frames {
        match frame {
            None => fp.write_u64(0),
            Some(slots) => {
                fp.write_u64(1);
                fp.write_u64(slots.len() as u64);
                for entry in slots {
                    fingerprint_root(&mut fp, entry.as_ref());
                }
            }
        }
    }
    fp.write_u64(roots.free_frames.len() as u64);
    for &frame in &roots.free_frames {
        fp.write_u64(u64::from(frame));
    }
    fp.write_u64(roots.registers.len() as u64);
    for entry in &roots.registers {
        fingerprint_root(&mut fp, Some(entry));
    }
    fp.write_u64(image.gc_count);
    let pruner = &image.pruner;
    fp.write_str(&pruner.state);
    fp.write_u64(pruner.exhausted_once as u64);
    fp.write_u64(pruner.select_static_only as u64);
    match &pruner.averted_oom {
        None => fp.write_u64(0),
        Some(oom) => {
            fp.write_u64(1);
            fp.write_u64(oom.gc_index);
            fp.write_u64(oom.used_bytes);
            fp.write_u64(oom.capacity);
        }
    }
    match &pruner.selection {
        None => fp.write_u64(0),
        Some(SelectionImage::Edge { src, tgt, bytes }) => {
            fp.write_u64(1);
            fp.write_u64(u64::from(*src));
            fp.write_u64(u64::from(*tgt));
            fp.write_u64(*bytes);
        }
        Some(SelectionImage::StaleLevel(level)) => {
            fp.write_u64(2);
            fp.write_u64(u64::from(*level));
        }
    }
    fp.write_u64(pruner.pruned_census.len() as u64);
    for &(src, tgt, refs) in &pruner.pruned_census {
        fp.write_u64(u64::from(src));
        fp.write_u64(u64::from(tgt));
        fp.write_u64(refs);
    }
    fp.write_u64(pruner.total_pruned_refs);
    fp.write_u64(pruner.stale_clock);
    fp.write_u64(pruner.select_collections);
    fp.write_u64(pruner.edges.len() as u64);
    for &(src, tgt, max_stale_use) in &pruner.edges {
        fp.write_u64(u64::from(src));
        fp.write_u64(u64::from(tgt));
        fp.write_u64(u64::from(max_stale_use));
    }
    fp.finish()
}

fn fingerprint_root(fp: &mut Fingerprint, entry: Option<&(u32, u32)>) {
    match entry {
        None => fp.write_u64(0),
        Some(&(slot, generation)) => {
            fp.write_u64(1);
            fp.write_u64(u64::from(slot));
            fp.write_u64(u64::from(generation));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vector.
        let mut fp = Fingerprint::new();
        fp.write(b"a");
        assert_eq!(fp.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn selection_image_roundtrip() {
        let info = SelectionInfo::Edge {
            edge: crate::edge_table::EdgeKey::new(
                lp_heap::ClassId::from_index(3),
                lp_heap::ClassId::from_index(7),
            ),
            bytes: 4096,
        };
        assert_eq!(SelectionImage::from_info(&info).to_info(), info);
        let stale = SelectionInfo::StaleLevel(5);
        assert_eq!(SelectionImage::from_info(&stale).to_info(), stale);
    }

    #[test]
    fn fingerprint_distinguishes_field_boundaries() {
        // "ab" then "c" must hash differently from "a" then "bc": the
        // length prefix prevents boundary aliasing.
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
