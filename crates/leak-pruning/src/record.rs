//! Per-collection records — the raw data behind the paper's figures.

use std::time::Duration;

use crate::closures::Selection;
use crate::edge_table::EdgeKey;
use crate::state::State;

/// What a SELECT collection chose to prune.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SelectionInfo {
    /// An edge type, with the `bytes_used` that won the selection.
    Edge {
        /// The selected *(source class → target class)* pair.
        edge: EdgeKey,
        /// Bytes charged to the edge by the stale closure.
        bytes: u64,
    },
    /// A staleness level (the "most stale" policy).
    StaleLevel(u8),
}

impl SelectionInfo {
    pub(crate) fn selection(&self) -> Selection {
        match *self {
            SelectionInfo::Edge { edge, .. } => Selection::Edge(edge),
            SelectionInfo::StaleLevel(level) => Selection::StaleLevel(level),
        }
    }
}

/// One full-heap collection, as the history the runtime keeps.
///
/// `live_bytes_after` is the quantity Figures 1 and 9 plot ("reachable
/// memory at the end of each full-heap collection").
#[derive(Clone, Debug)]
pub struct GcRecord {
    /// 1-based collection number.
    pub gc_index: u64,
    /// The state the collection was performed in.
    pub state: State,
    /// Bytes in use after the sweep (reachable memory).
    pub live_bytes_after: u64,
    /// Objects in the heap after the sweep.
    pub live_objects_after: u64,
    /// Bytes reclaimed by the sweep.
    pub freed_bytes: u64,
    /// Objects reclaimed by the sweep.
    pub freed_objects: u64,
    /// References poisoned during this collection (PRUNE only).
    pub pruned_refs: u64,
    /// What SELECT chose, if this was a SELECT collection that found a
    /// target.
    pub selected: Option<SelectionInfo>,
    /// Wall-clock marking time. For a collection whose mark phase ran
    /// incrementally, this accumulates every quantum plus the final flush —
    /// mutator work ran inside it, so it is *work*, not a pause.
    pub mark_time: Duration,
    /// Wall-clock sweep time.
    pub sweep_time: Duration,
    /// Wall-clock time of the final stop-the-world flush, present only
    /// when the mark phase ran incrementally. The collection's terminal
    /// mutator pause is `flush_time + sweep_time`.
    pub flush_time: Option<Duration>,
}

impl GcRecord {
    /// Total wall-clock collection time (mark work + sweep; the flush is
    /// part of `mark_time`).
    pub fn gc_time(&self) -> Duration {
        self.mark_time + self.sweep_time
    }

    /// The collection's terminal stop-the-world pause: mark + sweep when
    /// fully stop-the-world, flush + sweep when marking ran incrementally.
    pub fn pause_time(&self) -> Duration {
        self.flush_time.unwrap_or(self.mark_time) + self.sweep_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_info_converts() {
        let edge = EdgeKey::new(
            lp_heap::ClassId::from_index(1),
            lp_heap::ClassId::from_index(2),
        );
        assert_eq!(
            SelectionInfo::Edge { edge, bytes: 10 }.selection(),
            Selection::Edge(edge)
        );
        assert_eq!(
            SelectionInfo::StaleLevel(4).selection(),
            Selection::StaleLevel(4)
        );
    }

    #[test]
    fn gc_time_sums_phases() {
        let r = GcRecord {
            gc_index: 1,
            state: State::Observe,
            live_bytes_after: 0,
            live_objects_after: 0,
            freed_bytes: 0,
            freed_objects: 0,
            pruned_refs: 0,
            selected: None,
            mark_time: Duration::from_millis(3),
            sweep_time: Duration::from_millis(2),
            flush_time: None,
        };
        assert_eq!(r.gc_time(), Duration::from_millis(5));
        assert_eq!(r.pause_time(), Duration::from_millis(5));
        let incremental = GcRecord {
            flush_time: Some(Duration::from_micros(100)),
            ..r
        };
        assert_eq!(incremental.gc_time(), Duration::from_millis(5));
        assert_eq!(
            incremental.pause_time(),
            Duration::from_micros(100) + Duration::from_millis(2)
        );
    }
}
