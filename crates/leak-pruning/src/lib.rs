//! # Leak pruning
//!
//! A Rust reproduction of **"Leak Pruning"** (Michael D. Bond and Kathryn S.
//! McKinley, ASPLOS 2009): keep leaky managed programs running by predicting
//! which reachable-but-dead objects the program will never use again and
//! reclaiming them when the program is about to run out of memory —
//! *poisoning* the references to them so that any later access raises an
//! error carrying the original `OutOfMemoryError` as its cause, which
//! preserves program semantics.
//!
//! The crate provides:
//!
//! * [`Runtime`] — a managed runtime (heap + roots + collector + pruning
//!   engine) that mutator programs allocate on and access through the
//!   paper's conditional read barrier;
//! * the state machine of Figure 2 ([`State`], [`next_state`]);
//! * the staleness/edge-table prediction machinery of §4 ([`EdgeTable`],
//!   [`EdgeKey`]);
//! * the three prediction policies of §6.1 ([`PredictionPolicy`]);
//! * configuration ([`PruningConfig`]) covering the paper's thresholds
//!   (50% expected use, 90% nearly-full, the 100%-full option of §6.3),
//!   barrier modes, forced observation states for overhead experiments, and
//!   finalizer policy;
//! * errors ([`OutOfMemoryError`], [`PrunedAccessError`]) with the paper's
//!   cause-chaining semantics, and end-of-run diagnostics ([`PruneReport`]).
//!
//! # Quick start
//!
//! ```
//! use leak_pruning::{PruningConfig, Runtime, RuntimeError};
//! use lp_heap::AllocSpec;
//!
//! // A 1 MB heap with default leak pruning.
//! let mut rt = Runtime::new(PruningConfig::builder(1 << 20).build());
//! let node_class = rt.register_class("Node");
//! let scratch_class = rt.register_class("Scratch");
//!
//! // Leak: an unbounded linked list hanging off a static. Like any real
//! // program, each unit of work also allocates short-lived scratch data.
//! let head_slot = rt.add_static();
//! let node_spec = AllocSpec::new(1, 0, 1024);
//! loop {
//!     let unit_of_work = rt.alloc(node_class, &node_spec).and_then(|node| {
//!         rt.write_field(node, 0, rt.static_ref(head_slot));
//!         rt.set_static(head_slot, Some(node));
//!         rt.alloc(scratch_class, &AllocSpec::leaf(4096)) // dies at once
//!     });
//!     match unit_of_work {
//!         Ok(_) => {}
//!         Err(RuntimeError::OutOfMemory(_)) => break,
//!         Err(e) => return Err(e),
//!     }
//!     if rt.gc_count() > 40 { break; } // plenty to demonstrate pruning
//! }
//! // Leak pruning reclaimed stale list nodes along the way:
//! assert!(rt.prune_report().total_pruned_refs > 0);
//! # Ok::<(), leak_pruning::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closures;
mod config;
mod edge_table;
mod engine;
mod error;
mod liveness;
mod par_closures;
mod record;
pub mod recovery;
mod report;
mod runtime;
mod state;
pub mod verify;

pub use closures::Selection;
pub use config::{BarrierMode, ForcedState, PredictionPolicy, PruningConfig, PruningConfigBuilder};
pub use edge_table::{EdgeEntry, EdgeKey, EdgeTable, DEFAULT_SLOTS};
pub use error::{OutOfMemoryError, PrunedAccessError, RuntimeError};
pub use liveness::{LivenessSummaries, LivenessVerdict, SummaryEntry};
pub use record::{GcRecord, SelectionInfo};
pub use recovery::{
    GcRecordImage, OomImage, PrunerImage, RestoreImageError, RuntimeImage, SelectionImage,
};
pub use report::{PruneReport, PrunedEdge};
pub use runtime::{MutatorCounters, Runtime};
pub use state::{next_state, State, TransitionContext};
