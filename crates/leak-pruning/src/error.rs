//! Runtime errors: the deferred `OutOfMemoryError` and the `InternalError`
//! thrown when the program touches a pruned reference.

use std::error::Error;
use std::fmt;

use lp_heap::ClassId;

/// The out-of-memory condition leak pruning averted (or, with pruning
/// disabled, surfaced to the program).
///
/// When the heap is exhausted and leak pruning starts reclaiming memory
/// instead of failing, this error is recorded. If the program later reads a
/// pruned reference, the [`PrunedAccessError`] it receives carries this
/// error as its cause — mirroring `InternalError.getCause()` returning the
/// original `OutOfMemoryError` (§3.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemoryError {
    gc_index: u64,
    used_bytes: u64,
    capacity: u64,
}

impl OutOfMemoryError {
    pub(crate) fn new(gc_index: u64, used_bytes: u64, capacity: u64) -> Self {
        OutOfMemoryError {
            gc_index,
            used_bytes,
            capacity,
        }
    }

    /// Index of the full-heap collection at which memory ran out.
    pub fn gc_index(&self) -> u64 {
        self.gc_index
    }

    /// Bytes in use when memory ran out.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The heap capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl fmt::Display for OutOfMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory at collection {}: {}/{} bytes in use",
            self.gc_index, self.used_bytes, self.capacity
        )
    }
}

impl Error for OutOfMemoryError {}

/// Thrown when the program reads a poisoned (pruned) reference.
///
/// Models the asynchronous `InternalError` of §2: semantics are preserved
/// because the program had already run out of memory — the original
/// [`OutOfMemoryError`] is attached as the [`Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunedAccessError {
    cause: OutOfMemoryError,
    source_class: Option<ClassId>,
    field: usize,
}

impl PrunedAccessError {
    pub(crate) fn new(
        cause: OutOfMemoryError,
        source_class: Option<ClassId>,
        field: usize,
    ) -> Self {
        PrunedAccessError {
            cause,
            source_class,
            field,
        }
    }

    /// The averted out-of-memory error that pruning deferred.
    pub fn cause(&self) -> &OutOfMemoryError {
        &self.cause
    }

    /// Class of the object whose pruned field was read, or `None` when the
    /// access went through a register alias of an object that pruning had
    /// already reclaimed — there is no source object left to name.
    pub fn source_class(&self) -> Option<ClassId> {
        self.source_class
    }

    /// Index of the pruned field.
    pub fn field(&self) -> usize {
        self.field
    }
}

impl fmt::Display for PrunedAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.source_class {
            Some(class) => write!(
                f,
                "internal error: access to pruned reference (field {} of {})",
                self.field, class
            ),
            None => write!(
                f,
                "internal error: access to pruned reference (field {} of a reclaimed object)",
                self.field
            ),
        }
    }
}

impl Error for PrunedAccessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.cause)
    }
}

/// Any error surfaced to the mutator by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Memory was exhausted and could not be (further) reclaimed.
    OutOfMemory(OutOfMemoryError),
    /// The program read a reference that leak pruning poisoned.
    PrunedAccess(PrunedAccessError),
}

impl RuntimeError {
    /// Whether this is the out-of-memory variant.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, RuntimeError::OutOfMemory(_))
    }

    /// Whether this is the pruned-access variant.
    pub fn is_pruned_access(&self) -> bool {
        matches!(self, RuntimeError::PrunedAccess(_))
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfMemory(e) => e.fmt(f),
            RuntimeError::PrunedAccess(e) => e.fmt(f),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::OutOfMemory(e) => Some(e),
            RuntimeError::PrunedAccess(e) => Some(e),
        }
    }
}

impl From<OutOfMemoryError> for RuntimeError {
    fn from(e: OutOfMemoryError) -> Self {
        RuntimeError::OutOfMemory(e)
    }
}

impl From<PrunedAccessError> for RuntimeError {
    fn from(e: PrunedAccessError) -> Self {
        RuntimeError::PrunedAccess(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_access_carries_oom_cause() {
        let oom = OutOfMemoryError::new(7, 1000, 1024);
        let err = PrunedAccessError::new(oom.clone(), Some(ClassId::from_index(3)), 2);
        assert_eq!(err.cause(), &oom);
        assert_eq!(err.source_class(), Some(ClassId::from_index(3)));
        let source = Error::source(&err).expect("has a source");
        assert!(source.to_string().contains("out of memory"));
    }

    #[test]
    fn runtime_error_classification() {
        let oom = OutOfMemoryError::new(1, 10, 10);
        let e1: RuntimeError = oom.clone().into();
        assert!(e1.is_out_of_memory() && !e1.is_pruned_access());
        let e2: RuntimeError = PrunedAccessError::new(oom, Some(ClassId::from_index(0)), 0).into();
        assert!(e2.is_pruned_access());
        assert!(e2.source().is_some());
    }

    #[test]
    fn displays_are_informative() {
        let oom = OutOfMemoryError::new(3, 99, 100);
        assert!(oom.to_string().contains("collection 3"));
        let pruned = PrunedAccessError::new(oom.clone(), Some(ClassId::from_index(5)), 1);
        assert!(pruned.to_string().contains("pruned"));
    }

    #[test]
    fn reclaimed_alias_access_has_no_source_class() {
        // A register alias of a reclaimed object has no surviving source
        // object: the error says so instead of blaming an arbitrary class.
        let oom = OutOfMemoryError::new(2, 50, 50);
        let err = PrunedAccessError::new(oom, None, 4);
        assert_eq!(err.source_class(), None);
        let text = err.to_string();
        assert!(text.contains("reclaimed object"), "got: {text}");
        assert!(text.contains("field 4"));
    }
}
