//! Runtime and pruning configuration.

use std::path::{Path, PathBuf};

use crate::edge_table::DEFAULT_SLOTS;
use crate::state::State;

/// Which liveness-prediction algorithm SELECT/PRUNE use (§6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum PredictionPolicy {
    /// The paper's default algorithm: per-edge-type candidates, a stale
    /// transitive closure sizing whole data structures, prune the edge type
    /// with the most reachable-only-from-stale-roots bytes.
    #[default]
    LeakPruning,
    /// "Most stale": prune all references to every object at the highest
    /// observed staleness level — effectively the policy of the disk-based
    /// systems (LeakSurvivor, Melt, Panacea).
    MostStale,
    /// "Individual references": the default algorithm without the candidate
    /// queue and stale closure; charges each stale reference its target
    /// object's own size and prunes individual references, not subtrees.
    IndividualRefs,
}

impl PredictionPolicy {
    /// Short human-readable name matching Table 2's column headers.
    pub fn name(self) -> &'static str {
        match self {
            PredictionPolicy::LeakPruning => "Default",
            PredictionPolicy::MostStale => "Most stale",
            PredictionPolicy::IndividualRefs => "Indiv refs",
        }
    }
}

/// Whether the runtime executes the read-barrier bookkeeping.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum BarrierMode {
    /// The paper's all-the-time conditional read barrier.
    #[default]
    Full,
    /// No barrier work at all — the unmodified-VM "Base" configuration used
    /// for overhead measurements.
    None,
}

/// Pins leak pruning to one observation state forever, for overhead
/// experiments (Figures 6 and 7 force OBSERVE or SELECT continuously).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ForcedState {
    /// Maintain staleness and the edge table during every collection.
    Observe,
    /// Additionally run the stale closure and edge selection every
    /// collection, without ever pruning.
    Select,
}

impl ForcedState {
    pub(crate) fn as_state(self) -> State {
        match self {
            ForcedState::Observe => State::Observe,
            ForcedState::Select => State::Select,
        }
    }
}

/// Configuration for a [`Runtime`](crate::Runtime).
///
/// Build one with [`PruningConfig::builder`]:
///
/// ```
/// use leak_pruning::{PredictionPolicy, PruningConfig};
///
/// let config = PruningConfig::builder(64 * 1024 * 1024)
///     .policy(PredictionPolicy::LeakPruning)
///     .nearly_full_threshold(0.9)
///     .build();
/// assert!(config.pruning_enabled());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PruningConfig {
    heap_capacity: u64,
    pruning_enabled: bool,
    policy: PredictionPolicy,
    barrier_mode: BarrierMode,
    expected_threshold: f64,
    nearly_full_threshold: f64,
    prune_only_when_full: bool,
    edge_table_slots: usize,
    forced_state: Option<ForcedState>,
    nursery_fraction: Option<f64>,
    decay_max_stale_use_every: Option<u64>,
    run_finalizers_after_prune: bool,
    marker_threads: usize,
    sweep_threads: usize,
    max_gc_attempts_per_alloc: u32,
    flight_recorder_slots: Option<usize>,
    census_period: Option<u64>,
    snapshot_on_exhaustion: Option<PathBuf>,
    postmortem_dir: Option<PathBuf>,
    verify_period: Option<u64>,
    incremental_mark_budget: Option<usize>,
    liveness_summaries: Option<PathBuf>,
}

impl PruningConfig {
    /// Starts building a configuration for a heap of `heap_capacity`
    /// simulated bytes.
    pub fn builder(heap_capacity: u64) -> PruningConfigBuilder {
        PruningConfigBuilder {
            config: PruningConfig {
                heap_capacity,
                pruning_enabled: true,
                policy: PredictionPolicy::default(),
                barrier_mode: BarrierMode::default(),
                expected_threshold: 0.5,
                nearly_full_threshold: 0.9,
                prune_only_when_full: false,
                edge_table_slots: DEFAULT_SLOTS,
                forced_state: None,
                nursery_fraction: None,
                decay_max_stale_use_every: None,
                run_finalizers_after_prune: true,
                marker_threads: 1,
                sweep_threads: 1,
                max_gc_attempts_per_alloc: 64,
                flight_recorder_slots: None,
                census_period: None,
                snapshot_on_exhaustion: None,
                postmortem_dir: None,
                verify_period: if cfg!(debug_assertions) {
                    Some(1)
                } else {
                    None
                },
                incremental_mark_budget: None,
                liveness_summaries: None,
            },
        }
    }

    /// The unmodified-VM configuration: no pruning, no barrier work.
    /// This is the paper's "Base".
    pub fn base(heap_capacity: u64) -> PruningConfig {
        PruningConfig::builder(heap_capacity)
            .pruning(false)
            .barrier_mode(BarrierMode::None)
            .build()
    }

    /// Heap capacity in simulated bytes.
    pub fn heap_capacity(&self) -> u64 {
        self.heap_capacity
    }

    /// Whether pruning (as opposed to plain collection) is enabled.
    pub fn pruning_enabled(&self) -> bool {
        self.pruning_enabled
    }

    /// The prediction policy.
    pub fn policy(&self) -> PredictionPolicy {
        self.policy
    }

    /// The barrier mode.
    pub fn barrier_mode(&self) -> BarrierMode {
        self.barrier_mode
    }

    /// Occupancy above which INACTIVE transitions to OBSERVE (default 0.5).
    pub fn expected_threshold(&self) -> f64 {
        self.expected_threshold
    }

    /// Occupancy above which OBSERVE transitions to SELECT (default 0.9).
    pub fn nearly_full_threshold(&self) -> f64 {
        self.nearly_full_threshold
    }

    /// §3.1 option (1): prune only after a real out-of-memory event.
    pub fn prune_only_when_full(&self) -> bool {
        self.prune_only_when_full
    }

    /// Edge-table slot count.
    pub fn edge_table_slots(&self) -> usize {
        self.edge_table_slots
    }

    /// Pinned observation state, if any.
    pub fn forced_state(&self) -> Option<ForcedState> {
        self.forced_state
    }

    /// If set, the heap runs generationally (as the paper's substrate
    /// does): a nursery of this fraction of the heap is collected by cheap
    /// minor collections, and leak pruning piggybacks only on the
    /// full-heap collections.
    pub fn nursery_fraction(&self) -> Option<f64> {
        self.nursery_fraction
    }

    /// If set, every N-th SELECT collection decays all `max_stale_use`
    /// entries by one — the phased-behaviour policy extension §6 sketches.
    pub fn decay_max_stale_use_every(&self) -> Option<u64> {
        self.decay_max_stale_use_every
    }

    /// Whether finalizers keep running once pruning has started (§2; the
    /// paper's implementation keeps them on).
    pub fn run_finalizers_after_prune(&self) -> bool {
        self.run_finalizers_after_prune
    }

    /// Number of marker threads. With more than one thread, plain
    /// collections, OBSERVE, the default policy's SELECT closures, and
    /// PRUNE all run on the parallel work-stealing tracer (§4.5); the
    /// comparison policies of §6.1 always mark serially.
    pub fn marker_threads(&self) -> usize {
        self.marker_threads
    }

    /// Number of sweep threads. Every full-heap collection — plain,
    /// OBSERVE, SELECT and PRUNE — sweeps with this many threads; the
    /// parallel sweep is deterministically equivalent to the serial one,
    /// so the knob changes pause times only, never outcomes.
    pub fn sweep_threads(&self) -> usize {
        self.sweep_threads
    }

    /// Upper bound on collections attempted to satisfy one allocation
    /// before giving up with an out-of-memory error.
    pub fn max_gc_attempts_per_alloc(&self) -> u32 {
        self.max_gc_attempts_per_alloc
    }

    /// If set, the runtime attaches a flight recorder retaining this many
    /// of the most recent telemetry events.
    pub fn flight_recorder_slots(&self) -> Option<usize> {
        self.flight_recorder_slots
    }

    /// If set, the runtime emits an edge-table census event every N-th
    /// full-heap collection.
    pub fn census_period(&self) -> Option<u64> {
        self.census_period
    }

    /// If set, the first memory exhaustion writes a heap snapshot (JSONL,
    /// `lp-diagnose` format) to this path for offline leak diagnosis.
    pub fn snapshot_on_exhaustion(&self) -> Option<&Path> {
        self.snapshot_on_exhaustion.as_deref()
    }

    /// If set, the runtime writes postmortem bundles (v2 snapshot +
    /// flight-recorder tail + config, `lp-diagnose` bundle format) into
    /// this directory when memory is exhausted or a bundle is requested,
    /// rate-limited per trigger. Unlike
    /// [`snapshot_on_exhaustion`](Self::snapshot_on_exhaustion) the
    /// capture is non-destructive: no sweep runs and no collection index
    /// is consumed.
    pub fn postmortem_dir(&self) -> Option<&Path> {
        self.postmortem_dir.as_deref()
    }

    /// If set, the runtime runs the heap invariant sanitizer
    /// ([`Runtime::verify_heap`](crate::Runtime::verify_heap)) after every
    /// N-th full-heap collection and panics on any violation.
    ///
    /// Defaults to every collection in debug builds (so every test runs
    /// under the sanitizer) and off in release builds.
    pub fn verify_period(&self) -> Option<u64> {
        self.verify_period
    }

    /// If set, INACTIVE and OBSERVE full-heap collections mark
    /// incrementally: the transitive closure runs in bounded quanta of at
    /// most this many objects, interleaved with mutator work between
    /// allocations, with only a short stop-the-world flush and sweep at the
    /// end. SELECT and PRUNE collections stay fully stop-the-world (their
    /// selection needs an atomic view of staleness). Off by default — the
    /// paper's collector is stop-the-world.
    pub fn incremental_mark_budget(&self) -> Option<usize> {
        self.incremental_mark_budget
    }

    /// If set, SELECT runs the hybrid policy: static per-(class, field)
    /// liveness summaries (the JSONL file `lp-liveness` generates from the
    /// workload sources) are loaded from this path, and a stale reference
    /// also becomes a prune candidate when its source (class, field)
    /// carries a certainly-dead or dead-beyond-window verdict and its
    /// target's staleness has reached the verdict's minimum — without
    /// waiting for the dynamic `max_stale_use + 2` threshold. Off by
    /// default: the paper's policy is purely dynamic.
    pub fn liveness_summaries(&self) -> Option<&Path> {
        self.liveness_summaries.as_deref()
    }
}

/// Builder for [`PruningConfig`].
#[derive(Clone, Debug)]
pub struct PruningConfigBuilder {
    config: PruningConfig,
}

impl PruningConfigBuilder {
    /// Enables or disables pruning (disabled = plain reachability GC).
    pub fn pruning(mut self, enabled: bool) -> Self {
        self.config.pruning_enabled = enabled;
        self
    }

    /// Sets the prediction policy.
    pub fn policy(mut self, policy: PredictionPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the barrier mode.
    pub fn barrier_mode(mut self, mode: BarrierMode) -> Self {
        self.config.barrier_mode = mode;
        self
    }

    /// Sets the INACTIVE→OBSERVE occupancy threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= threshold <= 1.0`.
    pub fn expected_threshold(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold out of range");
        self.config.expected_threshold = threshold;
        self
    }

    /// Sets the OBSERVE→SELECT ("nearly full") occupancy threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= threshold <= 1.0`.
    pub fn nearly_full_threshold(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold out of range");
        self.config.nearly_full_threshold = threshold;
        self
    }

    /// Selects §3.1 option (1): wait for true memory exhaustion before the
    /// first prune.
    pub fn prune_only_when_full(mut self, value: bool) -> Self {
        self.config.prune_only_when_full = value;
        self
    }

    /// Sets the edge-table slot count.
    pub fn edge_table_slots(mut self, slots: usize) -> Self {
        self.config.edge_table_slots = slots;
        self
    }

    /// Pins leak pruning to `state` forever (overhead experiments).
    pub fn force_state(mut self, state: ForcedState) -> Self {
        self.config.forced_state = Some(state);
        self
    }

    /// Enables a generational nursery of `fraction` of the heap.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction < 1.0`.
    pub fn nursery_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "nursery fraction out of range"
        );
        self.config.nursery_fraction = Some(fraction);
        self
    }

    /// Enables `max_stale_use` decay every `period` SELECT collections
    /// (the phased-behaviour extension of §6).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn decay_max_stale_use_every(mut self, period: u64) -> Self {
        assert!(period > 0, "decay period must be positive");
        self.config.decay_max_stale_use_every = Some(period);
        self
    }

    /// Sets whether finalizers keep running after pruning starts.
    pub fn run_finalizers_after_prune(mut self, value: bool) -> Self {
        self.config.run_finalizers_after_prune = value;
        self
    }

    /// Sets the number of marker threads (see
    /// [`PruningConfig::marker_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn marker_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one marker thread");
        self.config.marker_threads = threads;
        self
    }

    /// Sets the number of sweep threads (see
    /// [`PruningConfig::sweep_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn sweep_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one sweep thread");
        self.config.sweep_threads = threads;
        self
    }

    /// Sets the per-allocation GC attempt bound.
    pub fn max_gc_attempts_per_alloc(mut self, attempts: u32) -> Self {
        self.config.max_gc_attempts_per_alloc = attempts.max(1);
        self
    }

    /// Attaches a flight recorder retaining the last `slots` telemetry
    /// events (see `lp_telemetry::FlightRecorder`).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn flight_recorder(mut self, slots: usize) -> Self {
        assert!(slots > 0, "flight recorder needs at least one slot");
        self.config.flight_recorder_slots = Some(slots);
        self
    }

    /// Emits an edge-table census event every `period` full-heap
    /// collections.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn census_every(mut self, period: u64) -> Self {
        assert!(period > 0, "census period must be positive");
        self.config.census_period = Some(period);
        self
    }

    /// Writes a heap snapshot to `path` the first time the heap is
    /// exhausted (see [`PruningConfig::snapshot_on_exhaustion`]).
    pub fn snapshot_on_exhaustion(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.snapshot_on_exhaustion = Some(path.into());
        self
    }

    /// Writes postmortem bundles into `dir` on exhaustion and on request
    /// (see [`PruningConfig::postmortem_dir`]).
    pub fn postmortem_on(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.postmortem_dir = Some(dir.into());
        self
    }

    /// Runs the heap invariant sanitizer after every `period`-th full-heap
    /// collection (see [`PruningConfig::verify_period`]).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn verify_every(mut self, period: u64) -> Self {
        assert!(period > 0, "verify period must be positive");
        self.config.verify_period = Some(period);
        self
    }

    /// Disables the post-collection sanitizer (it is on by default in debug
    /// builds).
    pub fn verify_never(mut self) -> Self {
        self.config.verify_period = None;
        self
    }

    /// Marks INACTIVE/OBSERVE full-heap collections incrementally, at most
    /// `budget` objects per quantum (see
    /// [`PruningConfig::incremental_mark_budget`]).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn incremental_mark(mut self, budget: usize) -> Self {
        assert!(budget > 0, "mark quantum budget must be positive");
        self.config.incremental_mark_budget = Some(budget);
        self
    }

    /// Loads static liveness summaries from `path` and enables the hybrid
    /// SELECT policy (see [`PruningConfig::liveness_summaries`]).
    pub fn liveness_summaries(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.liveness_summaries = Some(path.into());
        self
    }

    /// Finishes the build.
    pub fn build(self) -> PruningConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PruningConfig::builder(1024).build();
        assert!(c.pruning_enabled());
        assert_eq!(c.policy(), PredictionPolicy::LeakPruning);
        assert_eq!(c.expected_threshold(), 0.5);
        assert_eq!(c.nearly_full_threshold(), 0.9);
        assert!(!c.prune_only_when_full());
        assert_eq!(c.edge_table_slots(), DEFAULT_SLOTS);
        assert!(c.run_finalizers_after_prune());
        assert_eq!(c.barrier_mode(), BarrierMode::Full);
        assert_eq!(c.decay_max_stale_use_every(), None);
        assert_eq!(c.flight_recorder_slots(), None);
        assert_eq!(c.census_period(), None);
        assert_eq!(c.snapshot_on_exhaustion(), None);
        assert_eq!(c.postmortem_dir(), None);
        assert_eq!(c.incremental_mark_budget(), None);
        assert_eq!(c.liveness_summaries(), None);
        // The sanitizer guards every debug-build collection; release builds
        // pay nothing unless asked.
        let expected = if cfg!(debug_assertions) {
            Some(1)
        } else {
            None
        };
        assert_eq!(c.verify_period(), expected);
    }

    #[test]
    fn verify_knob_round_trips() {
        let c = PruningConfig::builder(1024).verify_every(8).build();
        assert_eq!(c.verify_period(), Some(8));
        let off = PruningConfig::builder(1024).verify_never().build();
        assert_eq!(off.verify_period(), None);
    }

    #[test]
    #[should_panic(expected = "verify period must be positive")]
    fn verify_rejects_zero() {
        PruningConfig::builder(1).verify_every(0);
    }

    #[test]
    fn incremental_mark_knob_round_trips() {
        let c = PruningConfig::builder(1024).incremental_mark(512).build();
        assert_eq!(c.incremental_mark_budget(), Some(512));
    }

    #[test]
    #[should_panic(expected = "mark quantum budget must be positive")]
    fn incremental_mark_rejects_zero() {
        PruningConfig::builder(1).incremental_mark(0);
    }

    #[test]
    fn telemetry_knobs_round_trip() {
        let c = PruningConfig::builder(1024)
            .flight_recorder(256)
            .census_every(4)
            .build();
        assert_eq!(c.flight_recorder_slots(), Some(256));
        assert_eq!(c.census_period(), Some(4));
    }

    #[test]
    fn snapshot_knob_round_trips() {
        let c = PruningConfig::builder(1024)
            .snapshot_on_exhaustion("/tmp/exhausted.jsonl")
            .build();
        assert_eq!(
            c.snapshot_on_exhaustion(),
            Some(Path::new("/tmp/exhausted.jsonl"))
        );
    }

    #[test]
    fn liveness_summaries_knob_round_trips() {
        let c = PruningConfig::builder(1024)
            .liveness_summaries("/tmp/liveness.jsonl")
            .build();
        assert_eq!(
            c.liveness_summaries(),
            Some(Path::new("/tmp/liveness.jsonl"))
        );
    }

    #[test]
    fn postmortem_knob_round_trips() {
        let c = PruningConfig::builder(1024)
            .postmortem_on("/tmp/postmortems")
            .build();
        assert_eq!(c.postmortem_dir(), Some(Path::new("/tmp/postmortems")));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn flight_recorder_rejects_zero() {
        PruningConfig::builder(1).flight_recorder(0);
    }

    #[test]
    #[should_panic(expected = "census period must be positive")]
    fn census_rejects_zero() {
        PruningConfig::builder(1).census_every(0);
    }

    #[test]
    fn nursery_option_round_trips() {
        let c = PruningConfig::builder(1024).nursery_fraction(0.25).build();
        assert_eq!(c.nursery_fraction(), Some(0.25));
        assert_eq!(
            PruningConfig::builder(1024).build().nursery_fraction(),
            None
        );
    }

    #[test]
    #[should_panic(expected = "nursery fraction out of range")]
    fn nursery_rejects_out_of_range() {
        PruningConfig::builder(1).nursery_fraction(1.0);
    }

    #[test]
    fn decay_option_round_trips() {
        let c = PruningConfig::builder(1024)
            .decay_max_stale_use_every(16)
            .build();
        assert_eq!(c.decay_max_stale_use_every(), Some(16));
    }

    #[test]
    #[should_panic(expected = "decay period must be positive")]
    fn decay_rejects_zero() {
        PruningConfig::builder(1).decay_max_stale_use_every(0);
    }

    #[test]
    fn base_disables_everything() {
        let c = PruningConfig::base(1024);
        assert!(!c.pruning_enabled());
        assert_eq!(c.barrier_mode(), BarrierMode::None);
    }

    #[test]
    fn builder_sets_fields() {
        let c = PruningConfig::builder(2048)
            .policy(PredictionPolicy::MostStale)
            .expected_threshold(0.4)
            .nearly_full_threshold(0.8)
            .prune_only_when_full(true)
            .edge_table_slots(128)
            .force_state(ForcedState::Select)
            .marker_threads(4)
            .sweep_threads(4)
            .build();
        assert_eq!(c.heap_capacity(), 2048);
        assert_eq!(c.policy(), PredictionPolicy::MostStale);
        assert_eq!(c.expected_threshold(), 0.4);
        assert_eq!(c.nearly_full_threshold(), 0.8);
        assert!(c.prune_only_when_full());
        assert_eq!(c.edge_table_slots(), 128);
        assert_eq!(c.forced_state(), Some(ForcedState::Select));
        assert_eq!(c.marker_threads(), 4);
        assert_eq!(c.sweep_threads(), 4);
    }

    #[test]
    fn sweep_threads_defaults_to_serial() {
        assert_eq!(PruningConfig::builder(1024).build().sweep_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "need at least one sweep thread")]
    fn rejects_zero_sweep_threads() {
        PruningConfig::builder(1).sweep_threads(0);
    }

    #[test]
    #[should_panic(expected = "threshold out of range")]
    fn rejects_bad_threshold() {
        PruningConfig::builder(1).nearly_full_threshold(1.5);
    }

    #[test]
    fn policy_names_match_table2() {
        assert_eq!(PredictionPolicy::LeakPruning.name(), "Default");
        assert_eq!(PredictionPolicy::MostStale.name(), "Most stale");
        assert_eq!(PredictionPolicy::IndividualRefs.name(), "Indiv refs");
    }
}
