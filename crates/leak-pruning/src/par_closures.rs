//! Parallel variants of the pruning closures (§4.5).
//!
//! The paper piggybacks on MMTk's parallel collector: multiple marker
//! threads run the in-use closure, sharing the candidate queue and the
//! edge table; in the stale closure "a single thread processes all objects
//! reachable from a candidate edge", with distinct candidates processed by
//! different threads concurrently. Because many objects have multiple
//! referents, per-object mark words arbitrate ownership — exactly the
//! mechanism [`lp_heap::Heap::try_mark`] provides.
//!
//! These visitors mirror the serial ones in [`crate::closures`]; the
//! candidate queue and the pruned-census map become mutex-protected, and
//! everything else (stale counters, reference words, the edge table) was
//! already atomic. Equivalence with the serial closures is checked by
//! tests below (up to candidate discovery order, which can differ when
//! subtrees overlap — the same nondeterminism §4.5 accepts).

use std::collections::HashMap;

use lp_gc::{par_trace, trace, EdgeAction, ParEdgeVisitor, TraceStats};
use lp_heap::{Handle, Heap, Object, TaggedRef};
use parking_lot::Mutex;

use crate::closures::{candidate_signal, Selection, StaleVisitor};
use crate::edge_table::{EdgeKey, EdgeTable};
use crate::liveness::{Signal, StaticVerdicts};

fn maybe_tick(object: &Object, stale_clock: Option<u64>) -> u8 {
    match stale_clock {
        Some(clock) => object.tick_stale(clock),
        None => object.stale(),
    }
}

/// A deferred candidate reference (thread-safe flavour).
#[derive(Copy, Clone, Debug)]
pub(crate) struct ParCandidate {
    pub edge: EdgeKey,
    pub target: Handle,
    pub signal: Signal,
}

/// Parallel OBSERVE closure.
pub(crate) struct ParObserveVisitor {
    pub stale_clock: Option<u64>,
}

impl ParEdgeVisitor for ParObserveVisitor {
    fn visit_edge(
        &self,
        _heap: &Heap,
        _src_slot: u32,
        src: &Object,
        field: usize,
        reference: TaggedRef,
    ) -> EdgeAction {
        if reference.is_poisoned() {
            return EdgeAction::Skip;
        }
        src.store_ref(field, reference.with_unlogged());
        EdgeAction::Trace
    }

    fn visit_object(&self, _heap: &Heap, _slot: u32, object: &Object) {
        maybe_tick(object, self.stale_clock);
    }
}

/// Parallel SELECT in-use closure: defers candidates into a shared pool.
pub(crate) struct ParInUseVisitor<'a> {
    pub stale_clock: Option<u64>,
    pub table: &'a EdgeTable,
    pub statics: &'a StaticVerdicts,
    /// SELECT was entered early on static evidence; candidacy is
    /// restricted to statically-covered edges (see
    /// [`crate::closures::candidate_signal`]).
    pub static_only: bool,
    pub candidates: Mutex<Vec<ParCandidate>>,
}

impl<'a> ParInUseVisitor<'a> {
    pub fn new(
        stale_clock: Option<u64>,
        table: &'a EdgeTable,
        statics: &'a StaticVerdicts,
    ) -> Self {
        ParInUseVisitor {
            stale_clock,
            table,
            statics,
            static_only: false,
            candidates: Mutex::new(Vec::new()),
        }
    }
}

impl ParEdgeVisitor for ParInUseVisitor<'_> {
    fn visit_edge(
        &self,
        heap: &Heap,
        _src_slot: u32,
        src: &Object,
        field: usize,
        reference: TaggedRef,
    ) -> EdgeAction {
        if reference.is_poisoned() {
            return EdgeAction::Skip;
        }
        let target_slot = reference.slot().expect("non-null");
        let target = heap.object_by_slot(target_slot).expect("live target");
        let edge = EdgeKey::new(src.class(), target.class());
        if let Some(signal) = candidate_signal(
            self.table,
            self.statics,
            edge,
            field,
            reference,
            target.stale(),
            self.static_only,
        ) {
            self.candidates.lock().push(ParCandidate {
                edge,
                target: heap.handle_at(target_slot),
                signal,
            });
            return EdgeAction::Skip;
        }
        src.store_ref(field, reference.with_unlogged());
        EdgeAction::Trace
    }

    fn visit_object(&self, _heap: &Heap, _slot: u32, object: &Object) {
        maybe_tick(object, self.stale_clock);
    }
}

/// Parallel PRUNE closure: poisons matching references, accumulating the
/// census under a mutex (rare: only pruned references touch it).
pub(crate) struct ParPruneVisitor<'a> {
    pub stale_clock: Option<u64>,
    pub table: &'a EdgeTable,
    pub statics: &'a StaticVerdicts,
    /// The matching SELECT ran in static-only mode; re-discovery must use
    /// the same restricted candidate test.
    pub static_only: bool,
    pub selection: Selection,
    pub pruned: Mutex<HashMap<EdgeKey, u64>>,
}

impl<'a> ParPruneVisitor<'a> {
    pub fn new(
        stale_clock: Option<u64>,
        table: &'a EdgeTable,
        statics: &'a StaticVerdicts,
        selection: Selection,
    ) -> Self {
        ParPruneVisitor {
            stale_clock,
            table,
            statics,
            static_only: false,
            selection,
            pruned: Mutex::new(HashMap::new()),
        }
    }

    pub fn into_pruned(self) -> HashMap<EdgeKey, u64> {
        self.pruned.into_inner()
    }
}

impl ParEdgeVisitor for ParPruneVisitor<'_> {
    fn visit_edge(
        &self,
        heap: &Heap,
        _src_slot: u32,
        src: &Object,
        field: usize,
        reference: TaggedRef,
    ) -> EdgeAction {
        if reference.is_poisoned() {
            return EdgeAction::Skip;
        }
        let target_slot = reference.slot().expect("non-null");
        let target = heap.object_by_slot(target_slot).expect("live target");
        let edge = EdgeKey::new(src.class(), target.class());
        let matches = match self.selection {
            Selection::Edge(selected) => {
                edge == selected
                    && candidate_signal(
                        self.table,
                        self.statics,
                        edge,
                        field,
                        reference,
                        target.stale(),
                        self.static_only,
                    )
                    .is_some()
            }
            Selection::StaleLevel(level) => {
                reference.is_unlogged() && target.stale() >= level.max(2)
            }
        };
        if matches {
            // The CAS mirrors the collector's fine-grained synchronization:
            // if another marker thread rewrote the field first, defer to it.
            if src.cas_ref(field, reference, reference.with_poison()) {
                *self.pruned.lock().entry(edge).or_insert(0) += 1;
            }
            return EdgeAction::Skip;
        }
        src.store_ref(field, reference.with_unlogged());
        EdgeAction::Trace
    }

    fn visit_object(&self, _heap: &Heap, _slot: u32, object: &Object) {
        maybe_tick(object, self.stale_clock);
    }
}

/// Runs the two-phase SELECT marking in parallel: a parallel in-use
/// closure, then the stale closures — one thread per chunk of candidates,
/// each candidate's subtree processed by a single thread (§4.5).
///
/// Returns the merged trace statistics plus the deferred candidates (for
/// the engine's winning-signal attribution); `bytes_used` charges land in
/// the edge table exactly as in the serial path.
pub(crate) fn par_select_mark(
    heap: &Heap,
    roots: &[Handle],
    table: &EdgeTable,
    statics: &StaticVerdicts,
    stale_clock: Option<u64>,
    static_only: bool,
    threads: usize,
) -> (TraceStats, Vec<ParCandidate>) {
    let mut in_use = ParInUseVisitor::new(stale_clock, table, statics);
    in_use.static_only = static_only;
    let in_use = in_use;
    let mut stats = par_trace(heap, roots, &in_use, threads);
    let candidates = in_use.candidates.into_inner();

    // Distribute candidates across threads; each candidate subtree is
    // traced by exactly one thread (mark words arbitrate overlaps).
    let chunk = candidates.len().div_ceil(threads.max(1)).max(1);
    let chunk_stats: Vec<TraceStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local = TraceStats::default();
                    let mut visitor = StaleVisitor { stale_clock };
                    for candidate in chunk {
                        if heap.is_marked(candidate.target.slot()) {
                            continue;
                        }
                        let subtree = trace(heap, [candidate.target], &mut visitor);
                        table.add_bytes(candidate.edge, subtree.bytes_marked);
                        local = local.merged(subtree);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    for s in chunk_stats {
        stats = stats.merged(s);
    }
    (stats, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::EMPTY_VERDICTS;
    use lp_heap::{AllocSpec, ClassRegistry, Heap};

    /// Builds a heap with `lists` stale chains hanging off one live hub.
    fn leaky_heap(lists: u32, depth: u32) -> (Heap, ClassRegistry, Vec<Handle>) {
        let mut classes = ClassRegistry::new();
        let hub_cls = classes.register("Hub");
        let node_cls = classes.register("Node");
        let mut heap = Heap::new(1 << 26);
        let hub = heap.alloc(hub_cls, &AllocSpec::with_refs(lists)).unwrap();
        for l in 0..lists {
            let mut prev: Option<Handle> = None;
            for _ in 0..depth {
                let n = heap.alloc(node_cls, &AllocSpec::new(1, 0, 64)).unwrap();
                if let Some(p) = prev {
                    heap.object(n)
                        .store_ref(0, TaggedRef::from_handle(p).with_unlogged());
                }
                n_set_stale(&heap, n);
                prev = Some(n);
            }
            heap.object(hub).store_ref(
                l as usize,
                TaggedRef::from_handle(prev.unwrap()).with_unlogged(),
            );
        }
        (heap, classes, vec![hub])
    }

    fn n_set_stale(heap: &Heap, h: Handle) {
        heap.object(h).set_stale(4);
    }

    #[test]
    fn parallel_select_matches_serial_charges() {
        let (mut heap, classes, roots) = leaky_heap(8, 50);
        let node_cls = classes.lookup("Node").unwrap();
        let hub_cls = classes.lookup("Hub").unwrap();

        // Serial pass.
        let serial_table = EdgeTable::new(256);
        heap.begin_mark_epoch();
        let mut in_use = crate::closures::InUseVisitor::new(None, &serial_table, &EMPTY_VERDICTS);
        let mut serial_stats = lp_gc::trace(&heap, roots.iter().copied(), &mut in_use);
        let mut stale = StaleVisitor { stale_clock: None };
        for c in &in_use.candidates {
            if heap.is_marked(c.target.slot()) {
                continue;
            }
            let sub = lp_gc::trace(&heap, [c.target], &mut stale);
            serial_table.add_bytes(c.edge, sub.bytes_marked);
            serial_stats = serial_stats.merged(sub);
        }

        // Parallel pass on a fresh epoch.
        let par_table = EdgeTable::new(256);
        heap.begin_mark_epoch();
        let (par_stats, _) =
            par_select_mark(&heap, &roots, &par_table, &EMPTY_VERDICTS, None, false, 4);

        assert_eq!(serial_stats.objects_marked, par_stats.objects_marked);
        assert_eq!(serial_stats.bytes_marked, par_stats.bytes_marked);
        let hub_edge = EdgeKey::new(hub_cls, node_cls);
        assert_eq!(
            serial_table.bytes_used(hub_edge),
            par_table.bytes_used(hub_edge),
            "disjoint chains charge identically"
        );
        assert_eq!(
            serial_table.select_max_bytes(),
            par_table.select_max_bytes()
        );
    }

    #[test]
    fn parallel_prune_poisons_selected_edge() {
        let (mut heap, classes, roots) = leaky_heap(4, 20);
        let edge = EdgeKey::new(
            classes.lookup("Hub").unwrap(),
            classes.lookup("Node").unwrap(),
        );
        let table = EdgeTable::new(64);
        heap.begin_mark_epoch();
        let visitor = ParPruneVisitor::new(None, &table, &EMPTY_VERDICTS, Selection::Edge(edge));
        par_trace(&heap, &roots, &visitor, 4);
        let pruned = visitor.into_pruned();
        assert_eq!(pruned.get(&edge).copied(), Some(4), "all four chain heads");
        heap.sweep();
        assert_eq!(heap.live_objects(), 1, "only the hub survives");
    }

    #[test]
    fn parallel_observe_sets_bits_and_ticks() {
        let (mut heap, _classes, roots) = leaky_heap(2, 5);
        // Clear the pre-set staleness to watch the tick.
        for (_, obj) in heap.iter() {
            obj.clear_stale();
        }
        heap.begin_mark_epoch();
        par_trace(
            &heap,
            &roots,
            &ParObserveVisitor {
                stale_clock: Some(1),
            },
            3,
        );
        for (_, obj) in heap.iter() {
            assert_eq!(obj.stale(), 1);
            for (_, r) in obj.iter_refs() {
                if !r.is_null() {
                    assert!(r.is_unlogged());
                }
            }
        }
    }
}
