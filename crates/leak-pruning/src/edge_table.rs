//! The edge table (§4.1, §6.2).
//!
//! For stale heap references `src → tgt`, the table records the *classes* of
//! the source and target objects. Each entry summarizes an equivalence class
//! of references and holds:
//!
//! * `max_stale_use` — the all-time maximum staleness at which the program
//!   *used* a reference of this type. Edges that were very stale and then
//!   used again are not safe to prune; leak pruning only prunes references
//!   whose target is at least two staleness levels beyond this value.
//! * `bytes_used` — bytes found reachable from stale roots of this edge type
//!   during the SELECT state's stale closure; the edge with the most bytes
//!   is chosen for pruning.
//!
//! Following the paper's prototype, the table is a fixed-size,
//! insertion-only, closed-hashing (open-addressing) table — by default 16K
//! slots of four words, 256 KB (§6.2). Entries are atomics so read barriers
//! and parallel collector threads can update them without coarse locking;
//! like the paper's implementation, racy counter updates are tolerated
//! because selection is not sensitive to exact values (§4.5).

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use lp_heap::ClassId;

/// Default number of slots (the paper's 16K-slot table).
pub const DEFAULT_SLOTS: usize = 16 * 1024;

/// A *(source class → target class)* reference type.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Class of the source object.
    pub src: ClassId,
    /// Class of the target object.
    pub tgt: ClassId,
}

impl EdgeKey {
    /// Creates an edge key.
    pub fn new(src: ClassId, tgt: ClassId) -> Self {
        EdgeKey { src, tgt }
    }

    /// Packs the key into a nonzero word (0 is reserved for empty slots).
    fn pack(self) -> u64 {
        ((u64::from(self.src.index()) + 1) << 32) | u64::from(self.tgt.index())
    }

    fn unpack(word: u64) -> Self {
        EdgeKey {
            src: ClassId::from_index(((word >> 32) - 1) as u32),
            tgt: ClassId::from_index((word & 0xffff_ffff) as u32),
        }
    }
}

/// A snapshot of one edge entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EdgeEntry {
    /// The reference type.
    pub key: EdgeKey,
    /// Maximum staleness at which a reference of this type was used.
    pub max_stale_use: u8,
    /// Bytes attributed to this edge by the most recent SELECT closure.
    pub bytes_used: u64,
}

/// One open-addressing slot. The payload is 17 bytes of atomics; without
/// the alignment three to four slots would share each 64-byte cache line,
/// and read barriers hammering one hot edge would false-share with barriers
/// and marker threads updating its neighbours. Padding each slot to its own
/// line trades memory (the table is fixed-size and small) for isolation.
/// The *simulated* footprint reported by [`EdgeTable::footprint_bytes`]
/// intentionally keeps the paper's four-words-per-slot accounting.
#[derive(Debug)]
#[repr(align(64))]
struct Slot {
    key: AtomicU64,
    max_stale_use: AtomicU8,
    bytes_used: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            key: AtomicU64::new(0),
            max_stale_use: AtomicU8::new(0),
            bytes_used: AtomicU64::new(0),
        }
    }
}

/// The fixed-size, insertion-only edge table.
///
/// # Example
///
/// ```
/// use leak_pruning::{EdgeKey, EdgeTable};
/// use lp_heap::ClassId;
///
/// let table = EdgeTable::new(1024);
/// let edge = EdgeKey::new(ClassId::from_index(0), ClassId::from_index(1));
/// table.note_stale_use(edge, 3);
/// assert_eq!(table.max_stale_use(edge), 3);
/// table.add_bytes(edge, 4096);
/// assert_eq!(table.select_max_bytes().unwrap().0, edge);
/// ```
#[derive(Debug)]
pub struct EdgeTable {
    slots: Box<[Slot]>,
    len: AtomicUsize,
    mask: usize,
}

impl EdgeTable {
    /// Creates a table with `slots` slots, rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "edge table needs at least one slot");
        let capacity = slots.next_power_of_two();
        EdgeTable {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            len: AtomicUsize::new(0),
            mask: capacity - 1,
        }
    }

    /// Number of distinct edge types recorded. The table never shrinks
    /// (entries are never deleted), so at the end of a run this is the
    /// paper's "leak pruning edge types" census (Table 2, last column).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no edges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots (the fixed capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Simulated footprint of the table: four words (32 bytes on a 64-bit
    /// host, 16 on the paper's 32-bit platform) per slot. With the paper's
    /// 16K slots and 32-bit words this is the 256 KB of §6.2.
    pub fn footprint_bytes(&self) -> usize {
        self.capacity() * 4 * 4
    }

    fn hash(key: u64) -> usize {
        // Fibonacci hashing; the table size is a power of two.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize
    }

    /// Finds the slot for `key`, if present.
    fn find(&self, key: u64) -> Option<&Slot> {
        let mut i = Self::hash(key) & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[i];
            match slot.key.load(Ordering::Acquire) {
                0 => return None,
                k if k == key => return Some(slot),
                _ => i = (i + 1) & self.mask,
            }
        }
        None
    }

    /// Finds or inserts the slot for `key`. Returns `None` if the table is
    /// full (the paper's fixed-size prototype simply stops recording new
    /// edge types).
    fn ensure(&self, key: u64) -> Option<&Slot> {
        let mut i = Self::hash(key) & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[i];
            let current = slot.key.load(Ordering::Acquire);
            if current == key {
                return Some(slot);
            }
            if current == 0 {
                match slot
                    .key
                    .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return Some(slot);
                    }
                    Err(actual) if actual == key => return Some(slot),
                    Err(_) => { /* another thread claimed it; probe on */ }
                }
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Records that the program used a reference of type `edge` whose
    /// target had staleness `stale` — the read barrier's
    /// `maxstaleuse = max(maxstaleuse, stalecounter)` update (§4.1).
    pub fn note_stale_use(&self, edge: EdgeKey, stale: u8) {
        if let Some(slot) = self.ensure(edge.pack()) {
            slot.max_stale_use.fetch_max(stale, Ordering::Relaxed);
        }
    }

    /// The recorded `max_stale_use` for `edge` (0 if the edge is unknown).
    pub fn max_stale_use(&self, edge: EdgeKey) -> u8 {
        self.find(edge.pack())
            .map_or(0, |s| s.max_stale_use.load(Ordering::Relaxed))
    }

    /// Charges `bytes` to `edge` during the SELECT state's stale closure.
    pub fn add_bytes(&self, edge: EdgeKey, bytes: u64) {
        if let Some(slot) = self.ensure(edge.pack()) {
            slot.bytes_used.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// The `bytes_used` charged to `edge` (0 if unknown).
    pub fn bytes_used(&self, edge: EdgeKey) -> u64 {
        self.find(edge.pack())
            .map_or(0, |s| s.bytes_used.load(Ordering::Relaxed))
    }

    /// Finds the edge with the greatest `bytes_used`, as the end of a
    /// SELECT collection does. Returns `None` if no edge has bytes charged.
    pub fn select_max_bytes(&self) -> Option<(EdgeKey, u64)> {
        let mut best: Option<(EdgeKey, u64)> = None;
        for slot in self.slots.iter() {
            let key = slot.key.load(Ordering::Acquire);
            if key == 0 {
                continue;
            }
            let bytes = slot.bytes_used.load(Ordering::Relaxed);
            if bytes > 0 && best.is_none_or(|(_, b)| bytes > b) {
                best = Some((EdgeKey::unpack(key), bytes));
            }
        }
        best
    }

    /// Resets every entry's `bytes_used` to zero, as the end of a SELECT
    /// collection does after choosing an edge.
    pub fn reset_bytes(&self) {
        for slot in self.slots.iter() {
            if slot.key.load(Ordering::Acquire) != 0 {
                slot.bytes_used.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Decrements every entry's `max_stale_use` by one (saturating at
    /// zero).
    ///
    /// This implements the policy extension §6 sketches for JbbMod:
    /// "periodically decaying each reference type's maxstaleuse value to
    /// account for possible phased behavior". Decay lets pruning reclaim
    /// structures whose heavy use belongs to a finished program phase — at
    /// the cost of weakening the protection that keeps rarely-used live
    /// data safe.
    pub fn decay_max_stale_use(&self) {
        for slot in self.slots.iter() {
            if slot.key.load(Ordering::Acquire) != 0 {
                let _ =
                    slot.max_stale_use
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
            }
        }
    }

    /// The `k` edges with the most `bytes_used` this SELECT window, in
    /// descending byte order (ties broken by key for determinism); edges
    /// with zero bytes are excluded. Telemetry uses this to report the
    /// runner-up edges a SELECT decision beat.
    pub fn top_bytes(&self, k: usize) -> Vec<(EdgeKey, u64)> {
        let mut charged: Vec<(EdgeKey, u64)> = self
            .iter()
            .filter(|e| e.bytes_used > 0)
            .map(|e| (e.key, e.bytes_used))
            .collect();
        charged.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        charged.truncate(k);
        charged
    }

    /// Snapshots all entries (diagnostics and reporting).
    pub fn iter(&self) -> impl Iterator<Item = EdgeEntry> + '_ {
        self.slots.iter().filter_map(|slot| {
            let key = slot.key.load(Ordering::Acquire);
            if key == 0 {
                return None;
            }
            Some(EdgeEntry {
                key: EdgeKey::unpack(key),
                max_stale_use: slot.max_stale_use.load(Ordering::Relaxed),
                bytes_used: slot.bytes_used.load(Ordering::Relaxed),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn edge(src: u32, tgt: u32) -> EdgeKey {
        EdgeKey::new(ClassId::from_index(src), ClassId::from_index(tgt))
    }

    #[test]
    fn top_bytes_ranks_charged_edges() {
        let table = EdgeTable::new(64);
        table.add_bytes(edge(1, 2), 100);
        table.add_bytes(edge(3, 4), 300);
        table.add_bytes(edge(5, 6), 200);
        table.note_stale_use(edge(7, 8), 2); // present but zero bytes
        assert_eq!(
            table.top_bytes(2),
            vec![(edge(3, 4), 300), (edge(5, 6), 200)]
        );
        assert_eq!(table.top_bytes(10).len(), 3, "zero-byte edges excluded");
        assert!(table.top_bytes(0).is_empty());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = edge(0, 0);
        assert_eq!(EdgeKey::unpack(e.pack()), e);
        let e = edge(123, 456);
        assert_eq!(EdgeKey::unpack(e.pack()), e);
        assert_ne!(edge(1, 2).pack(), edge(2, 1).pack());
    }

    #[test]
    fn note_stale_use_takes_max() {
        let t = EdgeTable::new(64);
        t.note_stale_use(edge(1, 2), 3);
        t.note_stale_use(edge(1, 2), 2);
        assert_eq!(t.max_stale_use(edge(1, 2)), 3);
        t.note_stale_use(edge(1, 2), 5);
        assert_eq!(t.max_stale_use(edge(1, 2)), 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unknown_edges_read_as_zero() {
        let t = EdgeTable::new(64);
        assert_eq!(t.max_stale_use(edge(9, 9)), 0);
        assert_eq!(t.bytes_used(edge(9, 9)), 0);
        assert!(t.select_max_bytes().is_none());
    }

    #[test]
    fn selection_picks_max_bytes_and_reset_clears() {
        let t = EdgeTable::new(64);
        t.add_bytes(edge(1, 2), 100);
        t.add_bytes(edge(3, 4), 250);
        t.add_bytes(edge(3, 4), 50);
        t.add_bytes(edge(5, 6), 10);
        assert_eq!(t.select_max_bytes(), Some((edge(3, 4), 300)));
        t.reset_bytes();
        assert!(t.select_max_bytes().is_none());
        // max_stale_use survives resets.
        t.note_stale_use(edge(1, 2), 4);
        t.reset_bytes();
        assert_eq!(t.max_stale_use(edge(1, 2)), 4);
    }

    #[test]
    fn full_table_drops_new_edges_gracefully() {
        let t = EdgeTable::new(1); // rounds to capacity 1
        t.note_stale_use(edge(1, 1), 2);
        assert_eq!(t.len(), 1);
        t.note_stale_use(edge(2, 2), 7); // dropped: table full
        assert_eq!(t.len(), 1);
        assert_eq!(t.max_stale_use(edge(2, 2)), 0);
    }

    #[test]
    fn footprint_matches_paper_shape() {
        let t = EdgeTable::new(DEFAULT_SLOTS);
        assert_eq!(t.capacity(), 16 * 1024);
        assert_eq!(t.footprint_bytes(), 16 * 1024 * 16);
    }

    #[test]
    fn slots_occupy_whole_cache_lines() {
        // Each slot gets its own 64-byte line so concurrent barrier and
        // marker updates to different edges never false-share.
        assert_eq!(std::mem::align_of::<Slot>(), 64);
        assert_eq!(std::mem::size_of::<Slot>(), 64);
    }

    #[test]
    fn concurrent_updates_do_not_lose_entries() {
        let t = EdgeTable::new(1 << 12);
        std::thread::scope(|scope| {
            for thread in 0..4u32 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..256 {
                        t.note_stale_use(edge(thread, i), (i % 8) as u8);
                        t.add_bytes(edge(thread, i), 8);
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 256);
    }

    proptest! {
        /// Every inserted edge is retrievable with its max stale use, as
        /// long as the table has room.
        #[test]
        fn prop_insert_find(edges in proptest::collection::btree_map(
            (0u32..64, 0u32..64), 0u8..8, 1..128)) {
            let t = EdgeTable::new(4096);
            for ((s, g), stale) in &edges {
                t.note_stale_use(edge(*s, *g), *stale);
            }
            prop_assert_eq!(t.len(), edges.len());
            for ((s, g), stale) in &edges {
                prop_assert_eq!(t.max_stale_use(edge(*s, *g)), *stale);
            }
        }

        /// select_max_bytes agrees with a reference implementation.
        #[test]
        fn prop_selection_is_argmax(charges in proptest::collection::btree_map(
            (0u32..32, 0u32..32), 1u64..10_000, 1..64)) {
            let t = EdgeTable::new(4096);
            for ((s, g), bytes) in &charges {
                t.add_bytes(edge(*s, *g), *bytes);
            }
            let expect_max = charges.values().copied().max().unwrap();
            let (_, got) = t.select_max_bytes().unwrap();
            prop_assert_eq!(got, expect_max);
        }
    }
}

#[cfg(test)]
mod decay_tests {
    use super::*;

    fn edge(src: u32, tgt: u32) -> EdgeKey {
        EdgeKey::new(ClassId::from_index(src), ClassId::from_index(tgt))
    }

    #[test]
    fn decay_lowers_all_entries_saturating_at_zero() {
        let t = EdgeTable::new(64);
        t.note_stale_use(edge(1, 2), 5);
        t.note_stale_use(edge(3, 4), 1);
        t.decay_max_stale_use();
        assert_eq!(t.max_stale_use(edge(1, 2)), 4);
        assert_eq!(t.max_stale_use(edge(3, 4)), 0);
        t.decay_max_stale_use();
        assert_eq!(t.max_stale_use(edge(3, 4)), 0, "saturates at zero");
    }

    #[test]
    fn decay_preserves_bytes_and_membership() {
        let t = EdgeTable::new(64);
        t.note_stale_use(edge(1, 2), 3);
        t.add_bytes(edge(1, 2), 100);
        t.decay_max_stale_use();
        assert_eq!(t.bytes_used(edge(1, 2)), 100);
        assert_eq!(t.len(), 1);
    }
}
