//! The leak-pruning state machine (Figure 2 of the paper).
//!
//! Leak pruning performs most of its work during full-heap collections and
//! changes state depending on how full the heap is at the end of each one:
//!
//! ```text
//! INACTIVE --(used > expected)--> OBSERVE --(nearly full)--> SELECT
//!     SELECT --(collection finished / memory exhausted)--> PRUNE
//!     PRUNE --(no longer nearly full)--> OBSERVE
//!     PRUNE --(still nearly full)--> SELECT
//! ```
//!
//! Once OBSERVE is entered the machine never returns to INACTIVE: the
//! application is permanently considered to be in an unexpected state.
//!
//! When static liveness verdicts are installed
//! ([`TransitionContext::static_verdicts`]), the OBSERVE→SELECT edge is
//! relaxed: SELECT may also be entered at the *expected* threshold instead
//! of waiting for the heap to be nearly full. The analyzer has already
//! proved some (class, field) pairs certainly dead, so there is no reason
//! to let them accumulate for the dynamic evidence the paper's machine
//! waits for. Such an early SELECT restricts candidacy to
//! statically-covered edges (see `Pruner::collect_select`); the
//! Select→Prune and Prune→* edges are unchanged.

use std::fmt;

/// The four states of Figure 2.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum State {
    /// Not observing; the program is not near its expected memory use.
    Inactive,
    /// Tracking staleness and reference patterns.
    Observe,
    /// Choosing an edge type to prune during collections.
    Select,
    /// Poisoning selected references so the sweep reclaims their targets.
    Prune,
}

impl State {
    /// Whether this state maintains staleness and the edge table (everything
    /// except INACTIVE).
    pub fn observes(self) -> bool {
        !matches!(self, State::Inactive)
    }

    /// The paper's uppercase name, as used in traces and figures.
    pub fn name(self) -> &'static str {
        match self {
            State::Inactive => "INACTIVE",
            State::Observe => "OBSERVE",
            State::Select => "SELECT",
            State::Prune => "PRUNE",
        }
    }

    /// Parses a [`State::name`] back into a state (checkpoint restore and
    /// trace tooling). `None` for anything outside the four Figure-2 names.
    pub fn from_name(name: &str) -> Option<State> {
        match name {
            "INACTIVE" => Some(State::Inactive),
            "OBSERVE" => Some(State::Observe),
            "SELECT" => Some(State::Select),
            "PRUNE" => Some(State::Prune),
            _ => None,
        }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Inputs to a state transition, gathered at the end of a full-heap
/// collection.
#[derive(Copy, Clone, Debug)]
pub struct TransitionContext {
    /// Heap occupancy (used/capacity) after the collection's sweep.
    pub occupancy: f64,
    /// `expected memory use` threshold (default 0.5).
    pub expected_threshold: f64,
    /// `nearly run out of memory` threshold (default 0.9).
    pub nearly_full_threshold: f64,
    /// Option (1) of §3.1: move from SELECT to PRUNE only once the program
    /// has truly exhausted memory at least once.
    pub prune_only_when_full: bool,
    /// Whether the program has exhausted memory at least once (an
    /// allocation failed even after collecting). After this, SELECT always
    /// advances to PRUNE.
    pub exhausted_once: bool,
    /// Whether static liveness verdicts are installed for the running
    /// policy. When set, OBSERVE (and the INACTIVE fast path) may enter
    /// SELECT as soon as occupancy exceeds the *expected* threshold — the
    /// early, static-only SELECT described in the module docs. False for
    /// the §6.1 comparison policies and whenever no summary file is
    /// loaded, which keeps them byte-identical to the paper's machine.
    pub static_verdicts: bool,
}

/// Computes the state that follows `current` after a collection performed in
/// `current` finishes with the given context (Figure 2).
pub fn next_state(current: State, ctx: &TransitionContext) -> State {
    match current {
        State::Inactive => {
            if ctx.occupancy > ctx.expected_threshold {
                // Enter OBSERVE, and if memory is already nearly gone — or
                // static verdicts make waiting for dynamic evidence
                // pointless — move straight on to SELECT at the next
                // collection.
                if ctx.occupancy > ctx.nearly_full_threshold || ctx.static_verdicts {
                    State::Select
                } else {
                    State::Observe
                }
            } else {
                State::Inactive
            }
        }
        State::Observe => {
            if ctx.occupancy > ctx.nearly_full_threshold
                || (ctx.static_verdicts && ctx.occupancy > ctx.expected_threshold)
            {
                State::Select
            } else {
                State::Observe
            }
        }
        State::Select => {
            if ctx.prune_only_when_full && !ctx.exhausted_once {
                // Option (1): wait for a real out-of-memory event.
                State::Select
            } else {
                // Option (2), the default: having finished a collection in
                // SELECT, prune at the next collection.
                State::Prune
            }
        }
        State::Prune => {
            if ctx.occupancy > ctx.nearly_full_threshold {
                State::Select
            } else {
                State::Observe
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(occupancy: f64) -> TransitionContext {
        TransitionContext {
            occupancy,
            expected_threshold: 0.5,
            nearly_full_threshold: 0.9,
            prune_only_when_full: false,
            exhausted_once: false,
            static_verdicts: false,
        }
    }

    fn static_ctx(occupancy: f64) -> TransitionContext {
        TransitionContext {
            static_verdicts: true,
            ..ctx(occupancy)
        }
    }

    #[test]
    fn inactive_stays_until_expected_use_exceeded() {
        assert_eq!(next_state(State::Inactive, &ctx(0.3)), State::Inactive);
        assert_eq!(next_state(State::Inactive, &ctx(0.6)), State::Observe);
    }

    #[test]
    fn observe_never_returns_to_inactive() {
        assert_eq!(next_state(State::Observe, &ctx(0.1)), State::Observe);
    }

    #[test]
    fn observe_escalates_when_nearly_full() {
        assert_eq!(next_state(State::Observe, &ctx(0.95)), State::Select);
        assert_eq!(next_state(State::Observe, &ctx(0.9)), State::Observe);
    }

    #[test]
    fn static_verdicts_pull_select_forward_to_expected_threshold() {
        // With verdicts installed, crossing the *expected* threshold is
        // enough — from either INACTIVE or OBSERVE.
        assert_eq!(next_state(State::Inactive, &static_ctx(0.6)), State::Select);
        assert_eq!(next_state(State::Observe, &static_ctx(0.6)), State::Select);
        // Below the expected threshold nothing changes: the program is not
        // in an unexpected state, so there is nothing to select against.
        assert_eq!(
            next_state(State::Inactive, &static_ctx(0.4)),
            State::Inactive
        );
        assert_eq!(next_state(State::Observe, &static_ctx(0.4)), State::Observe);
    }

    #[test]
    fn static_verdicts_leave_prune_edges_alone() {
        // PRUNE still needs the nearly-full signal to loop back to SELECT;
        // the early entry only accelerates the first selection.
        assert_eq!(next_state(State::Prune, &static_ctx(0.6)), State::Observe);
        assert_eq!(next_state(State::Prune, &static_ctx(0.95)), State::Select);
        assert_eq!(next_state(State::Select, &static_ctx(0.6)), State::Prune);
    }

    #[test]
    fn select_advances_to_prune_by_default() {
        assert_eq!(next_state(State::Select, &ctx(0.95)), State::Prune);
        // Even if occupancy dropped (allocation burst collected), a SELECT
        // collection is followed by PRUNE under option (2).
        assert_eq!(next_state(State::Select, &ctx(0.5)), State::Prune);
    }

    #[test]
    fn select_waits_for_exhaustion_under_option_one() {
        let mut c = ctx(0.99);
        c.prune_only_when_full = true;
        assert_eq!(next_state(State::Select, &c), State::Select);
        c.exhausted_once = true;
        assert_eq!(next_state(State::Select, &c), State::Prune);
    }

    #[test]
    fn prune_returns_to_observe_when_reclaim_succeeds() {
        assert_eq!(next_state(State::Prune, &ctx(0.5)), State::Observe);
    }

    #[test]
    fn prune_retries_select_when_still_nearly_full() {
        assert_eq!(next_state(State::Prune, &ctx(0.95)), State::Select);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(State::Inactive.to_string(), "INACTIVE");
        assert_eq!(State::Prune.to_string(), "PRUNE");
    }

    #[test]
    fn observes_everywhere_but_inactive() {
        assert!(!State::Inactive.observes());
        assert!(State::Observe.observes());
        assert!(State::Select.observes());
        assert!(State::Prune.observes());
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Once the machine leaves INACTIVE it never returns, under any
        /// occupancy trajectory.
        #[test]
        fn prop_inactive_never_recurs(
            occupancies in proptest::collection::vec(0.0f64..1.2, 1..64),
            option_one: bool,
        ) {
            let mut state = State::Inactive;
            let mut left_inactive = false;
            let mut exhausted = false;
            for occ in occupancies {
                exhausted |= occ >= 1.0;
                state = next_state(
                    state,
                    &TransitionContext {
                        occupancy: occ,
                        expected_threshold: 0.5,
                        nearly_full_threshold: 0.9,
                        prune_only_when_full: option_one,
                        exhausted_once: exhausted,
                        static_verdicts: false,
                    },
                );
                if state != State::Inactive {
                    left_inactive = true;
                }
                if left_inactive {
                    prop_assert_ne!(state, State::Inactive);
                }
            }
        }

        /// Under option (1), PRUNE is unreachable until memory has been
        /// exhausted at least once.
        #[test]
        fn prop_option_one_gates_prune(
            occupancies in proptest::collection::vec(0.0f64..0.999, 1..64),
        ) {
            let mut state = State::Inactive;
            for occ in occupancies {
                state = next_state(
                    state,
                    &TransitionContext {
                        occupancy: occ,
                        expected_threshold: 0.5,
                        nearly_full_threshold: 0.9,
                        prune_only_when_full: true,
                        exhausted_once: false,
                        static_verdicts: false,
                    },
                );
                prop_assert_ne!(state, State::Prune);
            }
        }
    }
}
