//! Runtime-level invariant kinds for the heap sanitizer.
//!
//! [`Runtime::verify_heap`](crate::Runtime::verify_heap) composes the
//! structural checks of [`lp_heap::Heap::verify`] with two invariants only
//! the pruning runtime can state, reported under the kinds below. The
//! reachability check ([`lp_gc::verify_post_collection`]) is added on top by
//! the automatic post-collection hook, since it is only meaningful at that
//! point.

/// Violation kind: an edge-table entry carries non-zero `bytes_used`
/// outside a SELECT closure. The byte window is scratch space for one
/// selection (§4.2) and every SELECT collection resets it before the world
/// restarts; residue means a closure leaked its accounting.
pub const EDGE_BYTES: &str = "edge-bytes";

/// Violation kind: a stored reference is poisoned although the runtime
/// never entered PRUNE (no deferred out-of-memory error exists). Poison can
/// only be introduced by a PRUNE collection, which records the averted
/// error first — a poisoned reference without one is corruption.
pub const POISON_STATE: &str = "poison-state";
