//! End-of-run pruning diagnostics.
//!
//! §3.2: "To help programmers, leak pruning optionally reports (1) an
//! out-of-memory warning when the program first runs out of memory and (2)
//! the data structures it prunes." This module renders that report.

use std::fmt;

use crate::error::OutOfMemoryError;

/// One pruned reference type and how many references of it were poisoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrunedEdge {
    /// Source class name.
    pub src: String,
    /// Target class name.
    pub tgt: String,
    /// References of this type poisoned over the run.
    pub refs: u64,
}

/// A summary of everything leak pruning did during a run.
#[derive(Clone, Debug, Default)]
pub struct PruneReport {
    /// The deferred out-of-memory error, if the program ever (nearly)
    /// exhausted memory.
    pub averted_oom: Option<OutOfMemoryError>,
    /// Pruned reference types, most-pruned first.
    pub pruned_edges: Vec<PrunedEdge>,
    /// Total references poisoned.
    pub total_pruned_refs: u64,
    /// Distinct edge types recorded in the edge table (§6.2's census).
    pub edge_types_recorded: usize,
    /// Simulated footprint of the edge table in bytes.
    pub edge_table_footprint: usize,
}

impl PruneReport {
    /// Number of distinct reference types pruned.
    pub fn distinct_pruned_edges(&self) -> usize {
        self.pruned_edges.len()
    }
}

impl fmt::Display for PruneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.averted_oom {
            Some(oom) => writeln!(f, "warning: {oom} (deferred by leak pruning)")?,
            None => writeln!(f, "no out-of-memory condition was reached")?,
        }
        writeln!(
            f,
            "pruned {} references across {} reference types; {} edge types in {} bytes of table",
            self.total_pruned_refs,
            self.pruned_edges.len(),
            self.edge_types_recorded,
            self.edge_table_footprint,
        )?;
        for edge in &self.pruned_edges {
            writeln!(
                f,
                "  pruned {:>8} refs: {} -> {}",
                edge.refs, edge.src, edge.tgt
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_edges() {
        let report = PruneReport {
            averted_oom: None,
            pruned_edges: vec![PrunedEdge {
                src: "TextCommand".into(),
                tgt: "String".into(),
                refs: 42,
            }],
            total_pruned_refs: 42,
            edge_types_recorded: 7,
            edge_table_footprint: 1024,
        };
        let s = report.to_string();
        assert!(s.contains("TextCommand -> String"));
        assert!(s.contains("42"));
        assert_eq!(report.distinct_pruned_edges(), 1);
    }
}
