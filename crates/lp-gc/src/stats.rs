//! Cumulative collection statistics.

use std::time::Duration;

/// Counters and timings accumulated by a [`Collector`](crate::Collector)
/// over the life of a program.
///
/// Figure 7 of the paper plots normalized GC time for the Base, Observe and
/// Select configurations across heap sizes — [`GcStats::total_gc_time`] is
/// the quantity being normalized.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcStats {
    collections: u64,
    mark_time: Duration,
    sweep_time: Duration,
    mark_thread_busy: Duration,
    sweep_thread_busy: Duration,
    max_mark_threads: usize,
    max_sweep_threads: usize,
    total_marked_objects: u64,
    total_marked_bytes: u64,
    total_freed_bytes: u64,
    total_freed_objects: u64,
    incremental_cycles: u64,
    mark_quanta: u64,
    budget_overruns: u64,
}

impl GcStats {
    /// Number of collections performed.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Total wall-clock time spent marking.
    pub fn mark_time(&self) -> Duration {
        self.mark_time
    }

    /// Total wall-clock time spent sweeping.
    pub fn sweep_time(&self) -> Duration {
        self.sweep_time
    }

    /// Total wall-clock collection time (mark + sweep).
    pub fn total_gc_time(&self) -> Duration {
        self.mark_time + self.sweep_time
    }

    /// Cumulative busy time summed over every marker thread. With serial
    /// marking this equals [`GcStats::mark_time`]; with parallel marking it
    /// exceeds it, and `mark_thread_busy / mark_time` approximates the mark
    /// phase's effective parallelism.
    pub fn mark_thread_busy(&self) -> Duration {
        self.mark_thread_busy
    }

    /// Cumulative busy time summed over every sweep thread (the sweep-phase
    /// counterpart of [`GcStats::mark_thread_busy`]).
    pub fn sweep_thread_busy(&self) -> Duration {
        self.sweep_thread_busy
    }

    /// Most marker threads used by any collection so far.
    pub fn max_mark_threads(&self) -> usize {
        self.max_mark_threads
    }

    /// Most sweep threads used by any collection so far.
    pub fn max_sweep_threads(&self) -> usize {
        self.max_sweep_threads
    }

    /// Objects marked across all collections.
    pub fn total_marked_objects(&self) -> u64 {
        self.total_marked_objects
    }

    /// Bytes found reachable across all collections.
    pub fn total_marked_bytes(&self) -> u64 {
        self.total_marked_bytes
    }

    /// Bytes reclaimed across all collections.
    pub fn total_freed_bytes(&self) -> u64 {
        self.total_freed_bytes
    }

    /// Objects reclaimed across all collections.
    pub fn total_freed_objects(&self) -> u64 {
        self.total_freed_objects
    }

    /// Full collections whose mark phase ran incrementally (a subset of
    /// [`GcStats::collections`]).
    pub fn incremental_cycles(&self) -> u64 {
        self.incremental_cycles
    }

    /// Bounded mark quanta run across all incremental cycles (final
    /// flushes are not quanta).
    pub fn mark_quanta(&self) -> u64 {
        self.mark_quanta
    }

    /// Quanta that processed more objects than their budget — an
    /// oversized SATB drain is worked off immediately rather than
    /// deferred, so it shows up here instead of stretching the log.
    pub fn budget_overruns(&self) -> u64 {
        self.budget_overruns
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        mark_time: Duration,
        sweep_time: Duration,
        mark_thread_times: &[Duration],
        sweep_thread_times: &[Duration],
        marked_objects: u64,
        marked_bytes: u64,
        freed_objects: u64,
        freed_bytes: u64,
    ) {
        self.collections += 1;
        self.mark_time += mark_time;
        self.sweep_time += sweep_time;
        self.mark_thread_busy += mark_thread_times.iter().sum::<Duration>();
        self.sweep_thread_busy += sweep_thread_times.iter().sum::<Duration>();
        self.max_mark_threads = self.max_mark_threads.max(mark_thread_times.len());
        self.max_sweep_threads = self.max_sweep_threads.max(sweep_thread_times.len());
        self.total_marked_objects += marked_objects;
        self.total_marked_bytes += marked_bytes;
        self.total_freed_objects += freed_objects;
        self.total_freed_bytes += freed_bytes;
    }

    pub(crate) fn record_incremental(&mut self, quanta: u64, budget_overruns: u64) {
        self.incremental_cycles += 1;
        self.mark_quanta += quanta;
        self.budget_overruns += budget_overruns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = GcStats::default();
        s.record(
            Duration::from_millis(2),
            Duration::from_millis(1),
            &[Duration::from_millis(2)],
            &[Duration::from_millis(1)],
            10,
            1000,
            5,
            500,
        );
        s.record(
            Duration::from_millis(3),
            Duration::from_millis(1),
            &[Duration::from_millis(3)],
            &[Duration::from_millis(1)],
            20,
            2000,
            1,
            100,
        );
        assert_eq!(s.collections(), 2);
        assert_eq!(s.total_gc_time(), Duration::from_millis(7));
        assert_eq!(s.total_marked_objects(), 30);
        assert_eq!(s.total_marked_bytes(), 3000);
        assert_eq!(s.total_freed_objects(), 6);
        assert_eq!(s.total_freed_bytes(), 600);
    }

    #[test]
    fn per_thread_busy_splits_by_phase() {
        let mut s = GcStats::default();
        s.record(
            Duration::from_millis(4),
            Duration::from_millis(2),
            &[Duration::from_millis(3), Duration::from_millis(4)],
            &[
                Duration::from_millis(1),
                Duration::from_millis(2),
                Duration::from_millis(1),
            ],
            1,
            1,
            1,
            1,
        );
        assert_eq!(s.mark_thread_busy(), Duration::from_millis(7));
        assert_eq!(s.sweep_thread_busy(), Duration::from_millis(4));
        assert_eq!(s.max_mark_threads(), 2);
        assert_eq!(s.max_sweep_threads(), 3);
    }

    #[test]
    fn incremental_counters_accumulate_separately() {
        let mut s = GcStats::default();
        assert_eq!(s.incremental_cycles(), 0);
        s.record_incremental(12, 1);
        s.record_incremental(7, 0);
        assert_eq!(s.incremental_cycles(), 2);
        assert_eq!(s.mark_quanta(), 19);
        assert_eq!(s.budget_overruns(), 1);
    }
}
