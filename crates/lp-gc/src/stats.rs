//! Cumulative collection statistics.

use std::time::Duration;

/// Counters and timings accumulated by a [`Collector`](crate::Collector)
/// over the life of a program.
///
/// Figure 7 of the paper plots normalized GC time for the Base, Observe and
/// Select configurations across heap sizes — [`GcStats::total_gc_time`] is
/// the quantity being normalized.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcStats {
    collections: u64,
    mark_time: Duration,
    sweep_time: Duration,
    total_marked_objects: u64,
    total_marked_bytes: u64,
    total_freed_bytes: u64,
    total_freed_objects: u64,
}

impl GcStats {
    /// Number of collections performed.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Total wall-clock time spent marking.
    pub fn mark_time(&self) -> Duration {
        self.mark_time
    }

    /// Total wall-clock time spent sweeping.
    pub fn sweep_time(&self) -> Duration {
        self.sweep_time
    }

    /// Total wall-clock collection time (mark + sweep).
    pub fn total_gc_time(&self) -> Duration {
        self.mark_time + self.sweep_time
    }

    /// Objects marked across all collections.
    pub fn total_marked_objects(&self) -> u64 {
        self.total_marked_objects
    }

    /// Bytes found reachable across all collections.
    pub fn total_marked_bytes(&self) -> u64 {
        self.total_marked_bytes
    }

    /// Bytes reclaimed across all collections.
    pub fn total_freed_bytes(&self) -> u64 {
        self.total_freed_bytes
    }

    /// Objects reclaimed across all collections.
    pub fn total_freed_objects(&self) -> u64 {
        self.total_freed_objects
    }

    pub(crate) fn record(
        &mut self,
        mark_time: Duration,
        sweep_time: Duration,
        marked_objects: u64,
        marked_bytes: u64,
        freed_objects: u64,
        freed_bytes: u64,
    ) {
        self.collections += 1;
        self.mark_time += mark_time;
        self.sweep_time += sweep_time;
        self.total_marked_objects += marked_objects;
        self.total_marked_bytes += marked_bytes;
        self.total_freed_objects += freed_objects;
        self.total_freed_bytes += freed_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = GcStats::default();
        s.record(
            Duration::from_millis(2),
            Duration::from_millis(1),
            10,
            1000,
            5,
            500,
        );
        s.record(
            Duration::from_millis(3),
            Duration::from_millis(1),
            20,
            2000,
            1,
            100,
        );
        assert_eq!(s.collections(), 2);
        assert_eq!(s.total_gc_time(), Duration::from_millis(7));
        assert_eq!(s.total_marked_objects(), 30);
        assert_eq!(s.total_marked_bytes(), 3000);
        assert_eq!(s.total_freed_objects(), 6);
        assert_eq!(s.total_freed_bytes(), 600);
    }
}
