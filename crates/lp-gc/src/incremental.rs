//! Incremental marking: bounded quanta with an SATB final flush.
//!
//! A stop-the-world full collection pauses the mutator for the whole
//! transitive closure, so the pause grows with the live heap. The
//! [`IncrementalMarker`] splits that closure into bounded *quanta*
//! interleaved with mutator work:
//!
//! 1. **snapshot** — [`IncrementalMarker::start`] marks the roots and opens
//!    the heap's SATB cycle ([`Heap::satb_begin`]);
//! 2. **marking** — each [`IncrementalMarker::quantum`] first drains the
//!    SATB log (references the mutator overwrote since the last quantum),
//!    then scans at most `budget` grey objects;
//! 3. **final flush** — [`IncrementalMarker::flush`] is the only remaining
//!    stop-the-world interval: it drains the log once more, re-scans the
//!    roots, marks every object allocated during the cycle (allocate-grey,
//!    via the heap's young watermark), and runs the worklist to exhaustion.
//!
//! # The SATB invariant
//!
//! The marked set must cover every object reachable at the *snapshot*
//! (cycle start) plus everything allocated during the cycle. A mutator
//! store can hide a snapshot-reachable object from the marker in exactly
//! one way: overwrite the last unscanned reference to it after stashing
//! another copy inside an already-scanned object. Logging the overwritten
//! (deleted) reference closes that hole — the flush marks every logged
//! target. New objects cannot be discovered through already-scanned
//! sources either, which is why the young suffix is marked wholesale.
//!
//! If the bounded log ever overflows, dropped entries would break the
//! invariant silently; [`IncrementalMarker::flush`] therefore *degrades*:
//! it abandons the incremental marks, begins a fresh epoch, and re-runs a
//! full stop-the-world trace. Correctness never depends on the log being
//! big enough — only the pause-time win does.
//!
//! [`Heap::satb_begin`]: lp_heap::Heap::satb_begin

use lp_heap::{Heap, RootSet};

use crate::tracer::{trace, EdgeAction, EdgeVisitor, TraceStats};

/// What one bounded mark quantum accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantumReport {
    /// Objects newly marked during this quantum.
    pub objects: u64,
    /// Bytes of the objects newly marked during this quantum.
    pub bytes: u64,
    /// SATB log entries drained at the start of this quantum.
    pub satb_drained: u64,
    /// Whether the quantum processed more than its object budget. The SATB
    /// drain is never truncated (deferring it would just re-drain the same
    /// entries), so a drain larger than the budget overruns.
    pub over_budget: bool,
    /// Whether the grey worklist is empty. The caller should schedule the
    /// final flush; until it runs, mutator stores may still refill the log.
    pub done: bool,
}

/// The persistent state of one incremental mark cycle.
///
/// The caller owns scheduling: it decides when to run a quantum and when to
/// stop the world for [`IncrementalMarker::flush`]. The marker owns the
/// grey worklist and the accumulated [`TraceStats`], and replicates the
/// stop-the-world tracer's visitor protocol exactly — each object's fields
/// are scanned once, [`EdgeVisitor::visit_object`] fires once per mark.
#[derive(Debug)]
pub struct IncrementalMarker {
    /// Grey objects: marked, fields not yet scanned.
    worklist: Vec<u32>,
    /// Work accumulated across the snapshot, every quantum, and the flush.
    stats: TraceStats,
    /// Maximum objects scanned per quantum.
    budget: usize,
    /// Quanta run so far (the flush is not a quantum).
    quanta: u64,
    /// Quanta that processed more than `budget` objects.
    overruns: u64,
    /// Whether the flush had to fall back to a stop-the-world re-mark.
    degraded: bool,
}

impl IncrementalMarker {
    /// Opens a cycle: snapshots the roots into the grey worklist and starts
    /// the heap's SATB log. The caller must already have begun a fresh mark
    /// epoch (see [`Collector::begin_incremental`]) and must not run minor
    /// collections or stop-the-world full collections until [`flush`].
    ///
    /// `budget` is the per-quantum object cap (clamped to at least 1).
    ///
    /// [`Collector::begin_incremental`]: crate::Collector::begin_incremental
    /// [`flush`]: IncrementalMarker::flush
    pub fn start(
        heap: &mut Heap,
        roots: &RootSet,
        budget: usize,
        visitor: &mut dyn EdgeVisitor,
    ) -> IncrementalMarker {
        heap.satb_begin();
        let mut marker = IncrementalMarker {
            worklist: Vec::new(),
            stats: TraceStats::default(),
            budget: budget.max(1),
            quanta: 0,
            overruns: 0,
            degraded: false,
        };
        for root in roots.iter() {
            marker.mark_grey(heap, root.slot(), visitor);
        }
        marker
    }

    /// Runs one bounded quantum: drains the SATB log into the worklist,
    /// then scans up to the budget's worth of grey objects.
    pub fn quantum(&mut self, heap: &mut Heap, visitor: &mut dyn EdgeVisitor) -> QuantumReport {
        let before = self.stats;
        let drained = self.drain_satb(heap, visitor);
        let mut scanned = 0usize;
        while scanned < self.budget {
            let Some(slot) = self.worklist.pop() else {
                break;
            };
            self.scan(heap, slot, visitor);
            scanned += 1;
        }
        self.quanta += 1;
        let over_budget = (drained as usize).saturating_add(scanned) > self.budget;
        if over_budget {
            self.overruns += 1;
        }
        QuantumReport {
            objects: self.stats.objects_marked - before.objects_marked,
            bytes: self.stats.bytes_marked - before.bytes_marked,
            satb_drained: drained,
            over_budget,
            done: self.worklist.is_empty(),
        }
    }

    /// The final stop-the-world interval: drains the log, re-scans the
    /// roots, marks every object allocated during the cycle, and runs the
    /// worklist to exhaustion. Closes the SATB cycle; the caller sweeps.
    ///
    /// Returns `true` if the SATB log had overflowed and the flush degraded
    /// to a full stop-the-world re-mark in a fresh epoch (staleness ticks
    /// may then be applied twice for this collection — acceptable for a
    /// path that only exists as an overflow backstop).
    pub fn flush(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        visitor: &mut dyn EdgeVisitor,
    ) -> bool {
        if heap.satb_overflowed() > 0 {
            // Dropped log entries mean the snapshot is incomplete and no
            // amount of re-scanning repairs it. Abandon the incremental
            // marks and re-run the whole closure stop-the-world.
            heap.satb_end();
            heap.begin_mark_epoch();
            self.worklist.clear();
            let stats = trace(heap, roots.iter(), visitor);
            self.stats = self.stats.merged(stats);
            self.degraded = true;
            return true;
        }
        self.drain_satb(heap, visitor);
        for root in roots.iter() {
            self.mark_grey(heap, root.slot(), visitor);
        }
        // Allocate-grey: a new object stored into an already-scanned source
        // is invisible to both the closure and the deleted-reference log.
        let young: Vec<u32> = heap.satb_young_suffix().to_vec();
        for slot in young {
            self.mark_grey(heap, slot, visitor);
        }
        while let Some(slot) = self.worklist.pop() {
            self.scan(heap, slot, visitor);
        }
        heap.satb_end();
        false
    }

    /// Work accumulated so far (after [`flush`], the cycle's total).
    ///
    /// [`flush`]: IncrementalMarker::flush
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Quanta run so far.
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// Quanta that exceeded the object budget.
    pub fn budget_overruns(&self) -> u64 {
        self.overruns
    }

    /// Whether the flush degraded to a stop-the-world re-mark.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether the grey worklist is empty (the SATB log may still refill
    /// until the flush).
    pub fn drained(&self) -> bool {
        self.worklist.is_empty()
    }

    fn drain_satb(&mut self, heap: &mut Heap, visitor: &mut dyn EdgeVisitor) -> u64 {
        let entries = heap.satb_drain();
        let drained = entries.len() as u64;
        for slot in entries {
            self.mark_grey(heap, slot, visitor);
        }
        drained
    }

    /// Marks `slot` and queues it for scanning, exactly as the tracer's
    /// mark step does. No-op if already marked this epoch.
    fn mark_grey(&mut self, heap: &Heap, slot: u32, visitor: &mut dyn EdgeVisitor) {
        if heap.try_mark(slot) {
            let object = heap
                .object_by_slot(slot)
                .expect("marked slot is live: no sweep runs during a mark cycle");
            self.stats.objects_marked += 1;
            self.stats.bytes_marked += u64::from(object.footprint());
            visitor.visit_object(heap, slot, object);
            self.worklist.push(slot);
        }
    }

    /// Scans one grey object's fields, greying unmarked targets.
    fn scan(&mut self, heap: &Heap, slot: u32, visitor: &mut dyn EdgeVisitor) {
        let object = heap
            .object_by_slot(slot)
            .expect("grey slot is live: no sweep runs during a mark cycle");
        for (field, reference) in object.iter_refs() {
            if reference.is_null() {
                continue;
            }
            self.stats.edges_visited += 1;
            match visitor.visit_edge(heap, slot, object, field, reference) {
                EdgeAction::Skip => {}
                EdgeAction::Trace => {
                    let target = reference.slot().expect("non-null reference has a slot");
                    self.mark_grey(heap, target, visitor);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceAll;
    use lp_heap::{AllocSpec, ClassRegistry, Handle, TaggedRef};

    fn setup() -> (Heap, RootSet, lp_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        (Heap::new(1 << 22), RootSet::new(), cls)
    }

    /// Drives a cycle to completion with no interleaved mutation.
    fn run_to_flush(heap: &mut Heap, roots: &RootSet, budget: usize) -> IncrementalMarker {
        heap.begin_mark_epoch();
        let mut marker = IncrementalMarker::start(heap, roots, budget, &mut TraceAll);
        while !marker.quantum(heap, &mut TraceAll).done {}
        marker.flush(heap, roots, &mut TraceAll);
        marker
    }

    #[test]
    fn matches_stw_marked_set_without_mutation() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(2)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let c = heap.alloc(cls, &AllocSpec::default()).unwrap();
        let dead = heap.alloc(cls, &AllocSpec::leaf(64)).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        heap.object(a).store_ref(1, TaggedRef::from_handle(c));
        heap.object(b).store_ref(0, TaggedRef::from_handle(c));
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        let marker = run_to_flush(&mut heap, &roots, 1);
        assert_eq!(marker.stats().objects_marked, 3);
        assert!(marker.quanta() >= 3, "budget 1 needs a quantum per object");
        heap.sweep();
        assert!(heap.contains(a) && heap.contains(b) && heap.contains(c));
        assert!(!heap.contains(dead));
    }

    #[test]
    fn quantum_respects_the_object_budget() {
        let (mut heap, mut roots, cls) = setup();
        let mut prev: Option<Handle> = None;
        for _ in 0..100 {
            let h = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
            if let Some(p) = prev {
                heap.object(h).store_ref(0, TaggedRef::from_handle(p));
            }
            prev = Some(h);
        }
        let s = roots.add_static();
        roots.set_static(s, prev);

        heap.begin_mark_epoch();
        let mut marker = IncrementalMarker::start(&mut heap, &roots, 10, &mut TraceAll);
        let mut quanta = 0;
        loop {
            let report = marker.quantum(&mut heap, &mut TraceAll);
            assert!(report.objects <= 10, "a chain marks at most budget/quantum");
            assert!(!report.over_budget);
            quanta += 1;
            if report.done {
                break;
            }
        }
        assert!(quanta >= 10, "100 objects / budget 10");
        assert_eq!(marker.quanta(), quanta);
        assert_eq!(marker.budget_overruns(), 0);
        marker.flush(&mut heap, &roots, &mut TraceAll);
        assert_eq!(marker.stats().objects_marked, 100);
    }

    #[test]
    fn satb_log_preserves_overwritten_snapshot_reference() {
        // root -> a -> b. Scan a, then overwrite a.0 (the only reference to
        // b) with the barrier's deleted-reference log active. b must still
        // be marked: it was reachable at the snapshot.
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::leaf(8)).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        heap.begin_mark_epoch();
        let mut marker = IncrementalMarker::start(&mut heap, &roots, 1, &mut TraceAll);
        // Quantum 1 scans a, marking b grey — but model the worst case:
        // the store happens before b is scanned, and b's entry could have
        // been dropped if the log were unsound. Overwrite and log first.
        heap.satb_push(b.slot());
        heap.object(a).store_ref(0, TaggedRef::NULL);
        while !marker.quantum(&mut heap, &mut TraceAll).done {}
        assert!(!marker.flush(&mut heap, &roots, &mut TraceAll));
        heap.sweep();
        assert!(heap.contains(b), "snapshot-reachable object swept");
    }

    #[test]
    fn hidden_pointer_store_cannot_escape_the_log() {
        // The canonical SATB race: root -> a (scanned early), root -> c,
        // c.0 -> b. The mutator copies c.0 into a.0 (already scanned, so
        // never rescanned) and then clears c.0, logging the deleted
        // reference. Without the log, b would be unreachable to the marker.
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::leaf(8)).unwrap();
        let c = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        heap.object(c).store_ref(0, TaggedRef::from_handle(b));
        let sa = roots.add_static();
        roots.set_static(sa, Some(a));
        let sc = roots.add_static();
        roots.set_static(sc, Some(c));

        heap.begin_mark_epoch();
        let mut marker = IncrementalMarker::start(&mut heap, &roots, 2, &mut TraceAll);
        // One quantum scans both roots' objects... except b hides: mutate
        // before the quantum that would have scanned c's field.
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        // a is already grey/scanned in the worst case — simulate it by
        // running the first quantum now (scans a and c in some order).
        let first = marker.quantum(&mut heap, &mut TraceAll);
        // Whatever was scanned, now clear c.0 with the barrier.
        heap.satb_push(b.slot());
        heap.object(c).store_ref(0, TaggedRef::NULL);
        // And also clear a.0 (logging again): b now has no heap reference.
        heap.satb_push(b.slot());
        heap.object(a).store_ref(0, TaggedRef::NULL);
        let _ = first;
        while !marker.quantum(&mut heap, &mut TraceAll).done {}
        marker.flush(&mut heap, &roots, &mut TraceAll);
        heap.sweep();
        assert!(heap.contains(b), "deleted-reference log must preserve b");
    }

    #[test]
    fn objects_allocated_during_the_cycle_survive() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(a));
        // Promote `a` out of the nursery so the young watermark is clean.
        heap.begin_mark_epoch();
        heap.try_mark(a.slot());
        heap.sweep();

        heap.begin_mark_epoch();
        let mut marker = IncrementalMarker::start(&mut heap, &roots, 8, &mut TraceAll);
        let _ = marker.quantum(&mut heap, &mut TraceAll);
        // Allocated mid-cycle, stored into the already-scanned `a`: only
        // allocate-grey saves it (the log never saw it — nothing was
        // overwritten, a.0 was null).
        let young = heap.alloc(cls, &AllocSpec::leaf(16)).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(young));
        while !marker.quantum(&mut heap, &mut TraceAll).done {}
        marker.flush(&mut heap, &roots, &mut TraceAll);
        heap.sweep();
        assert!(heap.contains(young));
    }

    #[test]
    fn log_overflow_degrades_to_a_sound_stw_remark() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::leaf(8)).unwrap();
        let dead = heap.alloc(cls, &AllocSpec::leaf(8)).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        heap.begin_mark_epoch();
        let mut marker = IncrementalMarker::start(&mut heap, &roots, 4, &mut TraceAll);
        // Blow the log: every push past the cap is dropped and counted.
        for _ in 0..=lp_heap::SATB_LOG_CAP {
            heap.satb_push(b.slot());
        }
        assert!(heap.satb_overflowed() > 0);
        assert!(marker.flush(&mut heap, &roots, &mut TraceAll));
        assert!(marker.degraded());
        heap.sweep();
        assert!(heap.contains(a) && heap.contains(b));
        assert!(
            !heap.contains(dead),
            "the degraded re-mark is still precise"
        );
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::tracer::TraceAll;
    use lp_heap::{AllocSpec, ClassRegistry, Handle, TaggedRef};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// Run one mark quantum.
        Quantum,
        /// Store `edges[src] -> tgt` (None clears), with the SATB barrier.
        Store { src: usize, tgt: Option<usize> },
        /// Allocate a new object and root it in a fresh static.
        Alloc,
    }

    /// Decodes one `(kind, src, tgt)` seed: kinds 0–1 run a quantum, 2–3
    /// store (tgt == 24 clears the field), 4 allocates.
    fn decode_op((kind, src, tgt): (u8, usize, usize)) -> Op {
        match kind % 5 {
            0 | 1 => Op::Quantum,
            2 | 3 => Op::Store {
                src,
                tgt: if tgt == 24 { None } else { Some(tgt) },
            },
            _ => Op::Alloc,
        }
    }

    /// Host-side reachability over an edge map.
    fn reachable(n: usize, edges: &[Option<usize>], roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            if let Some(t) = edges[i] {
                if !seen[t] {
                    stack.push(t);
                }
            }
        }
        seen
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// On random single-field graphs with random interleaved mutation
        /// (stores during the active cycle, barriered like the runtime's
        /// write path), the incremental closure is
        ///
        /// * **sound**: everything reachable at the flush is marked, and
        /// * **bounded**: everything marked was reachable at the snapshot
        ///   or allocated during the cycle;
        ///
        /// and with no interleaved stores it equals the stop-the-world
        /// closure exactly.
        #[test]
        fn prop_incremental_closure_is_sound_and_bounded(
            n in 2usize..24,
            edge_seeds in proptest::collection::vec(0usize..25, 2..24),
            root_seeds in proptest::collection::vec(0usize..24, 1..4),
            budget in 1usize..8,
            op_seeds in proptest::collection::vec((0u8..5, 0usize..24, 0usize..25), 0..40),
        ) {
            let ops: Vec<Op> = op_seeds.into_iter().map(decode_op).collect();
            let mut reg = ClassRegistry::new();
            let cls = reg.register("T");
            let mut heap = Heap::new(1 << 24);
            let mut roots = RootSet::new();

            let mut handles: Vec<Handle> = (0..n)
                .map(|_| heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap())
                .collect();
            let mut edges: Vec<Option<usize>> = (0..n)
                .map(|i| match edge_seeds.get(i) {
                    Some(&seed) if seed < 24 => Some(seed % n),
                    _ => None,
                })
                .collect();
            for (i, tgt) in edges.iter().enumerate() {
                if let Some(t) = tgt {
                    heap.object(handles[i])
                        .store_ref(0, TaggedRef::from_handle(handles[*t]));
                }
            }
            let mut root_idx: Vec<usize> = root_seeds.iter().map(|r| r % n).collect();
            root_idx.sort_unstable();
            root_idx.dedup();
            for i in &root_idx {
                let s = roots.add_static();
                roots.set_static(s, Some(handles[*i]));
            }

            let snapshot = reachable(n, &edges, &root_idx);
            let mut allocated_during = vec![false; n];
            let mutated = ops.iter().any(|op| matches!(op, Op::Store { .. }));

            heap.begin_mark_epoch();
            let mut marker =
                IncrementalMarker::start(&mut heap, &roots, budget, &mut TraceAll);
            for op in &ops {
                match op {
                    Op::Quantum => {
                        let _ = marker.quantum(&mut heap, &mut TraceAll);
                    }
                    Op::Store { src, tgt } => {
                        let src = src % edges.len();
                        let tgt = tgt.map(|t| t % edges.len());
                        // A real mutator can only store references it holds,
                        // i.e. to objects reachable right now — and can only
                        // write into objects it can reach. Skip stores no
                        // legal mutator could perform.
                        let now = reachable(handles.len(), &edges, &root_idx);
                        if !now[src] || tgt.is_some_and(|t| !now[t]) {
                            continue;
                        }
                        // The runtime's barrier: log the deleted reference.
                        if let Some(old) = edges[src] {
                            heap.satb_push(handles[old].slot());
                        }
                        let word = match tgt {
                            Some(t) => TaggedRef::from_handle(handles[t]),
                            None => TaggedRef::NULL,
                        };
                        heap.object(handles[src]).store_ref(0, word);
                        edges[src] = tgt;
                    }
                    Op::Alloc => {
                        let h = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
                        handles.push(h);
                        edges.push(None);
                        allocated_during.push(true);
                        let s = roots.add_static();
                        roots.set_static(s, Some(h));
                        root_idx.push(handles.len() - 1);
                    }
                }
            }
            prop_assert!(!marker.flush(&mut heap, &roots, &mut TraceAll));

            let total = handles.len();
            let at_flush = reachable(total, &edges, &root_idx);
            for (i, h) in handles.iter().enumerate() {
                let marked = heap.is_marked(h.slot());
                if at_flush[i] {
                    prop_assert!(marked, "reachable-at-flush object {} unmarked", i);
                }
                let in_bound =
                    snapshot.get(i).copied().unwrap_or(false) || allocated_during[i];
                if marked {
                    prop_assert!(in_bound, "marked object {} outside the SATB bound", i);
                }
                if !mutated {
                    // No stores: the closure is exactly the STW closure over
                    // the snapshot plus allocate-grey.
                    prop_assert_eq!(marked, in_bound, "object {}", i);
                }
            }

            // The sweep retains exactly the marked set.
            let marked_set: Vec<bool> =
                handles.iter().map(|h| heap.is_marked(h.slot())).collect();
            heap.sweep();
            for (i, h) in handles.iter().enumerate() {
                prop_assert_eq!(heap.contains(*h), marked_set[i], "post-sweep object {}", i);
            }
        }
    }
}
