//! The mark-sweep collection driver.

use std::time::{Duration, Instant};

use lp_heap::{Heap, RootSet, SweepOutcome};

use crate::parallel::{par_trace, ParEdgeVisitor};
use crate::stats::GcStats;
use crate::tracer::{trace, EdgeVisitor, TraceStats};

/// The result of one full-heap collection.
#[derive(Debug, Clone)]
pub struct CollectionOutcome {
    /// 1-based index of this collection — the paper's full-heap collection
    /// number `i` used by the logarithmic stale-counter increment rule.
    pub gc_index: u64,
    /// Marking statistics (reachable objects/bytes).
    pub trace: TraceStats,
    /// What the sweep reclaimed.
    pub swept: SweepOutcome,
    /// Bytes in use after the sweep — the paper's "reachable memory at the
    /// end of each full-heap collection".
    pub live_bytes_after: u64,
    /// Objects in the heap after the sweep.
    pub live_objects_after: u64,
    /// Wall-clock time spent marking.
    pub mark_time: Duration,
    /// Wall-clock time spent sweeping.
    pub sweep_time: Duration,
}

/// A stop-the-world mark-sweep collector.
///
/// The collector numbers collections (leak pruning's staleness clock),
/// accumulates [`GcStats`], and runs the mark phase through a pluggable
/// visitor — either the trivial [`TraceAll`](crate::TraceAll) (the paper's
/// Base configuration) or leak pruning's state-dependent closures.
///
/// For custom multi-phase marking (leak pruning's SELECT state runs an
/// in-use closure *and* a stale closure in one collection), use
/// [`Collector::collect_with`].
#[derive(Debug, Default)]
pub struct Collector {
    gc_count: u64,
    stats: GcStats,
}

impl Collector {
    /// Creates a collector that has performed no collections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of collections completed so far.
    pub fn collections(&self) -> u64 {
        self.gc_count
    }

    /// The index the *next* collection will carry (1-based).
    pub fn next_gc_index(&self) -> u64 {
        self.gc_count + 1
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Performs a full-heap collection with a serial mark phase.
    pub fn collect(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        visitor: &mut dyn EdgeVisitor,
    ) -> CollectionOutcome {
        self.collect_with(heap, |heap| trace(heap, roots.iter(), visitor))
    }

    /// Performs a full-heap collection with `threads` parallel marker
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn collect_parallel<V: ParEdgeVisitor>(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        visitor: &V,
        threads: usize,
    ) -> CollectionOutcome {
        let root_handles: Vec<_> = roots.iter().collect();
        self.collect_with(heap, |heap| par_trace(heap, &root_handles, visitor, threads))
    }

    /// Performs a full-heap collection whose mark phase is supplied by the
    /// caller. `mark` runs after a fresh mark epoch has begun; everything it
    /// leaves unmarked is swept.
    ///
    /// This is the hook leak pruning uses to run its two-phase SELECT
    /// closure and its poisoning PRUNE closure while reusing the collector's
    /// numbering, timing, and sweep.
    pub fn collect_with(
        &mut self,
        heap: &mut Heap,
        mark: impl FnOnce(&Heap) -> TraceStats,
    ) -> CollectionOutcome {
        self.gc_count += 1;
        heap.begin_mark_epoch();

        let mark_start = Instant::now();
        let trace_stats = mark(heap);
        let mark_time = mark_start.elapsed();

        let sweep_start = Instant::now();
        let swept = heap.sweep();
        let sweep_time = sweep_start.elapsed();

        self.stats.record(
            mark_time,
            sweep_time,
            trace_stats.objects_marked,
            trace_stats.bytes_marked,
            swept.freed_objects,
            swept.freed_bytes,
        );

        CollectionOutcome {
            gc_index: self.gc_count,
            trace: trace_stats,
            swept,
            live_bytes_after: heap.used_bytes(),
            live_objects_after: heap.live_objects(),
            mark_time,
            sweep_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceAll;
    use lp_heap::{AllocSpec, ClassRegistry, TaggedRef};

    fn setup() -> (Heap, RootSet, lp_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        (Heap::new(1 << 20), RootSet::new(), cls)
    }

    #[test]
    fn collect_reclaims_garbage_and_numbers_collections() {
        let (mut heap, mut roots, cls) = setup();
        let live = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let child = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(live).store_ref(0, TaggedRef::from_handle(child));
        heap.alloc(cls, &AllocSpec::leaf(100)).unwrap(); // garbage
        let s = roots.add_static();
        roots.set_static(s, Some(live));

        let mut collector = Collector::new();
        assert_eq!(collector.next_gc_index(), 1);
        let outcome = collector.collect(&mut heap, &roots, &mut TraceAll);
        assert_eq!(outcome.gc_index, 1);
        assert_eq!(outcome.swept.freed_objects, 1);
        assert_eq!(outcome.trace.objects_marked, 2);
        assert_eq!(outcome.live_objects_after, 2);
        assert_eq!(collector.collections(), 1);
        assert_eq!(collector.stats().collections(), 1);
    }

    #[test]
    fn parallel_collect_matches_serial_liveness() {
        let (mut heap, mut roots, cls) = setup();
        let mut prev = None;
        for _ in 0..100 {
            let h = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
            if let Some(p) = prev {
                heap.object(h).store_ref(0, TaggedRef::from_handle(p));
            }
            prev = Some(h);
        }
        // 50 garbage objects.
        for _ in 0..50 {
            heap.alloc(cls, &AllocSpec::default()).unwrap();
        }
        let s = roots.add_static();
        roots.set_static(s, prev);

        let mut collector = Collector::new();
        let outcome = collector.collect_parallel(&mut heap, &roots, &TraceAll, 4);
        assert_eq!(outcome.swept.freed_objects, 50);
        assert_eq!(outcome.live_objects_after, 100);
    }

    #[test]
    fn collect_with_allows_custom_mark_phases() {
        let (mut heap, _roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.alloc(cls, &AllocSpec::default()).unwrap(); // garbage

        let mut collector = Collector::new();
        let outcome = collector.collect_with(&mut heap, |heap| {
            crate::trace(heap, [a], &mut TraceAll)
        });
        assert_eq!(outcome.swept.freed_objects, 1);
        assert!(heap.contains(a));
    }

    #[test]
    fn stats_track_multiple_collections() {
        let (mut heap, roots, cls) = setup();
        let mut collector = Collector::new();
        for _ in 0..3 {
            heap.alloc(cls, &AllocSpec::leaf(10)).unwrap();
            collector.collect(&mut heap, &roots, &mut TraceAll);
        }
        assert_eq!(collector.stats().collections(), 3);
        assert_eq!(collector.stats().total_freed_objects(), 3);
    }
}
