//! The mark-sweep collection driver.

use std::time::{Duration, Instant};

use lp_heap::{Heap, RootSet, SweepOutcome};
use lp_telemetry::{Event, GcPhase};

use crate::parallel::{par_trace_timed, ParEdgeVisitor};
use crate::stats::GcStats;
use crate::tracer::{trace, EdgeVisitor, TraceStats};

/// Which flavor of collection produced a [`CollectionOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionKind {
    /// A monolithic stop-the-world full-heap collection.
    Full,
    /// A full-heap collection whose mark phase ran as bounded incremental
    /// quanta, finished by a short stop-the-world flush before the sweep.
    IncrementalFull,
    /// A nursery-only minor collection.
    Minor,
}

/// The result of one collection.
#[derive(Debug, Clone)]
pub struct CollectionOutcome {
    /// 1-based index of this collection — the paper's full-heap collection
    /// number `i` used by the logarithmic stale-counter increment rule.
    /// `None` for minor collections, which do not advance the full-heap
    /// numbering that drives staleness.
    pub gc_index: Option<u64>,
    /// What flavor of collection this was.
    pub kind: CollectionKind,
    /// Marking statistics (reachable objects/bytes).
    pub trace: TraceStats,
    /// What the sweep reclaimed.
    pub swept: SweepOutcome,
    /// Bytes in use after the sweep — the paper's "reachable memory at the
    /// end of each full-heap collection".
    pub live_bytes_after: u64,
    /// Objects in the heap after the sweep.
    pub live_objects_after: u64,
    /// Wall-clock time spent marking.
    pub mark_time: Duration,
    /// Wall-clock time spent sweeping.
    pub sweep_time: Duration,
    /// Per-thread busy time in the mark phase. A single entry equal to
    /// [`CollectionOutcome::mark_time`] when marking ran serially.
    pub mark_thread_times: Vec<Duration>,
    /// Per-thread busy time in the sweep phase. A single entry when the
    /// sweep ran serially.
    pub sweep_thread_times: Vec<Duration>,
}

/// A stop-the-world mark-sweep collector.
///
/// The collector numbers collections (leak pruning's staleness clock),
/// accumulates [`GcStats`], and runs the mark phase through a pluggable
/// visitor — either the trivial [`TraceAll`](crate::TraceAll) (the paper's
/// Base configuration) or leak pruning's state-dependent closures.
///
/// For custom multi-phase marking (leak pruning's SELECT state runs an
/// in-use closure *and* a stale closure in one collection), use
/// [`Collector::collect_with`].
#[derive(Debug)]
pub struct Collector {
    gc_count: u64,
    stats: GcStats,
    sweep_threads: usize,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            gc_count: 0,
            stats: GcStats::default(),
            sweep_threads: 1,
        }
    }
}

impl Collector {
    /// Creates a collector that has performed no collections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of threads every sweep phase uses (default 1 — serial).
    pub fn sweep_threads(&self) -> usize {
        self.sweep_threads
    }

    /// Sets the number of sweep threads. The parallel sweep is
    /// deterministically equivalent to the serial one, so this only changes
    /// pause time, never collection results.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_sweep_threads(&mut self, threads: usize) {
        assert!(threads > 0, "need at least one sweep thread");
        self.sweep_threads = threads;
    }

    /// Number of collections completed so far.
    pub fn collections(&self) -> u64 {
        self.gc_count
    }

    /// The index the *next* collection will carry (1-based).
    pub fn next_gc_index(&self) -> u64 {
        self.gc_count + 1
    }

    /// Restores the collection counter from a checkpoint, so gc indices
    /// continue the pre-crash sequence instead of restarting at 1 — the
    /// staleness clock's logarithmic tick rule (`gc_index % 2^k`) and every
    /// recorded history line key on this numbering. Statistics are not
    /// restored; like heap statistics, they are telemetry, not program
    /// state.
    pub fn restore_collections(&mut self, gc_count: u64) {
        self.gc_count = gc_count;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Performs a full-heap collection with a serial mark phase.
    pub fn collect(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        visitor: &mut dyn EdgeVisitor,
    ) -> CollectionOutcome {
        self.collect_with(heap, |heap| trace(heap, roots.iter(), visitor))
    }

    /// Performs a full-heap collection with `threads` parallel marker
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn collect_parallel<V: ParEdgeVisitor>(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        visitor: &V,
        threads: usize,
    ) -> CollectionOutcome {
        let root_handles: Vec<_> = roots.iter().collect();
        self.collect_with_timed(heap, |heap| {
            par_trace_timed(heap, &root_handles, visitor, threads)
        })
    }

    /// Performs a full-heap collection whose mark phase is supplied by the
    /// caller. `mark` runs after a fresh mark epoch has begun; everything it
    /// leaves unmarked is swept.
    ///
    /// This is the hook leak pruning uses to run its two-phase SELECT
    /// closure and its poisoning PRUNE closure while reusing the collector's
    /// numbering, timing, and sweep.
    pub fn collect_with(
        &mut self,
        heap: &mut Heap,
        mark: impl FnOnce(&Heap) -> TraceStats,
    ) -> CollectionOutcome {
        self.collect_with_timed(heap, |heap| (mark(heap), Vec::new()))
    }

    /// [`Collector::collect_with`] for mark phases that report per-thread
    /// busy times (an empty vector means "serial": it is replaced by the
    /// phase's wall-clock time).
    pub fn collect_with_timed(
        &mut self,
        heap: &mut Heap,
        mark: impl FnOnce(&Heap) -> (TraceStats, Vec<Duration>),
    ) -> CollectionOutcome {
        self.gc_count += 1;
        let gc_index = self.gc_count;
        heap.begin_mark_epoch();

        // Phase spans go out on the heap's bus so they interleave with its
        // alloc/free events (and the runtime's records) on one sequence.
        let mark_span = heap.telemetry().span("mark", gc_index);
        heap.telemetry().emit(|| Event::PhaseBegin {
            gc_index,
            phase: GcPhase::Mark,
        });
        let mark_start = Instant::now();
        let (trace_stats, mut mark_thread_times) = mark(heap);
        let mark_time = mark_start.elapsed();
        if mark_thread_times.is_empty() {
            mark_thread_times.push(mark_time);
        }
        heap.telemetry().emit(|| Event::PhaseEnd {
            gc_index,
            phase: GcPhase::Mark,
            nanos: duration_nanos(mark_time),
            threads: mark_thread_times.len() as u64,
            busy_nanos: busy_nanos(&mark_thread_times),
        });
        drop(mark_span);

        let sweep_span = heap.telemetry().span("sweep", gc_index);
        heap.telemetry().emit(|| Event::PhaseBegin {
            gc_index,
            phase: GcPhase::Sweep,
        });
        let sweep_start = Instant::now();
        let (swept, sweep_thread_times) = heap.sweep_parallel_timed(self.sweep_threads);
        let sweep_time = sweep_start.elapsed();
        heap.telemetry().emit(|| Event::PhaseEnd {
            gc_index,
            phase: GcPhase::Sweep,
            nanos: duration_nanos(sweep_time),
            threads: sweep_thread_times.len() as u64,
            busy_nanos: busy_nanos(&sweep_thread_times),
        });
        drop(sweep_span);

        self.stats.record(
            mark_time,
            sweep_time,
            &mark_thread_times,
            &sweep_thread_times,
            trace_stats.objects_marked,
            trace_stats.bytes_marked,
            swept.freed_objects,
            swept.freed_bytes,
        );

        CollectionOutcome {
            gc_index: Some(self.gc_count),
            kind: CollectionKind::Full,
            trace: trace_stats,
            swept,
            live_bytes_after: heap.used_bytes(),
            live_objects_after: heap.live_objects(),
            mark_time,
            sweep_time,
            mark_thread_times,
            sweep_thread_times,
        }
    }

    /// Opens an incremental full collection: claims the next collection
    /// index, begins a fresh mark epoch, and emits the `Mark` phase-begin
    /// span. The caller drives an [`IncrementalMarker`] through its quanta
    /// (starting it with [`IncrementalMarker::start`], which opens the SATB
    /// log) and closes the collection with
    /// [`Collector::finish_incremental`].
    ///
    /// Between `begin_incremental` and `finish_incremental` no other
    /// collection — full, minor, or nested incremental — may run on this
    /// heap: any of them would begin a new mark epoch and destroy the
    /// cycle's accumulated marks.
    ///
    /// [`IncrementalMarker`]: crate::IncrementalMarker
    /// [`IncrementalMarker::start`]: crate::IncrementalMarker::start
    pub fn begin_incremental(&mut self, heap: &mut Heap) -> u64 {
        self.gc_count += 1;
        let gc_index = self.gc_count;
        heap.begin_mark_epoch();
        heap.telemetry().emit(|| Event::PhaseBegin {
            gc_index,
            phase: GcPhase::Mark,
        });
        gc_index
    }

    /// Closes an incremental full collection opened by
    /// [`Collector::begin_incremental`], after the marker's final flush:
    /// emits the `Mark` phase-end span (whose `nanos` is the *accumulated
    /// marking time* across all quanta plus the flush, not the span's
    /// wall-clock extent — the mutator ran inside it), sweeps with the
    /// usual `Sweep` spans, and records statistics.
    pub fn finish_incremental(
        &mut self,
        heap: &mut Heap,
        gc_index: u64,
        trace_stats: TraceStats,
        mark_time: Duration,
        quanta: u64,
        budget_overruns: u64,
    ) -> CollectionOutcome {
        let mark_thread_times = vec![mark_time];
        heap.telemetry().emit(|| Event::PhaseEnd {
            gc_index,
            phase: GcPhase::Mark,
            nanos: duration_nanos(mark_time),
            threads: 1,
            busy_nanos: duration_nanos(mark_time),
        });

        let sweep_span = heap.telemetry().span("sweep", gc_index);
        heap.telemetry().emit(|| Event::PhaseBegin {
            gc_index,
            phase: GcPhase::Sweep,
        });
        let sweep_start = Instant::now();
        let (swept, sweep_thread_times) = heap.sweep_parallel_timed(self.sweep_threads);
        let sweep_time = sweep_start.elapsed();
        heap.telemetry().emit(|| Event::PhaseEnd {
            gc_index,
            phase: GcPhase::Sweep,
            nanos: duration_nanos(sweep_time),
            threads: sweep_thread_times.len() as u64,
            busy_nanos: busy_nanos(&sweep_thread_times),
        });
        drop(sweep_span);

        self.stats.record(
            mark_time,
            sweep_time,
            &mark_thread_times,
            &sweep_thread_times,
            trace_stats.objects_marked,
            trace_stats.bytes_marked,
            swept.freed_objects,
            swept.freed_bytes,
        );
        self.stats.record_incremental(quanta, budget_overruns);

        CollectionOutcome {
            gc_index: Some(gc_index),
            kind: CollectionKind::IncrementalFull,
            trace: trace_stats,
            swept,
            live_bytes_after: heap.used_bytes(),
            live_objects_after: heap.live_objects(),
            mark_time,
            sweep_time,
            mark_thread_times,
            sweep_thread_times,
        }
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn busy_nanos(thread_times: &[Duration]) -> u64 {
    thread_times
        .iter()
        .fold(0u64, |acc, d| acc.saturating_add(duration_nanos(*d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceAll;
    use lp_heap::{AllocSpec, ClassRegistry, TaggedRef};

    fn setup() -> (Heap, RootSet, lp_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        (Heap::new(1 << 20), RootSet::new(), cls)
    }

    #[test]
    fn collect_reclaims_garbage_and_numbers_collections() {
        let (mut heap, mut roots, cls) = setup();
        let live = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let child = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(live)
            .store_ref(0, TaggedRef::from_handle(child));
        heap.alloc(cls, &AllocSpec::leaf(100)).unwrap(); // garbage
        let s = roots.add_static();
        roots.set_static(s, Some(live));

        let mut collector = Collector::new();
        assert_eq!(collector.next_gc_index(), 1);
        let outcome = collector.collect(&mut heap, &roots, &mut TraceAll);
        assert_eq!(outcome.gc_index, Some(1));
        assert_eq!(outcome.kind, CollectionKind::Full);
        assert_eq!(outcome.swept.freed_objects, 1);
        assert_eq!(outcome.trace.objects_marked, 2);
        assert_eq!(outcome.live_objects_after, 2);
        assert_eq!(collector.collections(), 1);
        assert_eq!(collector.stats().collections(), 1);
    }

    #[test]
    fn parallel_collect_matches_serial_liveness() {
        let (mut heap, mut roots, cls) = setup();
        let mut prev = None;
        for _ in 0..100 {
            let h = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
            if let Some(p) = prev {
                heap.object(h).store_ref(0, TaggedRef::from_handle(p));
            }
            prev = Some(h);
        }
        // 50 garbage objects.
        for _ in 0..50 {
            heap.alloc(cls, &AllocSpec::default()).unwrap();
        }
        let s = roots.add_static();
        roots.set_static(s, prev);

        let mut collector = Collector::new();
        let outcome = collector.collect_parallel(&mut heap, &roots, &TraceAll, 4);
        assert_eq!(outcome.swept.freed_objects, 50);
        assert_eq!(outcome.live_objects_after, 100);
    }

    #[test]
    fn collect_with_allows_custom_mark_phases() {
        let (mut heap, _roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.alloc(cls, &AllocSpec::default()).unwrap(); // garbage

        let mut collector = Collector::new();
        let outcome =
            collector.collect_with(&mut heap, |heap| crate::trace(heap, [a], &mut TraceAll));
        assert_eq!(outcome.swept.freed_objects, 1);
        assert!(heap.contains(a));
    }

    #[test]
    fn parallel_sweep_threads_produce_identical_collections() {
        let build = || {
            let mut reg = ClassRegistry::new();
            let cls = reg.register("T");
            let mut heap = Heap::new(1 << 28);
            let mut roots = RootSet::new();
            let mut keep = None;
            for i in 0..(2 * lp_heap::CHUNK_SLOTS + 77) {
                let h = heap
                    .alloc(cls, &AllocSpec::leaf((i % 11) as u32 * 8))
                    .unwrap();
                if i % 3 == 0 {
                    keep = Some(h);
                }
                if i % 5 == 0 {
                    heap.set_finalizable(h);
                }
            }
            let s = roots.add_static();
            roots.set_static(s, keep);
            (heap, roots)
        };

        let (mut serial_heap, serial_roots) = build();
        let mut serial = Collector::new();
        let a = serial.collect(&mut serial_heap, &serial_roots, &mut TraceAll);

        let (mut par_heap, par_roots) = build();
        let mut par = Collector::new();
        par.set_sweep_threads(4);
        assert_eq!(par.sweep_threads(), 4);
        let b = par.collect(&mut par_heap, &par_roots, &mut TraceAll);

        assert_eq!(a.swept, b.swept);
        assert_eq!(a.live_bytes_after, b.live_bytes_after);
        assert_eq!(serial_heap.free_slots(), par_heap.free_slots());
        // 3 chunks across 4 requested threads: one chunk per spawned thread.
        assert!(b.sweep_thread_times.len() > 1 && b.sweep_thread_times.len() <= 4);
        assert_eq!(a.sweep_thread_times.len(), 1);
        assert_eq!(par.stats().max_sweep_threads(), b.sweep_thread_times.len());
    }

    #[test]
    fn mark_thread_times_reported_per_thread() {
        let (mut heap, mut roots, cls) = setup();
        let mut prev = None;
        for _ in 0..50 {
            let h = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
            if let Some(p) = prev {
                heap.object(h).store_ref(0, TaggedRef::from_handle(p));
            }
            prev = Some(h);
        }
        let s = roots.add_static();
        roots.set_static(s, prev);

        let mut collector = Collector::new();
        let outcome = collector.collect_parallel(&mut heap, &roots, &TraceAll, 3);
        assert_eq!(outcome.mark_thread_times.len(), 3);
        let serial = collector.collect(&mut heap, &roots, &mut TraceAll);
        assert_eq!(serial.mark_thread_times.len(), 1);
        assert_eq!(serial.mark_thread_times[0], serial.mark_time);
        assert_eq!(collector.stats().max_mark_threads(), 3);
    }

    #[test]
    fn collections_emit_ordered_phase_spans() {
        let (mut heap, mut roots, cls) = setup();
        let telemetry = lp_telemetry::Telemetry::with_recorder(64);
        heap.set_telemetry(telemetry.clone());
        let live = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.alloc(cls, &AllocSpec::default()).unwrap(); // garbage
        let s = roots.add_static();
        roots.set_static(s, Some(live));

        let mut collector = Collector::new();
        collector.collect(&mut heap, &roots, &mut TraceAll);

        let spans: Vec<_> = telemetry
            .recorder_snapshot()
            .into_iter()
            .filter_map(|line| match line.event {
                Event::PhaseBegin { gc_index, phase } => Some((gc_index, phase, false)),
                Event::PhaseEnd {
                    gc_index,
                    phase,
                    nanos,
                    threads,
                    busy_nanos,
                } => {
                    assert!(threads >= 1);
                    assert!(busy_nanos <= nanos.saturating_mul(threads));
                    Some((gc_index, phase, true))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                (1, GcPhase::Mark, false),
                (1, GcPhase::Mark, true),
                (1, GcPhase::Sweep, false),
                (1, GcPhase::Sweep, true),
            ]
        );
    }

    #[test]
    fn incremental_collections_number_and_sweep_like_stw_ones() {
        use crate::IncrementalMarker;

        let (mut heap, mut roots, cls) = setup();
        let telemetry = lp_telemetry::Telemetry::with_recorder(64);
        heap.set_telemetry(telemetry.clone());
        let live = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let child = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(live)
            .store_ref(0, TaggedRef::from_handle(child));
        heap.alloc(cls, &AllocSpec::leaf(100)).unwrap(); // garbage
        let s = roots.add_static();
        roots.set_static(s, Some(live));

        let mut collector = Collector::new();
        let gc_index = collector.begin_incremental(&mut heap);
        assert_eq!(gc_index, 1);
        let mut marker = IncrementalMarker::start(&mut heap, &roots, 1, &mut TraceAll);
        while !marker.quantum(&mut heap, &mut TraceAll).done {}
        marker.flush(&mut heap, &roots, &mut TraceAll);
        let outcome = collector.finish_incremental(
            &mut heap,
            gc_index,
            marker.stats(),
            Duration::from_micros(7),
            marker.quanta(),
            marker.budget_overruns(),
        );

        assert_eq!(outcome.gc_index, Some(1));
        assert_eq!(outcome.kind, CollectionKind::IncrementalFull);
        assert_eq!(outcome.swept.freed_objects, 1);
        assert_eq!(outcome.trace.objects_marked, 2);
        assert_eq!(collector.collections(), 1);
        assert_eq!(collector.stats().incremental_cycles(), 1);
        assert_eq!(collector.stats().mark_quanta(), marker.quanta());

        let spans: Vec<_> = telemetry
            .recorder_snapshot()
            .into_iter()
            .filter_map(|line| match line.event {
                Event::PhaseBegin { gc_index, phase } => Some((gc_index, phase, false)),
                Event::PhaseEnd {
                    gc_index, phase, ..
                } => Some((gc_index, phase, true)),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                (1, GcPhase::Mark, false),
                (1, GcPhase::Mark, true),
                (1, GcPhase::Sweep, false),
                (1, GcPhase::Sweep, true),
            ]
        );

        // The next stop-the-world collection continues the numbering.
        let next = collector.collect(&mut heap, &roots, &mut TraceAll);
        assert_eq!(next.gc_index, Some(2));
    }

    #[test]
    fn stats_track_multiple_collections() {
        let (mut heap, roots, cls) = setup();
        let mut collector = Collector::new();
        for _ in 0..3 {
            heap.alloc(cls, &AllocSpec::leaf(10)).unwrap();
            collector.collect(&mut heap, &roots, &mut TraceAll);
        }
        assert_eq!(collector.stats().collections(), 3);
        assert_eq!(collector.stats().total_freed_objects(), 3);
    }
}
