//! Post-collection reachability verification.
//!
//! [`Heap::verify`](lp_heap::Heap::verify) checks the slab's *structural*
//! invariants, which hold at any quiescent point. This module adds the one
//! check that is only meaningful immediately after a full collection: the
//! live set must be exactly the set reachable from the roots (skipping
//! poisoned references, which the closure never traces through), and every
//! survivor must carry the collection's mark.
//!
//! The walk here deliberately recomputes reachability with a local visited
//! set instead of reusing [`Heap::try_mark`]: the sanitizer must be
//! read-only, and `try_mark` would perturb the per-chunk mark counters it
//! is supposed to be checking.

use std::collections::HashSet;

use lp_heap::{Heap, RootSet, Violation};

/// Violation kind: the post-collection live set disagrees with a fresh
/// root-reachability recomputation, or a survivor is unmarked — floating
/// garbage survived the sweep, a reachable object was reclaimed, or the
/// mark state was corrupted between trace and sweep.
pub const MARK_CONSISTENCY: &str = "mark-consistency";

/// Checks that the heap's live set is exactly what a full collection should
/// have retained: the transitive closure of the roots over non-poisoned
/// references, every member marked in the heap's current epoch.
///
/// Only valid *immediately after a full collection* — before the mutator
/// allocates (new objects are live but unreachable until stored into the
/// graph) and before a new mark epoch begins. Minor collections do not
/// establish this invariant (old objects survive unexamined); the runtime
/// only runs this check after full collections.
///
/// The walk is read-only; violations are returned, never panicked on.
pub fn verify_post_collection(heap: &Heap, roots: &RootSet) -> Vec<Violation> {
    verify_with(heap, roots, false)
}

/// [`verify_post_collection`] for collections whose mark phase ran
/// incrementally.
///
/// An incremental cycle legitimately retains *floating garbage*: objects
/// reachable at the snapshot (or allocated during the cycle) that became
/// unreachable before the final flush. They are all marked — the SATB
/// closure marked them — so this variant keeps the stale-root and
/// unmarked-survivor checks but skips the exact-reachability check. The
/// next stop-the-world collection reclaims the float, and the strict check
/// applies there again.
pub fn verify_post_incremental_collection(heap: &Heap, roots: &RootSet) -> Vec<Violation> {
    verify_with(heap, roots, true)
}

fn verify_with(heap: &Heap, roots: &RootSet, allow_floating: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut stack: Vec<u32> = Vec::new();

    for root in roots.iter() {
        if !heap.contains(root) {
            violations.push(Violation::new(
                MARK_CONSISTENCY,
                format!(
                    "root designates reclaimed slot {} — a collection must \
                     retain everything the roots reach",
                    root.slot()
                ),
            ));
            continue;
        }
        if visited.insert(root.slot()) {
            stack.push(root.slot());
        }
    }

    while let Some(slot) = stack.pop() {
        let Some(object) = heap.object_by_slot(slot) else {
            continue;
        };
        for (_field, reference) in object.iter_refs() {
            if reference.is_poisoned() {
                continue; // pruned edges are not traced (§4.3)
            }
            if let Some(target) = reference.slot() {
                // A non-poisoned reference to an empty slot is a structural
                // violation `Heap::verify` already reports; skip it here.
                if heap.object_by_slot(target).is_some() && visited.insert(target) {
                    stack.push(target);
                }
            }
        }
    }

    for (slot, _object) in heap.iter() {
        if !allow_floating && !visited.contains(&slot) {
            violations.push(Violation::new(
                MARK_CONSISTENCY,
                format!(
                    "live slot {slot} is not reachable from the roots — \
                     floating garbage survived the sweep"
                ),
            ));
        }
        if !heap.is_marked(slot) {
            violations.push(Violation::new(
                MARK_CONSISTENCY,
                format!("live slot {slot} is not marked in the collection's epoch"),
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{trace, EdgeAction, EdgeVisitor, TraceAll};
    use lp_heap::{AllocSpec, ClassRegistry, Heap, Object, RootSet, TaggedRef};

    /// The pruning closures' edge policy: never trace through poison.
    struct SkipPoisoned;

    impl EdgeVisitor for SkipPoisoned {
        fn visit_edge(
            &mut self,
            _heap: &Heap,
            _src_slot: u32,
            _src: &Object,
            _field: usize,
            reference: TaggedRef,
        ) -> EdgeAction {
            if reference.is_poisoned() {
                EdgeAction::Skip
            } else {
                EdgeAction::Trace
            }
        }
    }

    fn setup() -> (Heap, RootSet, lp_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        (Heap::new(1 << 20), RootSet::new(), cls)
    }

    fn kinds(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.kind).collect()
    }

    #[test]
    fn clean_collection_verifies() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        heap.alloc(cls, &AllocSpec::leaf(0)).unwrap(); // garbage
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        heap.begin_mark_epoch();
        trace(&heap, roots.iter(), &mut TraceAll);
        heap.sweep();
        assert_eq!(verify_post_collection(&heap, &roots), Vec::new());
        assert_eq!(heap.verify(), Vec::new());
    }

    #[test]
    fn poisoned_edges_do_not_extend_reachability() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        heap.object(a)
            .store_ref(0, TaggedRef::from_handle(b).with_poison());
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        // A pruning collection skips the poisoned edge, so b dies.
        heap.begin_mark_epoch();
        trace(&heap, roots.iter(), &mut SkipPoisoned);
        heap.sweep();
        assert!(!heap.contains(b));
        assert_eq!(verify_post_collection(&heap, &roots), Vec::new());
    }

    #[test]
    fn floating_garbage_is_reported() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        heap.begin_mark_epoch();
        trace(&heap, roots.iter(), &mut TraceAll);
        // Spuriously mark the unreachable object so the sweep retains it.
        heap.try_mark(b.slot());
        heap.sweep();
        assert_eq!(
            kinds(&verify_post_collection(&heap, &roots)),
            vec![MARK_CONSISTENCY]
        );
    }

    #[test]
    fn unmarked_survivors_are_reported() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        heap.begin_mark_epoch();
        trace(&heap, roots.iter(), &mut TraceAll);
        heap.sweep();
        // A fresh epoch clears the marks without collecting: every survivor
        // is now live-but-unmarked, which the check must flag.
        heap.begin_mark_epoch();
        assert_eq!(
            kinds(&verify_post_collection(&heap, &roots)),
            vec![MARK_CONSISTENCY]
        );
    }

    #[test]
    fn stale_root_is_reported() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        // Collect *without* the root: a dies while the static still holds
        // its handle.
        heap.begin_mark_epoch();
        heap.sweep();
        let found = verify_post_collection(&heap, &roots);
        assert_eq!(kinds(&found), vec![MARK_CONSISTENCY]);
        assert!(found[0].detail.contains("reclaimed"));
    }

    #[test]
    fn incremental_variant_tolerates_marked_float_but_not_unmarked_or_stale() {
        let (mut heap, mut roots, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        let float = heap.alloc(cls, &AllocSpec::leaf(0)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(a));

        // An incremental cycle's outcome: the float was reachable at the
        // snapshot, got marked, then lost its last reference before the
        // flush — marked but unreachable.
        heap.begin_mark_epoch();
        trace(&heap, roots.iter(), &mut TraceAll);
        heap.try_mark(float.slot());
        heap.sweep();
        assert_eq!(
            kinds(&verify_post_collection(&heap, &roots)),
            vec![MARK_CONSISTENCY],
            "the strict check reports the float"
        );
        assert_eq!(
            verify_post_incremental_collection(&heap, &roots),
            Vec::new(),
            "the incremental check accepts marked float"
        );

        // But an unmarked survivor is a bug in both modes...
        heap.begin_mark_epoch();
        assert_eq!(
            kinds(&verify_post_incremental_collection(&heap, &roots)),
            vec![MARK_CONSISTENCY, MARK_CONSISTENCY]
        );
        // ...and so is a root holding a reclaimed handle.
        heap.sweep();
        let found = verify_post_incremental_collection(&heap, &roots);
        assert_eq!(kinds(&found), vec![MARK_CONSISTENCY]);
        assert!(found[0].detail.contains("reclaimed"));
    }
}
