//! Stop-the-world tracing mark-sweep collection over [`lp_heap`].
//!
//! The paper implements leak pruning inside MMTk's parallel stop-the-world
//! generational mark-sweep collector, piggybacking on the collector's
//! transitive closure (§4.5). This crate provides that substrate:
//!
//! * [`trace`] — a transitive closure from a set of roots, parameterized by
//!   an [`EdgeVisitor`] that classifies every object-to-object reference
//!   (trace through it, or skip it) and may rewrite the field word (to set
//!   the unlogged bit, or to poison the reference). Leak pruning's in-use
//!   and stale closures are both instances of this one primitive.
//! * [`par_trace`] — the same closure run by multiple marker threads with
//!   crossbeam work-stealing deques, mirroring MMTk's shared-pool parallel
//!   trace.
//! * [`Collector`] — a mark-sweep driver that runs a closure, sweeps, and
//!   accumulates timing statistics (used to regenerate the paper's GC
//!   overhead figure).
//! * [`collect_minor`] — nursery collections for the generational
//!   configuration, scanning only young objects plus the remembered set.
//! * [`IncrementalMarker`] — the same closure split into bounded quanta
//!   interleaved with mutator work, kept sound by the heap's SATB
//!   (snapshot-at-the-beginning) deleted-reference log and a short final
//!   stop-the-world flush. See [`Collector::begin_incremental`].
//!
//! # Example
//!
//! ```
//! use lp_gc::{Collector, TraceAll};
//! use lp_heap::{AllocSpec, ClassRegistry, Heap, RootSet, TaggedRef};
//!
//! let mut classes = ClassRegistry::new();
//! let cls = classes.register("Node");
//! let mut heap = Heap::new(1 << 20);
//! let mut roots = RootSet::new();
//!
//! let live = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
//! let child = heap.alloc(cls, &AllocSpec::default()).unwrap();
//! heap.object(live).store_ref(0, TaggedRef::from_handle(child));
//! let dead = heap.alloc(cls, &AllocSpec::default()).unwrap();
//!
//! let s = roots.add_static();
//! roots.set_static(s, Some(live));
//!
//! let mut collector = Collector::new();
//! let outcome = collector.collect(&mut heap, &roots, &mut TraceAll);
//! assert_eq!(outcome.swept.freed_objects, 1); // only `dead` is reclaimed
//! assert!(heap.contains(live) && heap.contains(child));
//! assert!(!heap.contains(dead));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod incremental;
mod minor;
mod parallel;
mod stats;
mod tracer;
pub mod verify;

pub use collector::{CollectionKind, CollectionOutcome, Collector};
pub use incremental::{IncrementalMarker, QuantumReport};
pub use minor::collect_minor;
pub use parallel::{par_trace, par_trace_timed, ParEdgeVisitor};
pub use stats::GcStats;
pub use tracer::{trace, EdgeAction, EdgeVisitor, TraceAll, TraceStats};
pub use verify::{verify_post_collection, verify_post_incremental_collection};
