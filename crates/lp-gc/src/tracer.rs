//! The serial transitive closure.

use lp_heap::{Handle, Heap, Object, TaggedRef};

/// What the tracer should do with one object-to-object reference.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeAction {
    /// Mark the target and scan it (if this was the first mark).
    Trace,
    /// Do not trace through this reference. Used for poisoned references
    /// (never dereferenced, §4.3) and for references deferred to leak
    /// pruning's candidate queue during the SELECT state (§4.2).
    Skip,
}

/// Classifies and optionally rewrites each reference the closure scans.
///
/// The visitor sees every non-null reference field of every scanned object
/// exactly once per closure. Because fields are atomic, the visitor can
/// rewrite them in place through the `&Object` it receives — this is how the
/// collector sets the unlogged bit on every reference after a collection and
/// how the PRUNE state poisons selected references.
pub trait EdgeVisitor {
    /// Called for each non-null reference `reference` stored in field
    /// `field` of the object in `src_slot`. Returns whether to trace
    /// through it.
    fn visit_edge(
        &mut self,
        heap: &Heap,
        src_slot: u32,
        src: &Object,
        field: usize,
        reference: TaggedRef,
    ) -> EdgeAction;

    /// Called once per object when it is first marked (roots included).
    fn visit_object(&mut self, heap: &Heap, slot: u32, object: &Object) {
        let _ = (heap, slot, object);
    }
}

/// The trivial visitor of a plain reachability-based collector: trace every
/// reference, rewrite nothing. This is the paper's unmodified "Base"
/// configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceAll;

impl EdgeVisitor for TraceAll {
    fn visit_edge(
        &mut self,
        _heap: &Heap,
        _src_slot: u32,
        _src: &Object,
        _field: usize,
        _reference: TaggedRef,
    ) -> EdgeAction {
        EdgeAction::Trace
    }
}

/// Counters produced by one transitive closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Objects marked (each counted once).
    pub objects_marked: u64,
    /// Total simulated bytes of marked objects — the "reachable memory" the
    /// paper plots in Figures 1 and 9.
    pub bytes_marked: u64,
    /// Non-null reference fields inspected.
    pub edges_visited: u64,
}

impl TraceStats {
    /// Sums two stats, e.g. leak pruning's in-use closure plus its stale
    /// closure.
    pub fn merged(self, other: TraceStats) -> TraceStats {
        TraceStats {
            objects_marked: self.objects_marked + other.objects_marked,
            bytes_marked: self.bytes_marked + other.bytes_marked,
            edges_visited: self.edges_visited + other.edges_visited,
        }
    }
}

/// Runs a transitive closure from `roots`, marking objects in the heap's
/// current mark epoch. The caller must have called
/// [`Heap::begin_mark_epoch`] (directly or via [`Collector`]).
///
/// Already-marked roots are skipped, so the closure composes: leak pruning
/// runs its in-use closure from the program roots, then continues with a
/// second closure from the candidate queue using the same epoch.
///
/// [`Collector`]: crate::Collector
pub fn trace<V: EdgeVisitor + ?Sized>(
    heap: &Heap,
    roots: impl IntoIterator<Item = Handle>,
    visitor: &mut V,
) -> TraceStats {
    let mut stats = TraceStats::default();
    let mut worklist: Vec<u32> = Vec::new();

    for root in roots {
        let slot = root.slot();
        debug_assert!(heap.contains(root), "root points to reclaimed object");
        if heap.try_mark(slot) {
            mark_entered(heap, slot, visitor, &mut stats);
            worklist.push(slot);
        }
    }

    while let Some(slot) = worklist.pop() {
        let object = heap
            .object_by_slot(slot)
            .expect("marked object disappeared during trace");
        for (field, reference) in object.iter_refs() {
            if reference.is_null() {
                continue;
            }
            stats.edges_visited += 1;
            match visitor.visit_edge(heap, slot, object, field, reference) {
                EdgeAction::Skip => {}
                EdgeAction::Trace => {
                    let target = reference.slot().expect("non-null reference has a slot");
                    if heap.try_mark(target) {
                        mark_entered(heap, target, visitor, &mut stats);
                        worklist.push(target);
                    }
                }
            }
        }
    }

    stats
}

fn mark_entered<V: EdgeVisitor + ?Sized>(
    heap: &Heap,
    slot: u32,
    visitor: &mut V,
    stats: &mut TraceStats,
) {
    let object = heap
        .object_by_slot(slot)
        .expect("traced reference points to reclaimed object");
    stats.objects_marked += 1;
    stats.bytes_marked += u64::from(object.footprint());
    visitor.visit_object(heap, slot, object);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_heap::{AllocSpec, ClassRegistry, Heap};

    fn setup() -> (Heap, lp_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        (Heap::new(1 << 20), cls)
    }

    #[test]
    fn traces_transitively() {
        let (mut heap, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let c = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        heap.object(b).store_ref(0, TaggedRef::from_handle(c));

        heap.begin_mark_epoch();
        let stats = trace(&heap, [a], &mut TraceAll);
        assert_eq!(stats.objects_marked, 3);
        assert_eq!(stats.edges_visited, 2);
        assert!(heap.is_marked(c.slot()));
    }

    #[test]
    fn handles_cycles() {
        let (mut heap, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        heap.object(b).store_ref(0, TaggedRef::from_handle(a));

        heap.begin_mark_epoch();
        let stats = trace(&heap, [a], &mut TraceAll);
        assert_eq!(stats.objects_marked, 2);
    }

    #[test]
    fn skip_prevents_marking() {
        struct SkipAll;
        impl EdgeVisitor for SkipAll {
            fn visit_edge(
                &mut self,
                _: &Heap,
                _: u32,
                _: &Object,
                _: usize,
                _: TaggedRef,
            ) -> EdgeAction {
                EdgeAction::Skip
            }
        }

        let (mut heap, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));

        heap.begin_mark_epoch();
        let stats = trace(&heap, [a], &mut SkipAll);
        assert_eq!(stats.objects_marked, 1);
        assert!(!heap.is_marked(b.slot()));
    }

    #[test]
    fn composed_closures_share_epoch() {
        let (mut heap, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::default()).unwrap();
        let b = heap.alloc(cls, &AllocSpec::default()).unwrap();

        heap.begin_mark_epoch();
        let s1 = trace(&heap, [a], &mut TraceAll);
        let s2 = trace(&heap, [a, b], &mut TraceAll);
        assert_eq!(s1.objects_marked, 1);
        assert_eq!(s2.objects_marked, 1, "a already marked; only b is new");
        let merged = s1.merged(s2);
        assert_eq!(merged.objects_marked, 2);
    }

    #[test]
    fn visitor_sees_every_edge_once() {
        struct Count(u64);
        impl EdgeVisitor for Count {
            fn visit_edge(
                &mut self,
                _: &Heap,
                _: u32,
                _: &Object,
                _: usize,
                _: TaggedRef,
            ) -> EdgeAction {
                self.0 += 1;
                EdgeAction::Trace
            }
        }
        let (mut heap, cls) = setup();
        let a = heap.alloc(cls, &AllocSpec::with_refs(2)).unwrap();
        let b = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(a).store_ref(0, TaggedRef::from_handle(b));
        heap.object(a).store_ref(1, TaggedRef::from_handle(b));

        heap.begin_mark_epoch();
        let mut v = Count(0);
        trace(&heap, [a], &mut v);
        assert_eq!(v.0, 2, "both fields visited even though target repeats");
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::parallel::par_trace;
    use lp_heap::{AllocSpec, ClassRegistry, Heap};
    use proptest::prelude::*;

    /// Builds a heap with `n` objects and the given edge list, returning
    /// the handles.
    fn build_graph(n: usize, edges: &[(usize, usize)]) -> (Heap, Vec<Handle>) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        let mut heap = Heap::new(1 << 26);
        let out_degree = |i: usize| edges.iter().filter(|(s, _)| *s == i).count() as u32;
        let handles: Vec<Handle> = (0..n)
            .map(|i| {
                heap.alloc(cls, &AllocSpec::with_refs(out_degree(i).max(1)))
                    .unwrap()
            })
            .collect();
        let mut next_field = vec![0usize; n];
        for (src, tgt) in edges {
            let field = next_field[*src];
            next_field[*src] += 1;
            heap.object(handles[*src])
                .store_ref(field, TaggedRef::from_handle(handles[*tgt]));
        }
        (heap, handles)
    }

    /// Reference reachability on the host.
    fn reachable(n: usize, edges: &[(usize, usize)], roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            for (s, t) in edges {
                if *s == i && !seen[*t] {
                    stack.push(*t);
                }
            }
        }
        seen
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The tracer marks exactly the host-computed reachable set, and
        /// the parallel tracer agrees with the serial one.
        #[test]
        fn prop_trace_matches_reference_reachability(
            n in 2usize..40,
            edge_seeds in proptest::collection::vec((0usize..40, 0usize..40), 0..120),
            root_seeds in proptest::collection::vec(0usize..40, 1..5),
        ) {
            let edges: Vec<(usize, usize)> =
                edge_seeds.iter().map(|(s, t)| (s % n, t % n)).collect();
            let roots: Vec<usize> = {
                let mut r: Vec<usize> = root_seeds.iter().map(|r| r % n).collect();
                r.sort_unstable();
                r.dedup();
                r
            };
            let (mut heap, handles) = build_graph(n, &edges);
            let expect = reachable(n, &edges, &roots);

            heap.begin_mark_epoch();
            let root_handles: Vec<Handle> = roots.iter().map(|i| handles[*i]).collect();
            let serial = trace(&heap, root_handles.iter().copied(), &mut TraceAll);
            for (i, h) in handles.iter().enumerate() {
                prop_assert_eq!(heap.is_marked(h.slot()), expect[i], "object {}", i);
            }

            heap.begin_mark_epoch();
            let parallel = par_trace(&heap, &root_handles, &TraceAll, 3);
            prop_assert_eq!(serial.objects_marked, parallel.objects_marked);
            prop_assert_eq!(serial.bytes_marked, parallel.bytes_marked);

            // And the sweep retains exactly the reachable set.
            heap.begin_mark_epoch();
            trace(&heap, root_handles.iter().copied(), &mut TraceAll);
            heap.sweep();
            for (i, h) in handles.iter().enumerate() {
                prop_assert_eq!(heap.contains(*h), expect[i], "post-sweep object {}", i);
            }
        }
    }
}
