//! Parallel marking with work-stealing deques.
//!
//! Mirrors MMTk's parallel trace (§4.5 of the paper): marker threads share a
//! pool of work, steal from each other to balance load, and rely on the
//! heap's atomic mark words so each object is processed exactly once.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use lp_heap::{Handle, Heap, Object, TaggedRef};
use parking_lot::Mutex;

use crate::tracer::{EdgeAction, TraceStats};

/// A thread-safe [`EdgeVisitor`](crate::EdgeVisitor) counterpart for
/// parallel marking. Implementations must be safe to call from multiple
/// marker threads; the paper's edge-table updates tolerate races the same
/// way (§4.5).
pub trait ParEdgeVisitor: Sync {
    /// Classifies one non-null reference; may rewrite the field through the
    /// atomic `src` object.
    fn visit_edge(
        &self,
        heap: &Heap,
        src_slot: u32,
        src: &Object,
        field: usize,
        reference: TaggedRef,
    ) -> EdgeAction;

    /// Called once per object when it is first marked.
    fn visit_object(&self, heap: &Heap, slot: u32, object: &Object) {
        let _ = (heap, slot, object);
    }
}

/// Trace everything, in parallel. The parallel analogue of
/// [`TraceAll`](crate::TraceAll).
impl ParEdgeVisitor for crate::tracer::TraceAll {
    fn visit_edge(
        &self,
        _heap: &Heap,
        _src_slot: u32,
        _src: &Object,
        _field: usize,
        _reference: TaggedRef,
    ) -> EdgeAction {
        EdgeAction::Trace
    }
}

#[derive(Default)]
struct SharedStats {
    objects: AtomicU64,
    bytes: AtomicU64,
    edges: AtomicU64,
}

impl SharedStats {
    fn merge(&self, local: &TraceStats) {
        self.objects
            .fetch_add(local.objects_marked, Ordering::Relaxed);
        self.bytes.fetch_add(local.bytes_marked, Ordering::Relaxed);
        self.edges.fetch_add(local.edges_visited, Ordering::Relaxed);
    }
}

/// Runs a transitive closure from `roots` using `threads` marker threads.
///
/// Semantically identical to [`trace`](crate::trace) with the same visitor
/// logic: every reachable object is marked exactly once and every non-null
/// edge of a scanned object is visited once. Work distribution (and
/// therefore edge visit order) is nondeterministic.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn par_trace<V: ParEdgeVisitor>(
    heap: &Heap,
    roots: &[Handle],
    visitor: &V,
    threads: usize,
) -> TraceStats {
    par_trace_timed(heap, roots, visitor, threads).0
}

/// [`par_trace`], additionally reporting each marker thread's busy time
/// (root scanning is attributed to the calling thread and not included).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn par_trace_timed<V: ParEdgeVisitor>(
    heap: &Heap,
    roots: &[Handle],
    visitor: &V,
    threads: usize,
) -> (TraceStats, Vec<Duration>) {
    assert!(threads > 0, "need at least one marker thread");

    let injector: Injector<u32> = Injector::new();
    // Termination protocol: a worker that finds no work anywhere declares
    // itself idle; the closure is complete when every worker is idle and
    // every queue is empty (work is only ever produced by non-idle
    // workers). This costs nothing on the per-object hot path — a shared
    // in-flight counter would be the dominant contention point on
    // pointer-chase graphs.
    let idle_workers = AtomicUsize::new(0);
    let stats = SharedStats::default();

    let mut root_stats = TraceStats::default();
    for root in roots {
        let slot = root.slot();
        debug_assert!(heap.contains(*root), "root points to reclaimed object");
        if heap.try_mark(slot) {
            enter_object(heap, slot, visitor, &mut root_stats);
            injector.push(slot);
        }
    }
    stats.merge(&root_stats);

    let workers: Vec<Worker<u32>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = workers.iter().map(Worker::stealer).collect();

    // Indexed per-thread busy times, written once per worker at exit.
    let thread_times: Mutex<Vec<Duration>> = Mutex::new(vec![Duration::ZERO; threads]);

    std::thread::scope(|scope| {
        for (index, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let idle_workers = &idle_workers;
            let stats = &stats;
            let thread_times = &thread_times;
            scope.spawn(move || {
                let start = Instant::now();
                run_worker(
                    heap,
                    visitor,
                    worker,
                    injector,
                    stealers,
                    idle_workers,
                    threads,
                    stats,
                );
                thread_times.lock()[index] = start.elapsed();
            });
        }
    });

    (
        TraceStats {
            objects_marked: stats.objects.load(Ordering::Relaxed),
            bytes_marked: stats.bytes.load(Ordering::Relaxed),
            edges_visited: stats.edges.load(Ordering::Relaxed),
        },
        thread_times.into_inner(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_worker<V: ParEdgeVisitor>(
    heap: &Heap,
    visitor: &V,
    worker: Worker<u32>,
    injector: &Injector<u32>,
    stealers: &[Stealer<u32>],
    idle_workers: &AtomicUsize,
    threads: usize,
    stats: &SharedStats,
) {
    // Statistics accumulate thread-locally and merge once at the end —
    // per-object shared-counter traffic would dominate pointer-chase
    // graphs.
    let mut local = TraceStats::default();
    'work: loop {
        if let Some(slot) = find_work(&worker, injector, stealers) {
            scan_object(heap, slot, visitor, &worker, &mut local);
            continue;
        }

        // Nothing anywhere: declare idle and wait for either new work to
        // appear or everyone to agree the closure is done.
        idle_workers.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            let queues_empty = injector.is_empty() && stealers.iter().all(Stealer::is_empty);
            if !queues_empty {
                idle_workers.fetch_sub(1, Ordering::AcqRel);
                continue 'work;
            }
            if idle_workers.load(Ordering::Acquire) == threads {
                // Every worker is idle and every queue is empty: since
                // only non-idle workers produce work, none can appear.
                break 'work;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
    stats.merge(&local);
}

fn find_work(
    worker: &Worker<u32>,
    injector: &Injector<u32>,
    stealers: &[Stealer<u32>],
) -> Option<u32> {
    if let Some(slot) = worker.pop() {
        return Some(slot);
    }
    loop {
        match injector.steal_batch_and_pop(worker) {
            Steal::Success(slot) => return Some(slot),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for stealer in stealers {
        loop {
            // Steal a batch, not a single item: it halves the victim's
            // deque once instead of contending on it per object.
            match stealer.steal_batch_and_pop(worker) {
                Steal::Success(slot) => return Some(slot),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn scan_object<V: ParEdgeVisitor>(
    heap: &Heap,
    slot: u32,
    visitor: &V,
    worker: &Worker<u32>,
    local: &mut TraceStats,
) {
    let object = heap
        .object_by_slot(slot)
        .expect("marked object disappeared during trace");
    for (field, reference) in object.iter_refs() {
        if reference.is_null() {
            continue;
        }
        local.edges_visited += 1;
        match visitor.visit_edge(heap, slot, object, field, reference) {
            EdgeAction::Skip => {}
            EdgeAction::Trace => {
                let target = reference.slot().expect("non-null reference has a slot");
                if heap.try_mark(target) {
                    enter_object(heap, target, visitor, local);
                    worker.push(target);
                }
            }
        }
    }
}

fn enter_object<V: ParEdgeVisitor>(heap: &Heap, slot: u32, visitor: &V, local: &mut TraceStats) {
    let object = heap
        .object_by_slot(slot)
        .expect("traced reference points to reclaimed object");
    local.objects_marked += 1;
    local.bytes_marked += u64::from(object.footprint());
    visitor.visit_object(heap, slot, object);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{trace, TraceAll};
    use lp_heap::{AllocSpec, ClassRegistry, Heap};

    /// Builds a wide tree so multiple threads have real work.
    fn build_tree(heap: &mut Heap, cls: lp_heap::ClassId, depth: u32, fanout: u32) -> Handle {
        let root = heap
            .alloc(cls, &AllocSpec::with_refs(fanout))
            .expect("alloc");
        if depth > 0 {
            for i in 0..fanout {
                let child = build_tree(heap, cls, depth - 1, fanout);
                heap.object(root)
                    .store_ref(i as usize, TaggedRef::from_handle(child));
            }
        }
        root
    }

    #[test]
    fn parallel_matches_serial() {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        let mut heap = Heap::new(1 << 24);
        let root = build_tree(&mut heap, cls, 6, 4);

        heap.begin_mark_epoch();
        let serial = trace(&heap, [root], &mut TraceAll);

        heap.begin_mark_epoch();
        let parallel = par_trace(&heap, &[root], &TraceAll, 4);

        assert_eq!(serial.objects_marked, parallel.objects_marked);
        assert_eq!(serial.bytes_marked, parallel.bytes_marked);
        assert_eq!(serial.edges_visited, parallel.edges_visited);
    }

    #[test]
    fn single_thread_parallel_works() {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        let mut heap = Heap::new(1 << 20);
        let root = build_tree(&mut heap, cls, 3, 3);

        heap.begin_mark_epoch();
        let stats = par_trace(&heap, &[root], &TraceAll, 1);
        assert!(stats.objects_marked > 1);
    }

    #[test]
    fn empty_roots_mark_nothing() {
        let heap = Heap::new(1024);
        let stats = par_trace(&heap, &[], &TraceAll, 2);
        assert_eq!(stats.objects_marked, 0);
    }

    #[test]
    fn shared_subtrees_marked_once() {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        let mut heap = Heap::new(1 << 20);
        let shared = heap.alloc(cls, &AllocSpec::default()).unwrap();
        let mut roots = Vec::new();
        for _ in 0..8 {
            let r = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
            heap.object(r).store_ref(0, TaggedRef::from_handle(shared));
            roots.push(r);
        }
        heap.begin_mark_epoch();
        let stats = par_trace(&heap, &roots, &TraceAll, 4);
        assert_eq!(stats.objects_marked, 9);
        assert_eq!(stats.edges_visited, 8);
    }
}
