//! Minor (nursery) collections for the generational configuration.
//!
//! The paper's substrate is a generational mark-sweep collector; leak
//! pruning piggybacks only on *full-heap* collections, with nursery
//! collections running unmodified in between. A minor collection:
//!
//! * traces from the program roots and from the remembered set (old
//!   objects into which the mutator stored young references), but scans
//!   **only nursery objects** — reaching an old object stops the walk
//!   (its young referents, if any, are covered by the remembered set);
//! * sweeps only the nursery, promoting the survivors in place.
//!
//! Minor collections do not tick staleness, set unlogged bits, or prune:
//! all leak-pruning work is full-heap work, exactly as in the paper.

use std::time::Instant;

use lp_heap::{Heap, RootSet};

use crate::collector::{CollectionKind, CollectionOutcome};
use crate::tracer::TraceStats;

/// Runs a minor collection: marks reachable nursery objects from the
/// program roots plus the remembered set, then sweeps the nursery.
///
/// Returns an outcome whose `gc_index` is `None` and whose `kind` is
/// [`CollectionKind::Minor`] — minor collections do not advance the
/// full-heap collection numbering that drives staleness, and telemetry
/// consumers must never attribute them to a numbered full collection.
pub fn collect_minor(heap: &mut Heap, roots: &RootSet) -> CollectionOutcome {
    heap.begin_mark_epoch();

    let mark_start = Instant::now();
    let mut stats = TraceStats::default();
    let mut worklist: Vec<u32> = Vec::new();

    // Program roots: only young targets are interesting.
    for root in roots.iter() {
        enqueue_if_young(heap, root.slot(), &mut worklist, &mut stats);
    }
    // Remembered set: scan the old sources' fields for young targets. The
    // old objects themselves are not marked (a minor collection proves
    // nothing about them) — only scanned.
    let remembered: Vec<u32> = heap.remembered_slots().to_vec();
    for slot in remembered {
        scan_fields(heap, slot, &mut worklist, &mut stats);
    }

    while let Some(slot) = worklist.pop() {
        scan_fields(heap, slot, &mut worklist, &mut stats);
    }
    let mark_time = mark_start.elapsed();

    let sweep_start = Instant::now();
    let swept = heap.sweep_young();
    let sweep_time = sweep_start.elapsed();

    CollectionOutcome {
        gc_index: None,
        kind: CollectionKind::Minor,
        trace: stats,
        swept,
        live_bytes_after: heap.used_bytes(),
        live_objects_after: heap.live_objects(),
        mark_time,
        sweep_time,
        mark_thread_times: vec![mark_time],
        sweep_thread_times: vec![sweep_time],
    }
}

fn enqueue_if_young(heap: &Heap, slot: u32, worklist: &mut Vec<u32>, stats: &mut TraceStats) {
    if heap.is_young(slot) && heap.try_mark(slot) {
        let object = heap.object_by_slot(slot).expect("young slot is live");
        stats.objects_marked += 1;
        stats.bytes_marked += u64::from(object.footprint());
        worklist.push(slot);
    }
}

fn scan_fields(heap: &Heap, slot: u32, worklist: &mut Vec<u32>, stats: &mut TraceStats) {
    let Some(object) = heap.object_by_slot(slot) else {
        return; // a remembered slot whose object died in a prior full GC
    };
    for (_, reference) in object.iter_refs() {
        if reference.is_null() || reference.is_poisoned() {
            continue;
        }
        stats.edges_visited += 1;
        let target = reference.slot().expect("non-null");
        enqueue_if_young(heap, target, worklist, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_heap::{AllocSpec, ClassRegistry, Handle, TaggedRef};

    fn setup() -> (Heap, RootSet, lp_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let cls = reg.register("T");
        (Heap::new(1 << 20), RootSet::new(), cls)
    }

    /// Promotes everything currently in the heap by running a full-style
    /// epoch + sweep with everything marked.
    fn promote_all(heap: &mut Heap) {
        heap.begin_mark_epoch();
        let slots: Vec<u32> = heap.iter().map(|(s, _)| s).collect();
        for s in slots {
            heap.try_mark(s);
        }
        heap.sweep();
        assert_eq!(heap.young_objects(), 0);
    }

    #[test]
    fn minor_collects_dead_young_only() {
        let (mut heap, mut roots, cls) = setup();
        let old = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(old));
        promote_all(&mut heap);

        let live_young = heap.alloc(cls, &AllocSpec::default()).unwrap();
        let dead_young = heap.alloc(cls, &AllocSpec::leaf(64)).unwrap();
        let s2 = roots.add_static();
        roots.set_static(s2, Some(live_young));

        let outcome = collect_minor(&mut heap, &roots);
        assert_eq!(outcome.swept.freed_objects, 1);
        assert!(heap.contains(old), "old generation untouched");
        assert!(heap.contains(live_young));
        assert!(!heap.contains(dead_young));
        assert_eq!(heap.young_objects(), 0, "survivors promoted");
    }

    #[test]
    fn remembered_set_keeps_young_alive() {
        let (mut heap, mut roots, cls) = setup();
        let old = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(old));
        promote_all(&mut heap);

        // Young object reachable ONLY through the old object.
        let young = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(old).store_ref(0, TaggedRef::from_handle(young));
        heap.note_old_to_young(old.slot());

        collect_minor(&mut heap, &roots);
        assert!(heap.contains(young), "remembered set saved it");
    }

    #[test]
    fn missing_write_barrier_would_lose_young_objects() {
        // The negative control for the test above: without the remembered
        // set entry, an old->young reference does not keep the young
        // object alive across a minor collection.
        let (mut heap, mut roots, cls) = setup();
        let old = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let s = roots.add_static();
        roots.set_static(s, Some(old));
        promote_all(&mut heap);

        let young = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(old).store_ref(0, TaggedRef::from_handle(young));
        // no note_old_to_young!

        collect_minor(&mut heap, &roots);
        assert!(!heap.contains(young));
    }

    #[test]
    fn minor_trace_does_not_scan_old_objects() {
        let (mut heap, mut roots, cls) = setup();
        // Root -> old -> old2 -> young: the young object is unreachable to
        // a minor collection (no remembered entry) even though a full
        // trace would find it — minor tracing stops at old objects.
        let old = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        let old2 = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
        heap.object(old).store_ref(0, TaggedRef::from_handle(old2));
        let s = roots.add_static();
        roots.set_static(s, Some(old));
        promote_all(&mut heap);

        let young = heap.alloc(cls, &AllocSpec::default()).unwrap();
        heap.object(old2)
            .store_ref(0, TaggedRef::from_handle(young));
        // An unsound mutator that skipped the write barrier: the minor
        // collection must still terminate without scanning the old chain.
        let outcome = collect_minor(&mut heap, &roots);
        assert_eq!(outcome.trace.objects_marked, 0);
        assert!(!heap.contains(young));
    }

    #[test]
    fn chains_of_young_objects_survive_via_one_root() {
        let (mut heap, mut roots, cls) = setup();
        let mut prev: Option<Handle> = None;
        for _ in 0..10 {
            let n = heap.alloc(cls, &AllocSpec::with_refs(1)).unwrap();
            if let Some(p) = prev {
                heap.object(n).store_ref(0, TaggedRef::from_handle(p));
            }
            prev = Some(n);
        }
        let s = roots.add_static();
        roots.set_static(s, prev);
        let outcome = collect_minor(&mut heap, &roots);
        assert_eq!(outcome.trace.objects_marked, 10);
        assert_eq!(outcome.swept.freed_objects, 0);
    }
}
