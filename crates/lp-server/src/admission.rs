//! Admission control: bounded queues, typed rejection, live counters.
//!
//! Every tenant fronts its worker with a bounded queue. Arrivals that
//! don't fit — or that target a quarantined tenant — are shed
//! immediately with a typed [`RejectReason`] instead of growing an
//! unbounded backlog, so one leaky tenant's latency never propagates to
//! the host. [`TenantCounters`] are plain atomics shared with the ops
//! plane, so `/tenants` and `/metrics` read live values without stopping
//! the round loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};

/// Why an arrival was shed instead of admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's bounded admission queue was full.
    QueueFull,
    /// The tenant is quarantined by the arbiter and not accepting work.
    Quarantined,
}

impl RejectReason {
    /// Stable label used in metrics and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::Quarantined => "quarantined",
        }
    }
}

/// Live admission counters for one tenant, shared between the round
/// loop, the worker thread, and the ops plane.
#[derive(Debug, Default)]
pub struct TenantCounters {
    admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_quarantined: AtomicU64,
    processed: AtomicU64,
}

impl TenantCounters {
    /// A zeroed counter block.
    pub fn new() -> TenantCounters {
        TenantCounters::default()
    }

    /// Requests accepted into the queue so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed because the queue was full.
    pub fn shed_queue_full(&self) -> u64 {
        self.shed_queue_full.load(Ordering::Relaxed)
    }

    /// Requests shed because the tenant was quarantined.
    pub fn shed_quarantined(&self) -> u64 {
        self.shed_quarantined.load(Ordering::Relaxed)
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full() + self.shed_quarantined()
    }

    /// Requests the worker has finished handling.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Admitted but not yet processed — the live queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.admitted().saturating_sub(self.processed())
    }

    pub(crate) fn note_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shed(&self, reason: RejectReason) {
        match reason {
            RejectReason::QueueFull => &self.shed_queue_full,
            RejectReason::Quarantined => &self.shed_quarantined,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_processed(&self) {
        self.processed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Offers one arrival to `queue`, updating `counters`. Quarantined
/// tenants shed without touching the queue. Returns the shed reason, or
/// `None` when the request was admitted.
pub(crate) fn offer(
    queue: &SyncSender<()>,
    counters: &TenantCounters,
    quarantined: bool,
) -> Option<RejectReason> {
    if quarantined {
        counters.note_shed(RejectReason::Quarantined);
        return Some(RejectReason::Quarantined);
    }
    match queue.try_send(()) {
        Ok(()) => {
            counters.note_admitted();
            None
        }
        Err(TrySendError::Full(())) | Err(TrySendError::Disconnected(())) => {
            counters.note_shed(RejectReason::QueueFull);
            Some(RejectReason::QueueFull)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn offers_admit_until_the_queue_fills_then_shed() {
        let (tx, _rx) = sync_channel(2);
        let counters = TenantCounters::new();
        assert_eq!(offer(&tx, &counters, false), None);
        assert_eq!(offer(&tx, &counters, false), None);
        assert_eq!(offer(&tx, &counters, false), Some(RejectReason::QueueFull));
        assert_eq!(counters.admitted(), 2);
        assert_eq!(counters.shed_queue_full(), 1);
        assert_eq!(counters.queue_depth(), 2);
    }

    #[test]
    fn quarantine_sheds_without_consuming_queue_space() {
        let (tx, _rx) = sync_channel(1);
        let counters = TenantCounters::new();
        assert_eq!(offer(&tx, &counters, true), Some(RejectReason::Quarantined));
        assert_eq!(counters.admitted(), 0);
        assert_eq!(counters.shed_quarantined(), 1);
        // The slot is still free for when quarantine lifts.
        assert_eq!(offer(&tx, &counters, false), None);
    }

    #[test]
    fn reject_tags_are_stable() {
        assert_eq!(RejectReason::QueueFull.tag(), "queue_full");
        assert_eq!(RejectReason::Quarantined.tag(), "quarantined");
    }
}
