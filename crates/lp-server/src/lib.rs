//! A multi-tenant serving host for leak-pruning runtimes.
//!
//! The leak-pruning paper (§6) argues the technique's payoff is highest
//! in *server* settings: long-lived processes whose slow leaks
//! eventually kill them, where bounded-time remediation (prune the leak,
//! keep serving) beats a crash. This crate builds that setting. A
//! [`Host`] runs N isolated [`leak_pruning::Runtime`] tenants, each on
//! its own worker thread with its own heap and
//! [`lp_workloads::Service`], and wraps them in the three things a real
//! multi-tenant deployment adds:
//!
//! - a **global memory arbiter** ([`arbiter`]) that holds the fleet's
//!   aggregate live bytes under a host-wide limit — forcing collections
//!   above a high-water mark, escalating to leak pruning on exhaustion,
//!   and quarantining tenants that prune repeatedly;
//! - **admission control** ([`admission`]) — a bounded queue per tenant
//!   fed by a deterministic open-loop load generator ([`loadgen`]),
//!   shedding excess arrivals with typed [`RejectReason`]s instead of
//!   queueing without bound;
//! - a **wire-visible ops plane** ([`ops`]) — `GET /healthz`,
//!   `GET /metrics` (every tenant's runtime metrics merged under a
//!   `tenant` label) and `GET /tenants` over plain HTTP/1.1, plus
//!   `POST /inject` for external load generators.
//!
//! Everything is dependency-free (std plus the workspace's own crates),
//! and the round loop is a lockstep barrier, so a fixed seed yields
//! byte-identical admission, shedding and pruning counts across runs —
//! even though tenants are real threads.
//!
//! # Example
//!
//! ```
//! use lp_server::{Host, HostConfig, TenantSpec};
//! use lp_workloads::HealthyService;
//!
//! let cfg = HostConfig::new(4 << 20).seed(7);
//! let tenants = vec![
//!     TenantSpec::new("web", Box::new(HealthyService::new()))
//!         .total_requests(100),
//! ];
//! let mut host = Host::new(cfg, tenants).unwrap();
//! host.run_to_completion(1_000);
//! let summary = host.summary();
//! assert_eq!(summary[0].processed, 100);
//! host.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod arbiter;
pub mod config;
pub mod host;
pub mod loadgen;
pub mod ops;
mod recovery;
mod tenant;

pub use admission::{RejectReason, TenantCounters};
pub use arbiter::{ActionRecord, Arbiter, ArbiterPolicy, TenantControl, TenantView};
pub use config::{HostConfig, TenantSpec};
pub use host::{Host, HostError, TenantSummary};
pub use ops::TenantState;
