//! The global memory arbiter.
//!
//! Tenants register byte budgets against a shared host limit. The
//! arbiter watches aggregate usage each round and intervenes *before*
//! any tenant hits a real out-of-memory error, in escalating order:
//!
//! 1. **Collect** — above the high-water mark it forces full collections
//!    on the heaviest tenants (over-budget tenants first). Forced
//!    collections also advance the staleness clock, aging leaked
//!    references toward prunability.
//! 2. **Prune** — if collections alone cannot bring the aggregate under
//!    the hard limit, it drives [`leak_pruning::Runtime::reclaim_to`] on
//!    the heaviest tenants, which escalates to the OBSERVE→SELECT→PRUNE
//!    exhaustion path and reclaims leaked subtrees.
//! 3. **Quarantine** — a tenant that keeps pruning (a *prune storm*) is
//!    quarantined: its arrivals are shed with
//!    [`crate::RejectReason::Quarantined`] and it serves nothing for a
//!    cooldown, after which the arbiter resumes it with a fresh storm
//!    window.
//!
//! The policy is pure: it talks to tenants only through
//! [`TenantControl`], so tests can drive it against a model fleet and
//! property-check the invariant *aggregate live bytes never exceed the
//! host limit after a rebalance* (whenever the tenants' irreducible live
//! sets fit at all).

/// One tenant's state as the arbiter sees it at rebalance time.
#[derive(Clone, Copy, Debug)]
pub struct TenantView {
    /// Live bytes in the tenant's heap.
    pub used_bytes: u64,
    /// The byte budget the tenant registered at admission.
    pub budget_bytes: u64,
    /// Cumulative collections that pruned at least one reference.
    pub prune_events: u64,
    /// Whether the tenant is currently quarantined.
    pub quarantined: bool,
    /// Whether the tenant has completed its schedule (or failed); the
    /// arbiter never targets finished tenants.
    pub finished: bool,
}

impl TenantView {
    /// Whether the tenant is using more than it budgeted for.
    pub fn over_budget(&self) -> bool {
        self.used_bytes > self.budget_bytes
    }
}

/// The mutating half of the arbiter's world: what it can observe and do
/// to each tenant. Implemented by the live host (commands to worker
/// threads) and by the model fleet in property tests.
pub trait TenantControl {
    /// Number of tenants (stable for the host's lifetime).
    fn tenant_count(&self) -> usize;
    /// A snapshot of tenant `index`.
    fn view(&self, index: usize) -> TenantView;
    /// Forces a full collection on tenant `index`; returns its live
    /// bytes afterwards.
    fn force_collect(&mut self, index: usize) -> u64;
    /// Drives collection (escalating to pruning) on tenant `index` until
    /// its live bytes are at most `target_bytes` or no progress is
    /// possible; returns its live bytes afterwards.
    fn force_prune(&mut self, index: usize, target_bytes: u64) -> u64;
    /// Sets tenant `index`'s quarantine flag.
    fn set_quarantined(&mut self, index: usize, quarantined: bool);
}

/// One action the arbiter took during a rebalance, for telemetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionRecord {
    /// Index of the tenant acted on.
    pub tenant: usize,
    /// `"collect"`, `"prune"`, `"quarantine"` or `"resume"` — the
    /// interned action names of `lp_telemetry::Event::ArbiterAction`.
    pub action: &'static str,
    /// The tenant's live bytes after the action.
    pub used_bytes: u64,
    /// Aggregate live bytes across all tenants after the action.
    pub aggregate_bytes: u64,
}

/// Policy knobs for the arbiter (extracted from
/// [`crate::HostConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct ArbiterPolicy {
    /// The hard aggregate limit in bytes.
    pub host_limit: u64,
    /// Fraction of `host_limit` above which forced collections start.
    pub high_water: f64,
    /// Prune events within one window that trigger quarantine.
    pub storm_threshold: u64,
    /// Rounds a quarantined tenant sits out.
    pub cooldown_rounds: u64,
}

/// The arbiter's own state: per-tenant storm windows and quarantine
/// deadlines.
#[derive(Debug)]
pub struct Arbiter {
    policy: ArbiterPolicy,
    /// Round at which each quarantined tenant resumes.
    release_round: Vec<Option<u64>>,
    /// `prune_events` at the start of each tenant's current storm
    /// window; the window resets on quarantine entry and exit.
    storm_baseline: Vec<u64>,
    /// Times each tenant has been quarantined.
    quarantine_count: Vec<u64>,
}

impl Arbiter {
    /// An arbiter over `tenant_count` tenants.
    pub fn new(policy: ArbiterPolicy, tenant_count: usize) -> Arbiter {
        Arbiter {
            policy,
            release_round: vec![None; tenant_count],
            storm_baseline: vec![0; tenant_count],
            quarantine_count: vec![0; tenant_count],
        }
    }

    /// The policy this arbiter runs.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// How many times tenant `index` has been quarantined.
    pub fn quarantine_count(&self, index: usize) -> u64 {
        self.quarantine_count[index]
    }

    /// The high-water mark in bytes.
    fn high_water_bytes(&self) -> u64 {
        (self.policy.host_limit as f64 * self.policy.high_water) as u64
    }

    /// Picks the next victim: over-budget tenants first, then heaviest,
    /// ties to the lowest index; skips finished tenants, empty heaps and
    /// anything in `tried`.
    fn pick_victim(control: &dyn TenantControl, tried: &[bool]) -> Option<usize> {
        let mut best: Option<(bool, u64, usize)> = None;
        for (index, &already_tried) in tried.iter().enumerate().take(control.tenant_count()) {
            if already_tried {
                continue;
            }
            let view = control.view(index);
            if view.finished || view.used_bytes == 0 {
                continue;
            }
            let key = (view.over_budget(), view.used_bytes, index);
            best = match best {
                None => Some(key),
                // Prefer over-budget, then more bytes, then lower index.
                Some(cur) if (key.0, key.1, cur.2) > (cur.0, cur.1, key.2) => Some(key),
                Some(cur) => Some(cur),
            };
        }
        best.map(|(_, _, index)| index)
    }

    /// Runs one rebalance pass for `round`, in deterministic order:
    /// resume expired quarantines, quarantine storming tenants, then
    /// collect and finally prune the heaviest tenants until the
    /// aggregate fits. Returns the actions taken.
    pub fn rebalance(&mut self, round: u64, control: &mut dyn TenantControl) -> Vec<ActionRecord> {
        let count = control.tenant_count();
        let mut actions = Vec::new();
        let aggregate = |control: &dyn TenantControl| -> u64 {
            (0..count).map(|i| control.view(i).used_bytes).sum()
        };

        // 1. Resume tenants whose cooldown has expired, opening a fresh
        //    storm window so old prune events are not double-counted.
        for index in 0..count {
            if self.release_round[index].is_some_and(|release| round >= release) {
                control.set_quarantined(index, false);
                self.release_round[index] = None;
                self.storm_baseline[index] = control.view(index).prune_events;
                actions.push(ActionRecord {
                    tenant: index,
                    action: "resume",
                    used_bytes: control.view(index).used_bytes,
                    aggregate_bytes: aggregate(control),
                });
            }
        }

        // 2. Quarantine prune storms.
        for index in 0..count {
            let view = control.view(index);
            if view.quarantined || view.finished {
                continue;
            }
            let window = view.prune_events.saturating_sub(self.storm_baseline[index]);
            if window >= self.policy.storm_threshold {
                control.set_quarantined(index, true);
                self.release_round[index] = Some(round + self.policy.cooldown_rounds);
                self.storm_baseline[index] = view.prune_events;
                self.quarantine_count[index] += 1;
                actions.push(ActionRecord {
                    tenant: index,
                    action: "quarantine",
                    used_bytes: view.used_bytes,
                    aggregate_bytes: aggregate(control),
                });
            }
        }

        // 3. Above the high-water mark: force collections, heaviest
        //    first, until the aggregate drops below it or every live
        //    tenant has been collected once.
        let high_water = self.high_water_bytes();
        let mut tried = vec![false; count];
        while aggregate(control) > high_water {
            let Some(victim) = Arbiter::pick_victim(control, &tried) else {
                break;
            };
            tried[victim] = true;
            let used = control.force_collect(victim);
            actions.push(ActionRecord {
                tenant: victim,
                action: "collect",
                used_bytes: used,
                aggregate_bytes: aggregate(control),
            });
        }

        // 4. Still over the hard limit: prune, heaviest first. Each
        //    victim is asked to shed the whole remaining deficit (floor
        //    0), since its prunable bytes are unknown up front.
        let mut tried = vec![false; count];
        loop {
            let total = aggregate(control);
            if total <= self.policy.host_limit {
                break;
            }
            let Some(victim) = Arbiter::pick_victim(control, &tried) else {
                break;
            };
            tried[victim] = true;
            let deficit = total - self.policy.host_limit;
            let target = control.view(victim).used_bytes.saturating_sub(deficit);
            let used = control.force_prune(victim, target);
            actions.push(ActionRecord {
                tenant: victim,
                action: "prune",
                used_bytes: used,
                aggregate_bytes: aggregate(control),
            });
        }

        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model fleet: `floor` is the irreducible live set, `slack` is
    /// collectible garbage, `prunable` is leaked-but-reclaimable data.
    struct ModelFleet {
        tenants: Vec<ModelTenant>,
    }

    struct ModelTenant {
        floor: u64,
        slack: u64,
        prunable: u64,
        budget: u64,
        prune_events: u64,
        quarantined: bool,
        finished: bool,
    }

    impl ModelTenant {
        fn used(&self) -> u64 {
            self.floor + self.slack + self.prunable
        }
    }

    impl TenantControl for ModelFleet {
        fn tenant_count(&self) -> usize {
            self.tenants.len()
        }
        fn view(&self, index: usize) -> TenantView {
            let t = &self.tenants[index];
            TenantView {
                used_bytes: t.used(),
                budget_bytes: t.budget,
                prune_events: t.prune_events,
                quarantined: t.quarantined,
                finished: t.finished,
            }
        }
        fn force_collect(&mut self, index: usize) -> u64 {
            let t = &mut self.tenants[index];
            t.slack = 0;
            t.used()
        }
        fn force_prune(&mut self, index: usize, target: u64) -> u64 {
            let t = &mut self.tenants[index];
            t.slack = 0;
            if t.used() > target && t.prunable > 0 {
                let over = t.used() - target;
                let cut = over.min(t.prunable);
                t.prunable -= cut;
                t.prune_events += 1;
            }
            t.used()
        }
        fn set_quarantined(&mut self, index: usize, quarantined: bool) {
            self.tenants[index].quarantined = quarantined;
        }
    }

    fn tenant(floor: u64, slack: u64, prunable: u64, budget: u64) -> ModelTenant {
        ModelTenant {
            floor,
            slack,
            prunable,
            budget,
            prune_events: 0,
            quarantined: false,
            finished: false,
        }
    }

    fn policy(limit: u64) -> ArbiterPolicy {
        ArbiterPolicy {
            host_limit: limit,
            high_water: 0.85,
            storm_threshold: 3,
            cooldown_rounds: 8,
        }
    }

    #[test]
    fn below_high_water_the_arbiter_is_idle() {
        let mut fleet = ModelFleet {
            tenants: vec![tenant(100, 100, 0, 500), tenant(100, 100, 0, 500)],
        };
        let mut arbiter = Arbiter::new(policy(1000), 2);
        let actions = arbiter.rebalance(1, &mut fleet);
        assert!(
            actions.is_empty(),
            "took actions below high water: {actions:?}"
        );
    }

    #[test]
    fn collections_relieve_high_water_pressure_heaviest_first() {
        // 950 aggregate vs 850 high-water; collecting tenant 1 (the
        // heaviest) sheds its 400 bytes of slack and is enough.
        let mut fleet = ModelFleet {
            tenants: vec![tenant(200, 100, 0, 500), tenant(250, 400, 0, 500)],
        };
        let mut arbiter = Arbiter::new(policy(1000), 2);
        let actions = arbiter.rebalance(1, &mut fleet);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].tenant, 1);
        assert_eq!(actions[0].action, "collect");
        assert_eq!(fleet.tenants[1].slack, 0);
        assert_eq!(fleet.tenants[0].slack, 100, "light tenant untouched");
    }

    #[test]
    fn over_budget_tenants_are_collected_before_heavier_in_budget_ones() {
        // Tenant 0 is over its 100-byte budget; tenant 1 is heavier but
        // within budget. Over-budget goes first.
        let mut fleet = ModelFleet {
            tenants: vec![tenant(50, 250, 0, 100), tenant(300, 300, 0, 700)],
        };
        let mut arbiter = Arbiter::new(policy(1000), 2);
        let actions = arbiter.rebalance(1, &mut fleet);
        assert_eq!(actions[0].tenant, 0);
    }

    #[test]
    fn pruning_kicks_in_when_collection_cannot_fit_the_limit() {
        // Floors + prunable exceed the limit even with zero slack, so
        // the arbiter must escalate to pruning the leaky tenant.
        let mut fleet = ModelFleet {
            tenants: vec![tenant(100, 0, 800, 400), tenant(200, 50, 0, 600)],
        };
        let mut arbiter = Arbiter::new(policy(1000), 2);
        let actions = arbiter.rebalance(1, &mut fleet);
        assert!(actions.iter().any(|a| a.action == "prune" && a.tenant == 0));
        let total: u64 = (0..2).map(|i| fleet.view(i).used_bytes).sum();
        assert!(total <= 1000, "still over limit: {total}");
    }

    #[test]
    fn prune_storms_lead_to_quarantine_and_cooldown_resumes() {
        let mut fleet = ModelFleet {
            tenants: vec![tenant(10, 0, 0, 100)],
        };
        fleet.tenants[0].prune_events = 3; // storm: 3 events, baseline 0
        let mut arbiter = Arbiter::new(policy(1000), 1);
        let actions = arbiter.rebalance(5, &mut fleet);
        assert_eq!(actions[0].action, "quarantine");
        assert!(fleet.tenants[0].quarantined);
        assert_eq!(arbiter.quarantine_count(0), 1);

        // Cooldown not yet expired: nothing happens.
        let actions = arbiter.rebalance(12, &mut fleet);
        assert!(actions.is_empty());
        // Round 13 = 5 + 8: resume with a fresh storm window, so the old
        // three events do not immediately re-quarantine.
        let actions = arbiter.rebalance(13, &mut fleet);
        assert_eq!(actions[0].action, "resume");
        assert!(!fleet.tenants[0].quarantined);
        let actions = arbiter.rebalance(14, &mut fleet);
        assert!(actions.is_empty(), "re-quarantined without new prunes");
    }

    #[test]
    fn finished_tenants_are_never_targeted() {
        let mut fleet = ModelFleet {
            tenants: vec![tenant(500, 400, 0, 500), tenant(100, 0, 0, 500)],
        };
        fleet.tenants[0].finished = true;
        let mut arbiter = Arbiter::new(policy(1000), 2);
        let actions = arbiter.rebalance(1, &mut fleet);
        assert!(
            actions.iter().all(|a| a.tenant != 0),
            "acted on a finished tenant: {actions:?}"
        );
    }
}
