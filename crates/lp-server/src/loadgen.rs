//! Deterministic open-loop load generation.
//!
//! Arrivals are a pure function of `(seed, tenant, round)`, so two runs
//! of the same fleet produce byte-identical admission counts — the
//! property the serve-smoke determinism check relies on. Each draw is
//! uniform over `0..=2*mean`, giving a long-run offered load of `mean`
//! requests per round with bursts up to twice that.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mixes the three coordinates into one RNG seed. SplitMix-style
/// finalization keeps neighbouring rounds decorrelated even though the
/// inputs differ by one bit.
fn mix(seed: u64, tenant: u64, round: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tenant.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(round.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// The number of requests arriving for `tenant` in `round`.
pub fn arrivals(seed: u64, tenant: u64, round: u64, mean: u64) -> u64 {
    if mean == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(mix(seed, tenant, round));
    rng.random_range(0..2 * mean + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_bounded() {
        for round in 0..200 {
            let a = arrivals(42, 1, round, 8);
            let b = arrivals(42, 1, round, 8);
            assert_eq!(a, b);
            assert!(a <= 16);
        }
    }

    #[test]
    fn long_run_mean_is_close_to_the_nominal_rate() {
        let total: u64 = (0..10_000).map(|r| arrivals(7, 0, r, 8)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((7.5..8.5).contains(&mean), "observed mean {mean}");
    }

    #[test]
    fn tenants_and_seeds_decorrelate() {
        let same = (0..256)
            .filter(|&r| arrivals(1, 0, r, 100) == arrivals(1, 1, r, 100))
            .count();
        assert!(same < 16, "tenant streams too correlated: {same}");
        let same = (0..256)
            .filter(|&r| arrivals(1, 0, r, 100) == arrivals(2, 0, r, 100))
            .count();
        assert!(same < 16, "seed streams too correlated: {same}");
    }

    #[test]
    fn zero_rate_means_silence() {
        assert!((0..64).all(|r| arrivals(9, 3, r, 0) == 0));
    }
}
