//! Host and tenant configuration.
//!
//! A [`TenantSpec`] describes one hosted program: its private heap, the
//! byte budget it registers against the shared host limit, the shape of
//! its offered load, and the [`Service`] that does the per-request heap
//! work. A [`HostConfig`] describes the shared envelope: the global
//! memory limit the arbiter defends, the high-water mark at which it
//! starts forcing collections, and the quarantine policy for tenants
//! whose leaks make them prune repeatedly.

use lp_workloads::Service;

/// Configuration for one hosted tenant.
pub struct TenantSpec {
    pub(crate) name: String,
    pub(crate) heap_capacity: u64,
    pub(crate) byte_budget: u64,
    pub(crate) queue_capacity: usize,
    pub(crate) service_rate: u64,
    pub(crate) arrival_rate: u64,
    pub(crate) total_requests: Option<u64>,
    pub(crate) pruning: bool,
    pub(crate) incremental_mark: Option<usize>,
    pub(crate) trace_path: Option<std::path::PathBuf>,
    pub(crate) postmortem_dir: Option<std::path::PathBuf>,
    pub(crate) recovery_dir: Option<std::path::PathBuf>,
    pub(crate) fsync_every: u64,
    pub(crate) history_every: u64,
    pub(crate) recover: bool,
    pub(crate) service: Box<dyn Service>,
}

impl TenantSpec {
    /// A tenant named `name` running `service`, with defaults sized from
    /// the service's own heap request: budget = heap capacity, queue of
    /// 64, 16 requests served and 8 offered per round, unbounded
    /// schedule, pruning enabled.
    pub fn new(name: impl Into<String>, service: Box<dyn Service>) -> TenantSpec {
        let heap = service.default_heap();
        TenantSpec {
            name: name.into(),
            heap_capacity: heap,
            byte_budget: heap,
            queue_capacity: 64,
            service_rate: 16,
            arrival_rate: 8,
            total_requests: None,
            pruning: true,
            incremental_mark: None,
            trace_path: None,
            postmortem_dir: None,
            recovery_dir: None,
            fsync_every: 1,
            history_every: 50,
            recover: false,
            service,
        }
    }

    /// Sets the capacity of this tenant's private heap.
    pub fn heap_capacity(mut self, bytes: u64) -> TenantSpec {
        self.heap_capacity = bytes;
        self
    }

    /// Sets the byte budget this tenant registers against the host
    /// limit. The sum of budgets across tenants must not exceed the host
    /// limit; [`crate::Host::new`] rejects over-committed fleets.
    pub fn byte_budget(mut self, bytes: u64) -> TenantSpec {
        self.byte_budget = bytes;
        self
    }

    /// Sets the depth of the bounded admission queue. Arrivals beyond
    /// this depth are shed with [`crate::RejectReason::QueueFull`].
    pub fn queue_capacity(mut self, requests: usize) -> TenantSpec {
        self.queue_capacity = requests.max(1);
        self
    }

    /// Sets the maximum requests this tenant serves per round.
    pub fn service_rate(mut self, requests_per_round: u64) -> TenantSpec {
        self.service_rate = requests_per_round;
        self
    }

    /// Sets the mean open-loop arrival rate (requests per round). The
    /// built-in load generator draws uniformly from `0..=2*rate`, so the
    /// long-run offered load averages `rate` per round.
    pub fn arrival_rate(mut self, requests_per_round: u64) -> TenantSpec {
        self.arrival_rate = requests_per_round;
        self
    }

    /// Caps the total offered load; once this many requests have been
    /// offered and the backlog drains, the tenant reports `Finished`.
    pub fn total_requests(mut self, requests: u64) -> TenantSpec {
        self.total_requests = Some(requests);
        self
    }

    /// Enables or disables leak pruning in this tenant's runtime.
    pub fn pruning(mut self, enabled: bool) -> TenantSpec {
        self.pruning = enabled;
        self
    }

    /// Marks this tenant's full collections incrementally, at most
    /// `budget` objects per mark quantum, instead of stop-the-world. The
    /// worker interleaves quanta with request processing, so other
    /// tenants' rounds — and this tenant's own requests — no longer sit
    /// behind a full-heap mark pause.
    pub fn incremental_mark(mut self, budget: usize) -> TenantSpec {
        self.incremental_mark = Some(budget);
        self
    }

    /// Writes this tenant's full telemetry stream — spans included — to
    /// a JSONL trace file at `path`, for offline replay (`trace_replay`)
    /// and Perfetto export (`trace_export`).
    pub fn trace_path(mut self, path: impl Into<std::path::PathBuf>) -> TenantSpec {
        self.trace_path = Some(path.into());
        self
    }

    /// Enables postmortem bundles for this tenant: on exhaustion, a
    /// fresh quarantine, a new leak suspicion, or an operator's
    /// `POST /postmortem`, the worker writes a full-fidelity bundle
    /// (v2 snapshot, flight-recorder tail, heap-trend window, host
    /// context) into `dir`.
    pub fn postmortem_dir(mut self, dir: impl Into<std::path::PathBuf>) -> TenantSpec {
        self.postmortem_dir = Some(dir.into());
        self
    }

    /// Enables crash recovery for this tenant: a write-ahead request
    /// journal (`<dir>/<name>.journal`), checkpoint files
    /// (`<dir>/<name>.ckpt`, written on `POST /checkpoint` and
    /// `POST /migrate`), and a fleet-history file (`<dir>/<name>.history`)
    /// with one fingerprint line every [`TenantSpec::history_every`]
    /// requests. With [`TenantSpec::recover`] set, the worker restores
    /// from the checkpoint at boot and replays the journal suffix.
    pub fn recovery_dir(mut self, dir: impl Into<std::path::PathBuf>) -> TenantSpec {
        self.recovery_dir = Some(dir.into());
        self
    }

    /// Journal durability knob: fsync the write-ahead journal every `n`
    /// appends (default 1, every request). Raising it trades the last
    /// few admitted requests on a crash for throughput.
    pub fn fsync_every(mut self, n: u64) -> TenantSpec {
        self.fsync_every = n.max(1);
        self
    }

    /// How many requests between fleet-history fingerprint lines
    /// (default 50).
    pub fn history_every(mut self, requests: u64) -> TenantSpec {
        self.history_every = requests.max(1);
        self
    }

    /// Recover at boot: if a checkpoint exists in the recovery
    /// directory, restore from it and replay the journal suffix past its
    /// watermark; if only a journal exists, replay it from a fresh
    /// runtime. No-op without [`TenantSpec::recovery_dir`].
    pub fn recover(mut self, enabled: bool) -> TenantSpec {
        self.recover = enabled;
        self
    }

    /// The tenant's name.
    pub fn name_str(&self) -> &str {
        &self.name
    }
}

/// Configuration for the shared host.
#[derive(Clone, Debug)]
pub struct HostConfig {
    pub(crate) host_limit: u64,
    pub(crate) high_water: f64,
    pub(crate) storm_threshold: u64,
    pub(crate) cooldown_rounds: u64,
    pub(crate) seed: u64,
    pub(crate) ops_addr: Option<String>,
    pub(crate) trace_path: Option<std::path::PathBuf>,
}

impl HostConfig {
    /// A host defending `host_limit` bytes of aggregate tenant memory,
    /// with the default policy: forced collections above 85% occupancy,
    /// quarantine after 3 prune events within one observation window,
    /// 8-round cooldown, seed 0, ops plane disabled.
    pub fn new(host_limit: u64) -> HostConfig {
        HostConfig {
            host_limit,
            high_water: 0.85,
            storm_threshold: 3,
            cooldown_rounds: 8,
            seed: 0,
            ops_addr: None,
            trace_path: None,
        }
    }

    /// Sets the high-water fraction of the host limit above which the
    /// arbiter forces collections on the heaviest tenants. Clamped to
    /// `(0, 1]`.
    pub fn high_water(mut self, fraction: f64) -> HostConfig {
        self.high_water = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Sets how many prune events within one un-quarantined window mark
    /// a tenant as storming and send it to quarantine.
    pub fn storm_threshold(mut self, prune_events: u64) -> HostConfig {
        self.storm_threshold = prune_events.max(1);
        self
    }

    /// Sets how many rounds a quarantined tenant sits out before the
    /// arbiter resumes it.
    pub fn cooldown_rounds(mut self, rounds: u64) -> HostConfig {
        self.cooldown_rounds = rounds.max(1);
        self
    }

    /// Sets the seed for the deterministic open-loop load generator.
    pub fn seed(mut self, seed: u64) -> HostConfig {
        self.seed = seed;
        self
    }

    /// Enables the HTTP ops plane on `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port; the bound address is reported by
    /// [`crate::Host::ops_addr`]).
    pub fn ops(mut self, addr: impl Into<String>) -> HostConfig {
        self.ops_addr = Some(addr.into());
        self
    }

    /// Writes the host bus's telemetry stream — round and service spans,
    /// arbiter actions, leak-trend reports — to a JSONL trace at `path`.
    pub fn trace_path(mut self, path: impl Into<std::path::PathBuf>) -> HostConfig {
        self.trace_path = Some(path.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_workloads::HealthyService;

    #[test]
    fn tenant_defaults_follow_the_service() {
        let spec = TenantSpec::new("t0", Box::new(HealthyService::new()));
        assert_eq!(spec.heap_capacity, 256 * 1024);
        assert_eq!(spec.byte_budget, spec.heap_capacity);
        assert!(spec.pruning);
        assert_eq!(spec.incremental_mark, None);
        assert_eq!(
            spec.incremental_mark(512).incremental_mark,
            Some(512),
            "builder sets the quantum budget"
        );
    }

    #[test]
    fn host_config_clamps_policy_knobs() {
        let cfg = HostConfig::new(1 << 20)
            .high_water(7.0)
            .storm_threshold(0)
            .cooldown_rounds(0);
        assert!(cfg.high_water <= 1.0);
        assert_eq!(cfg.storm_threshold, 1);
        assert_eq!(cfg.cooldown_rounds, 1);
    }
}
