//! Worker-side crash recovery: per-tenant journal, checkpoint and
//! fleet-history plumbing.
//!
//! A recovery-enabled tenant (see
//! [`TenantSpec::recovery_dir`](crate::TenantSpec::recovery_dir)) keeps
//! three files in its recovery directory:
//!
//! - `<name>.journal` — the write-ahead request journal. The worker
//!   appends the request's sequence number *before* handing it to the
//!   service, so every request that might have touched the heap is on
//!   disk first (modulo the `fsync_every` durability knob).
//! - `<name>.ckpt` — the latest [`Checkpoint`] file, written at a round
//!   barrier (a quiescent point: no request in flight, journal synced)
//!   on `POST /checkpoint` and as the first half of `POST /migrate`.
//! - `<name>.history` — the fleet history: one JSON line every
//!   `history_every` requests carrying the runtime fingerprint at that
//!   request count. Because a tenant's state is a pure function of the
//!   request sequence it has served, the history of a crashed-and-
//!   recovered run is byte-identical to an uninterrupted run of the same
//!   requests — which is exactly what the crash-recovery smoke check
//!   diffs.
//!
//! Recovery at boot restores the checkpoint (if any), reattaches the
//! service by name, truncates the history back to the checkpoint's
//! watermark, and replays the journal suffix through the same service
//! code — regenerating the truncated history lines on the way.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use leak_pruning::{PruningConfig, Runtime};
use lp_recovery::{read_journal, Checkpoint, Journal};
use lp_telemetry::{Event, PauseHistogram, PrometheusSink, TimeSeries};
use lp_workloads::Service;

/// How a worker builds its runtime — kept for the lifetime of the
/// worker so `POST /migrate` can rebuild an identically-configured
/// runtime from the checkpoint file and re-attach the same shared
/// sinks.
pub(crate) struct RuntimeFactory {
    pub heap_capacity: u64,
    pub byte_budget: u64,
    pub pruning: bool,
    pub incremental_mark: Option<usize>,
    pub postmortem_dir: Option<PathBuf>,
    pub sink: PrometheusSink,
    pub pauses: PauseHistogram,
    pub series: TimeSeries,
    /// The tenant's JSONL trace sink, attached to the *first* runtime
    /// built (before the service registers classes, so the trace stays
    /// self-describing). A file sink cannot be cloned, so a migrated
    /// runtime continues without one; the pre-migration trace flushes
    /// when the old runtime drops.
    pub trace: Option<crate::tenant::TraceSink>,
}

impl RuntimeFactory {
    /// The tenant's pruning configuration, identical on every build.
    pub fn config(&self) -> PruningConfig {
        let mut builder = PruningConfig::builder(self.heap_capacity).pruning(self.pruning);
        if let Some(budget) = self.incremental_mark {
            builder = builder.incremental_mark(budget);
        }
        if let Some(dir) = &self.postmortem_dir {
            builder = builder.postmortem_on(dir.clone());
        }
        builder.build()
    }

    /// A fresh runtime with the tenant's budget and sinks attached.
    pub fn build(&mut self) -> Runtime {
        let mut rt = Runtime::new(self.config());
        self.attach(&mut rt);
        rt
    }

    /// Attaches the tenant's budget and shared sink handles to `rt`,
    /// plus the trace sink if it has not been claimed yet.
    pub fn attach(&mut self, rt: &mut Runtime) {
        rt.set_byte_budget(Some(self.byte_budget));
        rt.telemetry().add_sink(Box::new(self.sink.clone()));
        rt.telemetry().add_sink(Box::new(self.pauses.clone()));
        rt.telemetry().add_sink(Box::new(self.series.clone()));
        if let Some(sink) = self.trace.take() {
            rt.telemetry().add_sink(Box::new(sink));
        }
    }
}

/// The recovery knobs handed to the worker thread.
pub(crate) struct RecoverySpec {
    pub name: String,
    pub dir: PathBuf,
    pub fsync_every: u64,
    pub history_every: u64,
    pub recover: bool,
}

/// Live recovery state owned by the worker thread.
pub(crate) struct Recovery {
    name: String,
    journal: Journal,
    journal_path: PathBuf,
    checkpoint_path: PathBuf,
    history: File,
    history_every: u64,
    /// Path of the most recent checkpoint written by this worker.
    pub last_checkpoint: Option<String>,
    /// Checkpoint this runtime was restored from (boot recovery or
    /// migration), if any.
    pub restored_from: Option<String>,
}

/// A recovery-enabled tenant's boot outcome: the (possibly restored)
/// runtime, the live recovery state, and where the request sequence
/// resumes.
pub(crate) struct Boot {
    pub rt: Runtime,
    pub recovery: Recovery,
    pub request_seq: u64,
    pub replayed: u64,
}

/// Boots a recovery-enabled tenant: restore from the checkpoint if one
/// exists (and `recover` is set), replay the journal suffix, and leave
/// journal + history open for appending.
pub(crate) fn boot(
    spec: &RecoverySpec,
    factory: &mut RuntimeFactory,
    service: &mut Box<dyn Service>,
) -> Result<Boot, String> {
    std::fs::create_dir_all(&spec.dir)
        .map_err(|e| format!("cannot create {}: {e}", spec.dir.display()))?;
    let journal_path = spec.dir.join(format!("{}.journal", spec.name));
    let checkpoint_path = spec.dir.join(format!("{}.ckpt", spec.name));
    let history_path = spec.dir.join(format!("{}.history", spec.name));

    // 1. The runtime: restored from the checkpoint, or fresh.
    let restoring = spec.recover && checkpoint_path.exists();
    let (mut rt, watermark, restored_from) = if restoring {
        let checkpoint = Checkpoint::read(&checkpoint_path)
            .map_err(|e| format!("checkpoint {}: {e}", checkpoint_path.display()))?;
        let mut rt = checkpoint
            .restore(factory.config())
            .map_err(|e| format!("restore {}: {e}", checkpoint_path.display()))?;
        factory.attach(&mut rt);
        emit_restore(&rt, checkpoint.gc_index);
        if !service.reattach(&rt) {
            return Err(format!(
                "checkpoint {} does not contain this service's classes/roots",
                checkpoint_path.display()
            ));
        }
        let path = checkpoint_path.display().to_string();
        (rt, checkpoint.watermark, Some(path))
    } else {
        let mut rt = factory.build();
        service.setup(&mut rt).map_err(|e| format!("setup: {e}"))?;
        rt.release_registers();
        (rt, 0, None)
    };

    // 2. The journal: reopen (tolerating one torn tail) when recovering,
    // start fresh otherwise.
    let (journal, entries) = if spec.recover && journal_path.exists() {
        let read = read_journal(&journal_path)
            .map_err(|e| format!("journal {}: {e}", journal_path.display()))?;
        if read.entries < watermark {
            return Err(format!(
                "journal {} has {} entries but the checkpoint watermark is {watermark}",
                journal_path.display(),
                read.entries
            ));
        }
        let journal = Journal::reopen(&journal_path)
            .map_err(|e| format!("journal {}: {e}", journal_path.display()))?;
        (journal, read.entries)
    } else {
        if watermark > 0 {
            return Err(format!(
                "checkpoint watermark is {watermark} but journal {} is missing",
                journal_path.display()
            ));
        }
        let journal = Journal::create(&journal_path, &spec.name)
            .map_err(|e| format!("journal {}: {e}", journal_path.display()))?;
        (journal, 0)
    };

    // 3. The history: drop everything past the watermark (replay
    // regenerates it), keep everything at or before it.
    let history = truncate_history(&history_path, watermark)?;

    let mut recovery = Recovery {
        name: spec.name.clone(),
        journal,
        journal_path,
        checkpoint_path,
        history,
        history_every: spec.history_every,
        last_checkpoint: None,
        restored_from,
    };
    recovery.journal.set_fsync_every(spec.fsync_every);

    // 4. Replay the journal suffix through the live service code. Journal
    // entry k (1-based) is request number k-1.
    for seq in watermark..entries {
        service
            .handle(&mut rt, seq)
            .map_err(|e| format!("replay request {seq}: {e}"))?;
        rt.release_registers();
        recovery.note_served(&mut rt, seq + 1)?;
    }

    Ok(Boot {
        rt,
        recovery,
        request_seq: entries,
        replayed: entries - watermark,
    })
}

impl Recovery {
    /// Write-ahead step: journals the next request before the service
    /// sees it.
    pub fn note_admitted(&mut self) -> Result<u64, String> {
        self.journal
            .append()
            .map_err(|e| format!("journal append: {e}"))
    }

    /// Called after request number `served - 1` completed (`served` =
    /// total requests served): appends a fleet-history line every
    /// `history_every` requests. The line is a pure function of `served`
    /// and the runtime state, which is itself a pure function of the
    /// request sequence — so histories diff clean across crash recovery.
    pub fn note_served(&mut self, rt: &mut Runtime, served: u64) -> Result<(), String> {
        if !served.is_multiple_of(self.history_every) {
            return Ok(());
        }
        let line = format!(
            "{{\"k\":\"hist\",\"tenant\":\"{}\",\"seq\":{served},\"fingerprint\":\"{:016x}\",\"gc\":{},\"used\":{},\"objects\":{}}}\n",
            self.name,
            rt.fingerprint(),
            rt.gc_count(),
            rt.used_bytes(),
            rt.live_objects(),
        );
        self.history
            .write_all(line.as_bytes())
            .and_then(|()| self.history.flush())
            .map_err(|e| format!("history append: {e}"))
    }

    /// Checkpoints the tenant at a quiescent point: syncs the journal
    /// and history first (so the watermark is durable before the state
    /// that depends on it), then captures and atomically writes the
    /// checkpoint file.
    pub fn checkpoint(&mut self, rt: &mut Runtime, request_seq: u64) -> Result<(), String> {
        self.journal
            .sync()
            .map_err(|e| format!("journal sync: {e}"))?;
        self.history
            .sync_all()
            .map_err(|e| format!("history sync: {e}"))?;
        let checkpoint = Checkpoint::capture(rt, request_seq);
        checkpoint
            .write(&self.checkpoint_path)
            .map_err(|e| format!("checkpoint write {}: {e}", self.checkpoint_path.display()))?;
        self.last_checkpoint = Some(self.checkpoint_path.display().to_string());
        Ok(())
    }

    /// Live migration at a round barrier: checkpoint, restore the file
    /// into a fresh runtime, reattach the service, replay any journal
    /// suffix past the watermark, and return the new runtime for the
    /// worker to swap in. At a quiescent barrier the suffix is empty, so
    /// the swap is exact; the replay loop still runs for generality.
    pub fn migrate(
        &mut self,
        rt: &mut Runtime,
        request_seq: u64,
        factory: &mut RuntimeFactory,
        service: &mut Box<dyn Service>,
    ) -> Result<Runtime, String> {
        self.checkpoint(rt, request_seq)?;
        let checkpoint = Checkpoint::read(&self.checkpoint_path)
            .map_err(|e| format!("checkpoint {}: {e}", self.checkpoint_path.display()))?;
        let mut fresh = checkpoint
            .restore(factory.config())
            .map_err(|e| format!("restore {}: {e}", self.checkpoint_path.display()))?;
        factory.attach(&mut fresh);
        emit_restore(&fresh, checkpoint.gc_index);
        if !service.reattach(&fresh) {
            return Err("restored runtime does not contain this service's classes/roots".into());
        }
        let read = read_journal(&self.journal_path)
            .map_err(|e| format!("journal {}: {e}", self.journal_path.display()))?;
        for seq in checkpoint.watermark..read.entries {
            service
                .handle(&mut fresh, seq)
                .map_err(|e| format!("replay request {seq}: {e}"))?;
            fresh.release_registers();
        }
        self.restored_from = Some(self.checkpoint_path.display().to_string());
        Ok(fresh)
    }
}

/// Emits the restore span and event on the (sink-attached) runtime's
/// own bus, so a restore is visible in the tenant's trace exactly like
/// a checkpoint is.
fn emit_restore(rt: &Runtime, gc_index: u64) {
    let objects = rt.live_objects();
    let bytes = rt.used_bytes();
    let telemetry = rt.telemetry();
    let span = telemetry.span("restore", gc_index);
    telemetry.emit(|| Event::Restore {
        gc_index,
        objects,
        bytes,
    });
    drop(span);
}

/// Rewrites the history file keeping only lines with `seq <=
/// watermark`, then returns an append handle. Missing file = empty
/// history.
fn truncate_history(path: &Path, watermark: u64) -> Result<File, String> {
    let kept = match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .filter(|line| history_seq(line).is_some_and(|seq| seq <= watermark))
            .fold(String::new(), |mut out, line| {
                out.push_str(line);
                out.push('\n');
                out
            }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("history {}: {e}", path.display())),
    };
    std::fs::write(path, kept).map_err(|e| format!("history {}: {e}", path.display()))?;
    OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| format!("history {}: {e}", path.display()))
}

/// The `seq` field of one history line, if it parses as one.
fn history_seq(line: &str) -> Option<u64> {
    let value = lp_telemetry::json::parse(line).ok()?;
    if value.get("k")?.as_str()? != "hist" {
        return None;
    }
    value.get("seq")?.as_u64()
}
