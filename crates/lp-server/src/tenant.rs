//! Tenant worker threads.
//!
//! Each tenant runs on its own thread, owning a private
//! [`leak_pruning::Runtime`] and the [`Service`] that does its
//! per-request heap work. The host drives workers in lockstep: it sends
//! one [`Command`] per phase and waits for the matching [`Report`], so
//! rounds are a barrier and the whole fleet is deterministic even though
//! the tenants are real threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use leak_pruning::Runtime;
use lp_diagnose::PostmortemContext;
use lp_telemetry::json::JsonValue;
use lp_telemetry::{JsonlSink, PauseHistogram, PrometheusSink, TimeSeries};
use lp_workloads::Service;

use crate::admission::TenantCounters;
use crate::config::TenantSpec;
use crate::recovery::{self, Recovery, RecoverySpec, RuntimeFactory};

/// The tenant trace sink's concrete type (a buffered JSONL file).
pub(crate) type TraceSink = JsonlSink<std::io::BufWriter<std::fs::File>>;

/// Heap-trend bucket width for each tenant's [`TimeSeries`]. Small
/// enough that a short deterministic run spreads across several buckets,
/// so the leak-trend detector has windows to compare.
const TREND_INTERVAL: Duration = Duration::from_millis(25);

/// Buckets retained per tenant (10 seconds of history at
/// [`TREND_INTERVAL`]).
const TREND_CAPACITY: usize = 400;

/// A host-to-worker command. Every command is answered with exactly one
/// [`Report`], which is what makes the round loop a barrier.
pub(crate) enum Command {
    /// Serve up to `max_requests` queued requests.
    Round {
        /// Cap on requests drained from the admission queue.
        max_requests: u64,
    },
    /// Run one full collection (arbiter high-water relief).
    ForceCollect,
    /// Reclaim down to `target_bytes`, escalating to pruning.
    Reclaim {
        /// Live-byte target for [`Runtime::reclaim_to`].
        target_bytes: u64,
    },
    /// Write a postmortem bundle now (operator request, quarantine, or
    /// leak suspicion). The worker stamps in its own heap-trend window;
    /// `context` carries the host's view (round, aggregate bytes).
    Postmortem {
        /// Trigger label recorded in the bundle header.
        trigger: String,
        /// Host-plane context stamped into the bundle, if any.
        context: Option<JsonValue>,
    },
    /// Checkpoint the tenant now (round barrier = quiescent point).
    /// No-op for tenants without a recovery directory.
    Checkpoint,
    /// Live-migrate the tenant: checkpoint, restore the file into a
    /// fresh runtime, replay any journal suffix, swap. No-op for
    /// tenants without a recovery directory.
    Migrate,
    /// Exit the worker loop after a final report.
    Shutdown,
}

/// A worker-to-host report: the tenant's state after one command.
#[derive(Clone, Debug, Default)]
pub(crate) struct Report {
    /// Requests handled while executing this command.
    pub processed: u64,
    /// Live bytes in the tenant heap.
    pub used_bytes: u64,
    /// Cumulative collections so far.
    pub gc_count: u64,
    /// Cumulative collections that pruned at least one reference.
    pub prune_events: u64,
    /// Cumulative references pruned.
    pub pruned_refs: u64,
    /// Fatal error, if the service failed (tenant is then done).
    pub failed: Option<String>,
    /// Cumulative postmortem bundles written (automatic exhaustion
    /// bundles included, not just host-commanded ones).
    pub postmortem_count: u64,
    /// Path of the most recent postmortem bundle, if any.
    pub postmortem_path: Option<String>,
    /// Path of the most recent checkpoint written by this worker.
    pub last_checkpoint: Option<String>,
    /// Checkpoint this runtime was restored from (boot recovery or
    /// migration), if any.
    pub restored_from: Option<String>,
    /// Requests replayed from the journal during boot recovery.
    pub replayed: u64,
}

/// Host-side handle to one worker thread plus its shared state.
pub(crate) struct TenantWorker {
    /// Tenant name (from the spec).
    pub name: String,
    /// Registered byte budget.
    pub byte_budget: u64,
    /// Requests served per round.
    pub service_rate: u64,
    /// Mean arrivals per round for the built-in load generator.
    pub arrival_rate: u64,
    /// Offered-load cap, if the schedule is finite.
    pub total_requests: Option<u64>,
    /// Requests offered by the built-in generator so far.
    pub offered: u64,
    /// Admission queue into the worker.
    pub queue: SyncSender<()>,
    /// Live admission counters (shared with the ops plane).
    pub counters: Arc<TenantCounters>,
    /// This tenant's metrics sink (shared with the ops plane).
    pub sink: PrometheusSink,
    /// Mutator-pause histogram fed by the worker's bus (shared with the
    /// ops plane for the `lp_pause_nanos` quantile family).
    pub pauses: PauseHistogram,
    /// Per-request service-time histogram, recorded directly by the
    /// worker (shared with the ops plane for `lp_server_request_nanos`).
    pub requests: PauseHistogram,
    /// Heap-trend time series fed by the worker's bus (shared with the
    /// ops plane's `/timeseries` route and the host's leak-trend poll).
    pub series: TimeSeries,
    /// Whether the host currently considers this tenant's heap trend a
    /// leak suspicion (hysteresis so `LeakSuspected` fires on the rising
    /// edge, not every round).
    pub leak_flagged: bool,
    /// Live bytes as of the last report (shared with the ops plane).
    pub used_bytes: Arc<AtomicU64>,
    /// Quarantine flag, owned by the host's arbiter.
    pub quarantined: bool,
    /// Set once the schedule is exhausted and the backlog drained.
    pub finished: bool,
    /// Set when the service returned a fatal error.
    pub failed: Option<String>,
    /// Latest cumulative stats from the worker.
    pub last_report: Report,
    commands: SyncSender<Command>,
    reports: Receiver<Report>,
    thread: Option<JoinHandle<()>>,
}

impl TenantWorker {
    /// Spawns the worker thread for `spec`. The runtime is constructed
    /// on the worker thread; the host keeps only channels and shared
    /// counters.
    pub fn spawn(spec: TenantSpec) -> std::io::Result<TenantWorker> {
        let TenantSpec {
            name,
            heap_capacity,
            byte_budget,
            queue_capacity,
            service_rate,
            arrival_rate,
            total_requests,
            pruning,
            incremental_mark,
            trace_path,
            postmortem_dir,
            recovery_dir,
            fsync_every,
            history_every,
            recover,
            service,
        } = spec;
        // Created on the host thread so a bad path fails `spawn` loudly
        // instead of silently producing an untraced worker.
        let trace_sink = trace_path
            .map(|path| JsonlSink::create(&path))
            .transpose()?;
        let (queue_tx, queue_rx) = sync_channel::<()>(queue_capacity);
        let (command_tx, command_rx) = sync_channel::<Command>(1);
        let (report_tx, report_rx) = sync_channel::<Report>(1);
        let counters = Arc::new(TenantCounters::new());
        let sink = PrometheusSink::new();
        let pauses = PauseHistogram::new();
        let requests = PauseHistogram::new();
        let series = TimeSeries::new(TREND_INTERVAL, TREND_CAPACITY);
        let used_bytes = Arc::new(AtomicU64::new(0));

        let worker_counters = Arc::clone(&counters);
        let worker_sink = sink.clone();
        let worker_pauses = pauses.clone();
        let worker_requests = requests.clone();
        let worker_series = series.clone();
        // A second handle to the same series, read (not fed) by the
        // worker when it stamps the heap-trend window into a bundle.
        let window_series = series.clone();
        let worker_used = Arc::clone(&used_bytes);
        let recovery_spec = recovery_dir.map(|dir| RecoverySpec {
            name: name.clone(),
            dir,
            fsync_every,
            history_every,
            recover,
        });
        let thread = std::thread::Builder::new()
            .name(format!("tenant-{name}"))
            .spawn(move || {
                // The factory outlives any single runtime: boot recovery
                // and `Command::Migrate` rebuild an identically-configured
                // runtime and re-attach the same shared sink handles.
                let factory = RuntimeFactory {
                    heap_capacity,
                    byte_budget,
                    pruning,
                    incremental_mark,
                    postmortem_dir,
                    sink: worker_sink,
                    pauses: worker_pauses,
                    series: worker_series,
                    trace: trace_sink,
                };
                worker_main(
                    factory,
                    recovery_spec,
                    service,
                    queue_rx,
                    command_rx,
                    report_tx,
                    worker_counters,
                    worker_requests,
                    window_series,
                    worker_used,
                );
            })?;

        Ok(TenantWorker {
            name,
            byte_budget,
            service_rate,
            arrival_rate,
            total_requests,
            offered: 0,
            queue: queue_tx,
            counters,
            sink,
            pauses,
            requests,
            series,
            leak_flagged: false,
            used_bytes,
            quarantined: false,
            finished: false,
            failed: None,
            last_report: Report::default(),
            commands: command_tx,
            reports: report_rx,
            thread: None,
        }
        .with_thread(thread))
    }

    fn with_thread(mut self, thread: JoinHandle<()>) -> TenantWorker {
        self.thread = Some(thread);
        self
    }

    /// Sends `command` to the worker. Returns `false` if the worker is
    /// gone (channel disconnected).
    pub fn send(&self, command: Command) -> bool {
        self.commands.send(command).is_ok()
    }

    /// Waits for the worker's report to the last command and folds it
    /// into the host-visible state. Returns the report, or `None` if the
    /// worker is gone.
    pub fn wait(&mut self) -> Option<Report> {
        let report = self.reports.recv().ok()?;
        if report.failed.is_some() && self.failed.is_none() {
            self.failed.clone_from(&report.failed);
        }
        self.last_report = report.clone();
        Some(report)
    }

    /// Whether this tenant still participates in rounds.
    pub fn active(&self) -> bool {
        !self.finished && self.failed.is_none()
    }

    /// Marks the tenant finished once its (finite) schedule has been
    /// fully offered and the queue has drained.
    pub fn update_finished(&mut self) {
        if let Some(total) = self.total_requests {
            if self.offered >= total && self.counters.queue_depth() == 0 {
                self.finished = true;
            }
        }
    }

    /// Shuts the worker down and joins the thread.
    pub fn join(&mut self) {
        if self.thread.is_some() {
            if self.send(Command::Shutdown) {
                let _ = self.reports.recv();
            }
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl Drop for TenantWorker {
    fn drop(&mut self) {
        self.join();
    }
}

/// Cumulative pruning stats derived from the runtime's GC history.
fn prune_stats(rt: &Runtime) -> (u64, u64) {
    let mut events = 0;
    let mut refs = 0;
    for record in rt.history() {
        if record.pruned_refs > 0 {
            events += 1;
            refs += record.pruned_refs;
        }
    }
    (events, refs)
}

fn report_of(
    rt: &Runtime,
    processed: u64,
    failed: Option<String>,
    recovery: Option<&Recovery>,
    replayed: u64,
) -> Report {
    let (prune_events, pruned_refs) = prune_stats(rt);
    Report {
        processed,
        used_bytes: rt.used_bytes(),
        gc_count: rt.gc_count(),
        prune_events,
        pruned_refs,
        failed,
        postmortem_count: rt.postmortem_count(),
        postmortem_path: rt.postmortem_latest().map(|p| p.display().to_string()),
        last_checkpoint: recovery.and_then(|r| r.last_checkpoint.clone()),
        restored_from: recovery.and_then(|r| r.restored_from.clone()),
        replayed,
    }
}

/// The tenant's heap-trend window as JSON, for the `timeseries` section
/// of a postmortem bundle (same bucket shape as `GET /timeseries`).
fn series_window_json(series: &TimeSeries) -> JsonValue {
    let buckets: Vec<JsonValue> = series
        .snapshot()
        .into_iter()
        .map(|b| {
            JsonValue::Obj(vec![
                ("window".into(), JsonValue::from_u64(b.window)),
                ("live_bytes".into(), JsonValue::from_u64(b.live_bytes)),
                ("live_objects".into(), JsonValue::from_u64(b.live_objects)),
                (
                    "edge_table_bytes".into(),
                    JsonValue::from_u64(b.edge_table_bytes),
                ),
                ("collections".into(), JsonValue::from_u64(b.collections)),
                ("pruned_refs".into(), JsonValue::from_u64(b.pruned_refs)),
                ("sheds".into(), JsonValue::from_u64(b.sheds)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        (
            "interval_nanos".into(),
            JsonValue::from_u64(u64::try_from(series.interval().as_nanos()).unwrap_or(u64::MAX)),
        ),
        ("buckets".into(), JsonValue::Arr(buckets)),
    ])
}

#[allow(clippy::too_many_arguments)]
fn worker_main(
    mut factory: RuntimeFactory,
    recovery_spec: Option<RecoverySpec>,
    mut service: Box<dyn Service>,
    requests: Receiver<()>,
    commands: Receiver<Command>,
    reports: SyncSender<Report>,
    counters: Arc<TenantCounters>,
    request_times: PauseHistogram,
    series: TimeSeries,
    used_bytes: Arc<AtomicU64>,
) {
    let mut failed: Option<String> = None;
    let mut recovery: Option<Recovery> = None;
    let mut request_seq: u64 = 0;
    let mut replayed: u64 = 0;
    let mut rt = match &recovery_spec {
        // Recovery-enabled boot: restore from the checkpoint (if asked
        // and present), reattach the service, replay the journal suffix.
        Some(spec) => match recovery::boot(spec, &mut factory, &mut service) {
            Ok(boot) => {
                recovery = Some(boot.recovery);
                request_seq = boot.request_seq;
                replayed = boot.replayed;
                boot.rt
            }
            Err(message) => {
                failed = Some(format!("recovery: {message}"));
                factory.build()
            }
        },
        None => {
            let mut rt = factory.build();
            if let Err(error) = service.setup(&mut rt) {
                failed = Some(format!("setup: {error}"));
            }
            rt.release_registers();
            rt
        }
    };

    while let Ok(command) = commands.recv() {
        let mut processed = 0;
        match command {
            Command::Round { max_requests } => {
                while failed.is_none() && processed < max_requests {
                    if requests.try_recv().is_err() {
                        break;
                    }
                    // Write-ahead: the request's sequence number hits
                    // the journal before the service can touch the heap,
                    // so replay after a crash covers every request that
                    // might have mutated state.
                    if let Some(rec) = recovery.as_mut() {
                        if let Err(message) = rec.note_admitted() {
                            failed = Some(message);
                            break;
                        }
                    }
                    // The span goes out on the *worker* bus, so any GC,
                    // prune or cycle spans the request provokes nest
                    // under it — a prune storm is traceable to the
                    // request that triggered exhaustion.
                    let span = rt.telemetry().span("request", request_seq);
                    let started = Instant::now();
                    let outcome = service.handle(&mut rt, request_seq);
                    request_times.record_nanos(
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                    drop(span);
                    match outcome {
                        Ok(()) => {
                            request_seq += 1;
                            processed += 1;
                            counters.note_processed();
                            // An idle register file before the history
                            // fingerprint, so the recorded state is the
                            // same pure function of `request_seq` that
                            // replay recomputes.
                            rt.release_registers();
                            if let Some(rec) = recovery.as_mut() {
                                if let Err(message) = rec.note_served(&mut rt, request_seq) {
                                    failed = Some(message);
                                }
                            }
                        }
                        Err(error) => {
                            failed = Some(format!("request {request_seq}: {error}"));
                            rt.release_registers();
                        }
                    }
                }
                // Marking progresses even when the queue is empty: a few
                // quanta per round keep an in-flight incremental cycle
                // moving toward its flush for idle tenants too. No-op
                // unless the spec enabled incremental marking.
                rt.step_incremental(4);
            }
            Command::ForceCollect => {
                rt.force_gc();
            }
            Command::Reclaim { target_bytes } => {
                rt.reclaim_to(target_bytes);
            }
            Command::Postmortem { trigger, context } => {
                let ctx = PostmortemContext {
                    timeseries: Some(series_window_json(&series)),
                    arbiter: context,
                };
                rt.write_postmortem_with(&trigger, &ctx);
            }
            Command::Checkpoint => {
                if let Some(rec) = recovery.as_mut() {
                    if let Err(message) = rec.checkpoint(&mut rt, request_seq) {
                        failed.get_or_insert(format!("checkpoint: {message}"));
                    }
                }
            }
            Command::Migrate => {
                if let Some(rec) = recovery.as_mut() {
                    match rec.migrate(&mut rt, request_seq, &mut factory, &mut service) {
                        Ok(fresh) => rt = fresh,
                        Err(message) => {
                            failed.get_or_insert(format!("migrate: {message}"));
                        }
                    }
                }
            }
            Command::Shutdown => {
                let report = report_of(&rt, 0, failed.clone(), recovery.as_ref(), replayed);
                used_bytes.store(report.used_bytes, Ordering::Relaxed);
                let _ = reports.send(report);
                break;
            }
        }
        let report = report_of(&rt, processed, failed.clone(), recovery.as_ref(), replayed);
        used_bytes.store(report.used_bytes, Ordering::Relaxed);
        if reports.send(report).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::offer;
    use lp_workloads::{HealthyService, LeakyService};

    fn spec(service: Box<dyn Service>) -> TenantSpec {
        TenantSpec::new("t", service).queue_capacity(128)
    }

    #[test]
    fn a_round_drains_at_most_the_service_rate() {
        let mut worker = TenantWorker::spawn(spec(Box::new(HealthyService::new()))).unwrap();
        for _ in 0..10 {
            assert!(offer(&worker.queue, &worker.counters, false).is_none());
        }
        assert!(worker.send(Command::Round { max_requests: 4 }));
        let report = worker.wait().unwrap();
        assert_eq!(report.processed, 4);
        assert_eq!(worker.counters.processed(), 4);
        assert_eq!(worker.counters.queue_depth(), 6);
        worker.join();
    }

    #[test]
    fn force_collect_reports_post_collection_usage() {
        let mut worker = TenantWorker::spawn(spec(Box::new(LeakyService::new()))).unwrap();
        for _ in 0..64 {
            let _ = offer(&worker.queue, &worker.counters, false);
        }
        worker.send(Command::Round { max_requests: 64 });
        let busy = worker.wait().unwrap();
        worker.send(Command::ForceCollect);
        let collected = worker.wait().unwrap();
        assert!(collected.gc_count > busy.gc_count);
        assert_eq!(collected.processed, 0);
        worker.join();
    }

    #[test]
    fn incremental_tenant_serves_a_leak_without_failing() {
        let mut worker =
            TenantWorker::spawn(spec(Box::new(LeakyService::new())).incremental_mark(256)).unwrap();
        let mut processed = 0;
        for _ in 0..40 {
            for _ in 0..64 {
                let _ = offer(&worker.queue, &worker.counters, false);
            }
            worker.send(Command::Round { max_requests: 64 });
            processed += worker.wait().unwrap().processed;
        }
        let report = &worker.last_report;
        assert!(report.failed.is_none(), "{report:?}");
        assert!(processed > 0);
        assert!(report.gc_count > 0, "collections ran incrementally");
        worker.join();
    }

    #[test]
    fn checkpoint_then_recover_replays_to_identical_history() {
        let dir = std::env::temp_dir().join(format!("lp-server-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tempdir");
        let spec_for = |recover: bool| {
            TenantSpec::new("t", Box::new(LeakyService::new()))
                .queue_capacity(256)
                .recovery_dir(dir.clone())
                .history_every(16)
                .recover(recover)
        };

        let mut worker = TenantWorker::spawn(spec_for(false)).unwrap();
        let serve_rounds = |worker: &mut TenantWorker, rounds: usize| {
            for _ in 0..rounds {
                for _ in 0..64 {
                    let _ = offer(&worker.queue, &worker.counters, false);
                }
                worker.send(Command::Round { max_requests: 64 });
                worker.wait().unwrap();
            }
        };
        serve_rounds(&mut worker, 3);
        worker.send(Command::Checkpoint);
        let report = worker.wait().unwrap();
        assert!(report.failed.is_none(), "{report:?}");
        let checkpoint = report.last_checkpoint.clone().expect("checkpoint path");
        assert!(std::path::Path::new(&checkpoint).exists());
        serve_rounds(&mut worker, 3);
        worker.join();
        let before = std::fs::read_to_string(dir.join("t.history")).expect("history");
        assert!(!before.is_empty());

        // "Crash" recovery: a fresh worker restores the checkpoint,
        // replays the 192-request journal suffix through a fresh
        // service, and regenerates byte-identical history.
        let mut worker = TenantWorker::spawn(spec_for(true)).unwrap();
        worker.send(Command::ForceCollect);
        let report = worker.wait().unwrap();
        assert!(report.failed.is_none(), "{report:?}");
        assert_eq!(report.replayed, 192);
        assert_eq!(report.restored_from.as_deref(), Some(checkpoint.as_str()));
        worker.join();
        let after = std::fs::read_to_string(dir.join("t.history")).expect("history");
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrate_swaps_in_a_restored_runtime_without_losing_state() {
        let dir = std::env::temp_dir().join(format!("lp-server-migrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tempdir");
        let spec = TenantSpec::new("t", Box::new(LeakyService::new()))
            .queue_capacity(256)
            .recovery_dir(dir.clone())
            .history_every(16);

        let mut worker = TenantWorker::spawn(spec).unwrap();
        for _ in 0..3 {
            for _ in 0..64 {
                let _ = offer(&worker.queue, &worker.counters, false);
            }
            worker.send(Command::Round { max_requests: 64 });
            worker.wait().unwrap();
        }
        let used_before = worker.last_report.used_bytes;
        worker.send(Command::Migrate);
        let report = worker.wait().unwrap();
        assert!(report.failed.is_none(), "{report:?}");
        assert!(report.restored_from.is_some(), "migration never ran");
        assert_eq!(report.used_bytes, used_before);
        // The migrated runtime keeps serving.
        for _ in 0..64 {
            let _ = offer(&worker.queue, &worker.counters, false);
        }
        worker.send(Command::Round { max_requests: 64 });
        let report = worker.wait().unwrap();
        assert!(report.failed.is_none(), "{report:?}");
        assert_eq!(report.processed, 64);
        worker.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reclaim_command_prunes_a_leaky_tenant() {
        let mut worker = TenantWorker::spawn(spec(Box::new(LeakyService::new()))).unwrap();
        // Push enough leaked sessions that the heap cannot fit the
        // target without pruning.
        for _ in 0..4 {
            for _ in 0..128 {
                let _ = offer(&worker.queue, &worker.counters, false);
            }
            worker.send(Command::Round { max_requests: 128 });
            worker.wait().unwrap();
        }
        worker.send(Command::Reclaim {
            target_bytes: 8 * 1024,
        });
        let report = worker.wait().unwrap();
        assert!(report.pruned_refs > 0, "reclaim never pruned: {report:?}");
        assert!(report.used_bytes <= 8 * 1024, "missed target: {report:?}");
        worker.join();
    }
}
