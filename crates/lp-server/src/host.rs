//! The multi-tenant host: lockstep round loop over tenant workers.
//!
//! A round has four phases, each deterministic given the seed:
//!
//! 1. **Admission** — the open-loop generator offers each tenant its
//!    arrivals for the round; arrivals are admitted to the bounded queue
//!    or shed (emitting `TenantAdmit` / `TenantShed` events).
//! 2. **Service** — every worker is told to serve up to its service
//!    rate (zero while quarantined); the host waits for every report,
//!    making the round a barrier.
//! 3. **Arbitration** — the global arbiter inspects the fleet and
//!    forces collections, pruning, quarantines or resumes (emitting
//!    `ArbiterAction` events).
//! 4. **Publication** — aggregate and per-tenant state is stored into
//!    the shared ops snapshot for `/metrics` and `/tenants`.

use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lp_telemetry::json::JsonValue;
use lp_telemetry::{Event, Telemetry};

use crate::admission::{offer, RejectReason};
use crate::arbiter::{Arbiter, ArbiterPolicy, TenantControl, TenantView};
use crate::config::{HostConfig, TenantSpec};
use crate::loadgen;
use crate::ops::{OpsServer, OpsState, TenantOps, TenantState};
use crate::tenant::{Command, TenantWorker};

/// Consecutive heap-trend buckets that must grow monotonically before the
/// host emits a [`Event::LeakSuspected`] for a tenant.
const TREND_WINDOWS: usize = 4;

/// Why a host could not be constructed.
#[derive(Debug)]
pub enum HostError {
    /// No tenants were supplied.
    NoTenants,
    /// The tenants' byte budgets add up to more than the host limit.
    BudgetOverCommitted {
        /// Sum of the registered tenant budgets.
        budgeted: u64,
        /// The configured host limit.
        host_limit: u64,
    },
    /// Spawning a worker or binding the ops listener failed.
    Io(std::io::Error),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::NoTenants => write!(f, "a host needs at least one tenant"),
            HostError::BudgetOverCommitted {
                budgeted,
                host_limit,
            } => write!(
                f,
                "tenant budgets total {budgeted} bytes, over the host limit of {host_limit}"
            ),
            HostError::Io(error) => write!(f, "host i/o: {error}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<std::io::Error> for HostError {
    fn from(error: std::io::Error) -> HostError {
        HostError::Io(error)
    }
}

/// Final per-tenant accounting, returned by [`Host::summary`].
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Lifecycle state at summary time.
    pub state: TenantState,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed because the queue was full.
    pub shed_queue_full: u64,
    /// Requests shed while quarantined.
    pub shed_quarantined: u64,
    /// Requests processed.
    pub processed: u64,
    /// Live bytes at the last report.
    pub used_bytes: u64,
    /// Collections run.
    pub gc_count: u64,
    /// Collections that pruned at least one reference.
    pub prune_events: u64,
    /// Total references pruned.
    pub pruned_refs: u64,
    /// Times the arbiter quarantined this tenant.
    pub quarantines: u64,
}

/// The running host.
pub struct Host {
    cfg: HostConfig,
    workers: Vec<TenantWorker>,
    arbiter: Arbiter,
    round: u64,
    telemetry: Telemetry,
    ops_state: Arc<OpsState>,
    ops_server: Option<OpsServer>,
}

/// Adapter giving the arbiter command-driven control over the worker
/// fleet.
struct WorkerControl<'a> {
    workers: &'a mut Vec<TenantWorker>,
}

impl TenantControl for WorkerControl<'_> {
    fn tenant_count(&self) -> usize {
        self.workers.len()
    }

    fn view(&self, index: usize) -> TenantView {
        let w = &self.workers[index];
        TenantView {
            used_bytes: w.last_report.used_bytes,
            budget_bytes: w.byte_budget,
            prune_events: w.last_report.prune_events,
            quarantined: w.quarantined,
            finished: !w.active(),
        }
    }

    fn force_collect(&mut self, index: usize) -> u64 {
        let w = &mut self.workers[index];
        if w.send(Command::ForceCollect) {
            w.wait();
        }
        w.last_report.used_bytes
    }

    fn force_prune(&mut self, index: usize, target_bytes: u64) -> u64 {
        let w = &mut self.workers[index];
        if w.send(Command::Reclaim { target_bytes }) {
            w.wait();
        }
        w.last_report.used_bytes
    }

    fn set_quarantined(&mut self, index: usize, quarantined: bool) {
        self.workers[index].quarantined = quarantined;
    }
}

impl Host {
    /// Boots a host: validates the budget registry, spawns one worker
    /// per tenant, and starts the ops plane if configured.
    pub fn new(cfg: HostConfig, specs: Vec<TenantSpec>) -> Result<Host, HostError> {
        if specs.is_empty() {
            return Err(HostError::NoTenants);
        }
        let budgeted: u64 = specs.iter().map(|s| s.byte_budget).sum();
        if budgeted > cfg.host_limit {
            return Err(HostError::BudgetOverCommitted {
                budgeted,
                host_limit: cfg.host_limit,
            });
        }

        let mut workers = Vec::with_capacity(specs.len());
        for spec in specs {
            workers.push(TenantWorker::spawn(spec)?);
        }

        let tenants = workers
            .iter()
            .map(|w| {
                TenantOps::new(
                    w.name.clone(),
                    Arc::clone(&w.counters),
                    w.sink.clone(),
                    w.pauses.clone(),
                    w.requests.clone(),
                    w.series.clone(),
                    Arc::clone(&w.used_bytes),
                    w.queue.clone(),
                )
            })
            .collect();
        let ops_state = Arc::new(OpsState {
            shutdown: AtomicBool::new(false),
            round: AtomicU64::new(0),
            aggregate_bytes: AtomicU64::new(0),
            host_limit: cfg.host_limit,
            tenants,
        });
        let ops_server = match &cfg.ops_addr {
            Some(addr) => Some(OpsServer::start(addr, Arc::clone(&ops_state))?),
            None => None,
        };

        let telemetry = Telemetry::new();
        if let Some(path) = &cfg.trace_path {
            telemetry.add_sink(Box::new(lp_telemetry::JsonlSink::create(path)?));
        }

        let policy = ArbiterPolicy {
            host_limit: cfg.host_limit,
            high_water: cfg.high_water,
            storm_threshold: cfg.storm_threshold,
            cooldown_rounds: cfg.cooldown_rounds,
        };
        let arbiter = Arbiter::new(policy, workers.len());

        Ok(Host {
            cfg,
            workers,
            arbiter,
            round: 0,
            telemetry,
            ops_state,
            ops_server,
        })
    }

    /// The host-plane telemetry bus (`TenantAdmit`, `TenantShed`,
    /// `ArbiterAction` events); attach sinks before running rounds.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The bound address of the ops plane, if enabled.
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops_server.as_ref().map(|s| s.addr)
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Live bytes summed across all tenant heaps, as of the last round.
    pub fn aggregate_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.last_report.used_bytes).sum()
    }

    /// The current `/metrics` exposition (also served over HTTP when the
    /// ops plane is enabled).
    pub fn metrics(&self) -> String {
        self.ops_state.metrics()
    }

    /// Whether every tenant has finished its schedule or failed.
    pub fn all_done(&self) -> bool {
        self.workers.iter().all(|w| !w.active())
    }

    /// Whether a shutdown has been requested (via [`Host::shutdown`] or
    /// `POST /shutdown` on the ops plane).
    pub fn shutdown_requested(&self) -> bool {
        self.ops_state.shutdown.load(Ordering::Relaxed)
    }

    /// Runs one lockstep round: admission, service, arbitration,
    /// publication. Returns the number of requests processed across the
    /// fleet this round.
    pub fn run_round(&mut self) -> u64 {
        self.round += 1;
        let round = self.round;
        // The round span brackets all four phases on the host bus; the
        // per-tenant service spans below nest under it.
        let _round_span = self.telemetry.span("round", round);

        // Phase 1: admission.
        for (index, w) in self.workers.iter_mut().enumerate() {
            if !w.active() {
                continue;
            }
            let mut arrivals =
                loadgen::arrivals(self.cfg.seed, index as u64, round, w.arrival_rate);
            if let Some(total) = w.total_requests {
                arrivals = arrivals.min(total.saturating_sub(w.offered));
            }
            w.offered += arrivals;
            let mut admitted = 0u64;
            let mut queue_full = 0u64;
            let mut quarantined = 0u64;
            for _ in 0..arrivals {
                match offer(&w.queue, &w.counters, w.quarantined) {
                    None => admitted += 1,
                    Some(RejectReason::QueueFull) => queue_full += 1,
                    Some(RejectReason::Quarantined) => quarantined += 1,
                }
            }
            let tenant = &w.name;
            if admitted > 0 {
                self.telemetry.emit(|| Event::TenantAdmit {
                    round,
                    tenant: tenant.clone(),
                    admitted,
                });
            }
            if queue_full + quarantined > 0 {
                self.telemetry.emit(|| Event::TenantShed {
                    round,
                    tenant: tenant.clone(),
                    queue_full,
                    quarantined,
                });
                // The host-plane shed decision also lands in the tenant's
                // heap-trend series (whose clock is the worker bus).
                w.series.fold_sheds(queue_full + quarantined);
            }
        }

        // Phase 2: service. Every worker gets a command and owes a
        // report — the recv loop is the round barrier.
        for w in &self.workers {
            let max_requests = if w.quarantined || !w.active() {
                0
            } else {
                w.service_rate
            };
            w.send(Command::Round { max_requests });
        }
        let mut processed_this_round = 0;
        for (index, w) in self.workers.iter_mut().enumerate() {
            // One service span per tenant while the host waits on its
            // report; the waits are sequential, so the spans nest cleanly
            // under the round span.
            let service_span = self.telemetry.span("service", index as u64);
            match w.wait() {
                Some(report) => processed_this_round += report.processed,
                None => {
                    if w.failed.is_none() {
                        w.failed = Some("worker thread lost".into());
                    }
                }
            }
            drop(service_span);
            w.update_finished();
        }

        // Phase 3: arbitration.
        let actions = {
            let mut control = WorkerControl {
                workers: &mut self.workers,
            };
            self.arbiter.rebalance(round, &mut control)
        };
        let limit_bytes = self.cfg.host_limit;
        for action in &actions {
            let tenant = self.workers[action.tenant].name.clone();
            self.telemetry.emit(|| Event::ArbiterAction {
                round,
                tenant,
                action: action.action,
                used_bytes: action.used_bytes,
                aggregate_bytes: action.aggregate_bytes,
                limit_bytes,
            });
        }

        // Leak-trend poll: a tenant whose retained bytes grew monotonically
        // across the last TREND_WINDOWS buckets is a leak suspect. The
        // flag gives the event an edge trigger — one LeakSuspected per
        // sustained trend, re-armed when the trend breaks (a prune or a
        // genuine release).
        let mut leak_edges: Vec<usize> = Vec::new();
        for (index, w) in self.workers.iter_mut().enumerate() {
            match w.series.leak_trend(TREND_WINDOWS) {
                Some(trend) if !w.leak_flagged => {
                    w.leak_flagged = true;
                    leak_edges.push(index);
                    let tenant = &w.name;
                    self.telemetry.emit(|| Event::LeakSuspected {
                        tenant: tenant.clone(),
                        windows: trend.windows,
                        from_bytes: trend.from_bytes,
                        to_bytes: trend.to_bytes,
                    });
                }
                Some(_) => {}
                None => w.leak_flagged = false,
            }
        }

        // Postmortem dispatch: an operator request, a fresh quarantine,
        // or a new leak suspicion asks the tenant's worker for one
        // bundle, stamped with the host's view of the round. At most one
        // bundle per tenant per round; a tenant without a configured
        // postmortem directory answers without writing anything.
        let mut triggers: Vec<(usize, &str)> = Vec::new();
        for index in 0..self.workers.len() {
            if self.ops_state.tenants[index].take_postmortem_request() {
                triggers.push((index, "manual"));
            }
        }
        for action in &actions {
            if action.action == "quarantine" && !triggers.iter().any(|(i, _)| *i == action.tenant) {
                triggers.push((action.tenant, "quarantine"));
            }
        }
        for index in leak_edges {
            if !triggers.iter().any(|(i, _)| *i == index) {
                triggers.push((index, "leak_suspected"));
            }
        }
        if !triggers.is_empty() {
            let aggregate = self.aggregate_bytes();
            for (index, trigger) in triggers {
                let context = JsonValue::Obj(vec![
                    ("round".into(), JsonValue::from_u64(round)),
                    ("aggregate_bytes".into(), JsonValue::from_u64(aggregate)),
                    ("host_limit_bytes".into(), JsonValue::from_u64(limit_bytes)),
                ]);
                let w = &mut self.workers[index];
                if w.send(Command::Postmortem {
                    trigger: trigger.to_owned(),
                    context: Some(context),
                }) {
                    w.wait();
                }
            }
        }

        // Recovery dispatch: operator-requested checkpoints and
        // migrations run at the barrier, where the worker is between
        // requests — the quiescent point the checkpoint format requires.
        for index in 0..self.workers.len() {
            if self.ops_state.tenants[index].take_checkpoint_request() {
                let w = &mut self.workers[index];
                if w.send(Command::Checkpoint) {
                    w.wait();
                }
            }
            if self.ops_state.tenants[index].take_migrate_request() {
                let w = &mut self.workers[index];
                if w.send(Command::Migrate) {
                    w.wait();
                }
            }
        }

        // Phase 4: publication (after postmortem dispatch, so a bundle
        // written this round is visible on the ops plane this round).
        self.publish();
        processed_this_round
    }

    /// Copies the fleet state into the shared ops snapshot.
    fn publish(&self) {
        self.ops_state.round.store(self.round, Ordering::Relaxed);
        self.ops_state
            .aggregate_bytes
            .store(self.aggregate_bytes(), Ordering::Relaxed);
        for (w, ops) in self.workers.iter().zip(&self.ops_state.tenants) {
            let state = if w.failed.is_some() {
                TenantState::Failed
            } else if w.finished {
                TenantState::Finished
            } else if w.quarantined {
                TenantState::Quarantined
            } else {
                TenantState::Running
            };
            ops.set_state(state);
            ops.set_prune_events(w.last_report.prune_events);
            ops.set_postmortems(
                w.last_report.postmortem_count,
                w.last_report.postmortem_path.clone(),
            );
            ops.set_recovery(
                w.last_report.replayed,
                w.last_report.last_checkpoint.clone(),
                w.last_report.restored_from.clone(),
            );
        }
    }

    /// Runs rounds until every tenant is done (or `max_rounds` is hit);
    /// returns the number of rounds executed.
    pub fn run_to_completion(&mut self, max_rounds: u64) -> u64 {
        let start = self.round;
        while !self.all_done() && self.round - start < max_rounds {
            self.run_round();
        }
        self.round - start
    }

    /// Serves rounds until a shutdown is requested (listen mode: tenants
    /// usually have no built-in arrival schedule and requests come from
    /// `POST /inject`). Paces rounds with a small sleep so an idle host
    /// does not spin.
    pub fn serve(&mut self) {
        while !self.shutdown_requested() {
            self.run_round();
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Final accounting for every tenant, in boot order.
    pub fn summary(&self) -> Vec<TenantSummary> {
        self.workers
            .iter()
            .enumerate()
            .map(|(index, w)| TenantSummary {
                name: w.name.clone(),
                state: self.ops_state.tenants[index].state(),
                admitted: w.counters.admitted(),
                shed_queue_full: w.counters.shed_queue_full(),
                shed_quarantined: w.counters.shed_quarantined(),
                processed: w.counters.processed(),
                used_bytes: w.last_report.used_bytes,
                gc_count: w.last_report.gc_count,
                prune_events: w.last_report.prune_events,
                pruned_refs: w.last_report.pruned_refs,
                quarantines: self.arbiter.quarantine_count(index),
            })
            .collect()
    }

    /// Stops the ops plane and joins every worker thread.
    pub fn shutdown(&mut self) {
        self.ops_state.shutdown.store(true, Ordering::Relaxed);
        if let Some(server) = &mut self.ops_server {
            server.join();
        }
        for w in &mut self.workers {
            w.join();
        }
        self.publish();
    }
}

impl Drop for Host {
    fn drop(&mut self) {
        self.shutdown();
    }
}
