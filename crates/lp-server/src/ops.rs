//! The wire-visible ops plane: a hand-rolled HTTP/1.1 endpoint over
//! `std::net::TcpListener`.
//!
//! Routes:
//!
//! - `GET /healthz` — liveness probe, returns `ok`.
//! - `GET /metrics` — Prometheus text exposition: every tenant's runtime
//!   metrics merged into one page with a `tenant` label, followed by the
//!   host-plane `lp_server_*` families (admission, shedding, state).
//! - `GET /tenants` — JSON snapshot of every tenant: state, live bytes,
//!   prune events, queue depth, reject counts.
//! - `GET /timeseries` — JSON heap-trend series per tenant: fixed-capacity
//!   ring of per-interval buckets (live bytes/objects, edge-table bytes,
//!   collections, prunes, sheds, pause percentiles), oldest first.
//! - `GET /postmortems` — JSON list of postmortem bundles per tenant:
//!   how many have been written and where the latest one landed.
//! - `POST /inject?tenant=NAME&n=N` — external admission: offers `N`
//!   requests to the named tenant through the same bounded queue the
//!   built-in generator uses (load generators drive this).
//! - `POST /postmortem?tenant=NAME` — asks the named tenant's worker to
//!   write a postmortem bundle at the next round barrier (202; the
//!   bundle lands asynchronously, visible via `GET /postmortems`).
//! - `POST /checkpoint?tenant=NAME` — asks a recovery-enabled tenant to
//!   write a checkpoint file at the next round barrier (a quiescent
//!   point); the path appears as `last_checkpoint` on `GET /tenants`.
//! - `POST /migrate?tenant=NAME` — live migration: checkpoint, restore
//!   the file into a fresh runtime, replay the journal suffix, swap.
//!   The source checkpoint appears as `restored_from` on `GET /tenants`.
//! - `POST /shutdown` — asks the host to stop serving.
//!
//! The server is deliberately minimal: one accept loop, blocking reads
//! with a timeout, `Connection: close` on every response. It shares
//! state with the round loop only through atomics and
//! [`PrometheusSink`] handles, so scrapes never stall a round.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lp_telemetry::json::JsonValue;
use lp_telemetry::{escape_label_value, PauseHistogram, PrometheusSink, TimeSeries};

use crate::admission::{offer, RejectReason, TenantCounters};

/// Tenant lifecycle states as exposed on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// Serving requests.
    Running,
    /// Quarantined by the arbiter; arrivals are shed.
    Quarantined,
    /// Schedule complete, backlog drained.
    Finished,
    /// The service returned a fatal error.
    Failed,
}

impl TenantState {
    /// Stable wire label.
    pub fn tag(self) -> &'static str {
        match self {
            TenantState::Running => "running",
            TenantState::Quarantined => "quarantined",
            TenantState::Finished => "finished",
            TenantState::Failed => "failed",
        }
    }

    fn code(self) -> u8 {
        match self {
            TenantState::Running => 0,
            TenantState::Quarantined => 1,
            TenantState::Finished => 2,
            TenantState::Failed => 3,
        }
    }

    fn from_code(code: u8) -> TenantState {
        match code {
            1 => TenantState::Quarantined,
            2 => TenantState::Finished,
            3 => TenantState::Failed,
            _ => TenantState::Running,
        }
    }
}

/// One tenant's share of the ops-plane state.
pub(crate) struct TenantOps {
    pub name: String,
    pub counters: Arc<TenantCounters>,
    pub sink: PrometheusSink,
    pub pauses: PauseHistogram,
    pub requests: PauseHistogram,
    pub series: TimeSeries,
    pub used_bytes: Arc<AtomicU64>,
    pub queue: SyncSender<()>,
    state: AtomicU8,
    prune_events: AtomicU64,
    postmortems: AtomicU64,
    last_postmortem: Mutex<Option<String>>,
    postmortem_requested: AtomicBool,
    replayed: AtomicU64,
    last_checkpoint: Mutex<Option<String>>,
    restored_from: Mutex<Option<String>>,
    checkpoint_requested: AtomicBool,
    migrate_requested: AtomicBool,
}

impl TenantOps {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: String,
        counters: Arc<TenantCounters>,
        sink: PrometheusSink,
        pauses: PauseHistogram,
        requests: PauseHistogram,
        series: TimeSeries,
        used_bytes: Arc<AtomicU64>,
        queue: SyncSender<()>,
    ) -> TenantOps {
        TenantOps {
            name,
            counters,
            sink,
            pauses,
            requests,
            series,
            used_bytes,
            queue,
            state: AtomicU8::new(TenantState::Running.code()),
            prune_events: AtomicU64::new(0),
            postmortems: AtomicU64::new(0),
            last_postmortem: Mutex::new(None),
            postmortem_requested: AtomicBool::new(false),
            replayed: AtomicU64::new(0),
            last_checkpoint: Mutex::new(None),
            restored_from: Mutex::new(None),
            checkpoint_requested: AtomicBool::new(false),
            migrate_requested: AtomicBool::new(false),
        }
    }

    pub fn state(&self) -> TenantState {
        TenantState::from_code(self.state.load(Ordering::Relaxed))
    }

    pub fn set_state(&self, state: TenantState) {
        self.state.store(state.code(), Ordering::Relaxed);
    }

    pub fn prune_events(&self) -> u64 {
        self.prune_events.load(Ordering::Relaxed)
    }

    pub fn set_prune_events(&self, events: u64) {
        self.prune_events.store(events, Ordering::Relaxed);
    }

    /// Publishes the tenant's postmortem tally (cumulative count and
    /// latest bundle path) from the worker's last report.
    pub fn set_postmortems(&self, count: u64, path: Option<String>) {
        self.postmortems.store(count, Ordering::Relaxed);
        if path.is_some() {
            if let Ok(mut last) = self.last_postmortem.lock() {
                *last = path;
            }
        }
    }

    pub fn postmortem_count(&self) -> u64 {
        self.postmortems.load(Ordering::Relaxed)
    }

    pub fn last_postmortem_path(&self) -> Option<String> {
        self.last_postmortem
            .lock()
            .ok()
            .and_then(|last| last.clone())
    }

    /// Arms the operator-requested postmortem flag (`POST /postmortem`);
    /// the round loop drains it at the next barrier.
    pub fn request_postmortem(&self) {
        self.postmortem_requested.store(true, Ordering::Relaxed);
    }

    /// Takes (and clears) the operator-requested postmortem flag.
    pub fn take_postmortem_request(&self) -> bool {
        self.postmortem_requested.swap(false, Ordering::Relaxed)
    }

    /// Publishes the tenant's recovery tally from the worker's last
    /// report: boot-replay count, latest checkpoint path, and the
    /// checkpoint this runtime was restored from (if any). Paths stick
    /// once known, like the postmortem path.
    pub fn set_recovery(
        &self,
        replayed: u64,
        last_checkpoint: Option<String>,
        restored_from: Option<String>,
    ) {
        self.replayed.store(replayed, Ordering::Relaxed);
        if last_checkpoint.is_some() {
            if let Ok(mut last) = self.last_checkpoint.lock() {
                *last = last_checkpoint;
            }
        }
        if restored_from.is_some() {
            if let Ok(mut from) = self.restored_from.lock() {
                *from = restored_from;
            }
        }
    }

    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    pub fn last_checkpoint_path(&self) -> Option<String> {
        self.last_checkpoint.lock().ok().and_then(|p| p.clone())
    }

    pub fn restored_from_path(&self) -> Option<String> {
        self.restored_from.lock().ok().and_then(|p| p.clone())
    }

    /// Arms the operator-requested checkpoint flag (`POST /checkpoint`);
    /// the round loop drains it at the next barrier — a quiescent point.
    pub fn request_checkpoint(&self) {
        self.checkpoint_requested.store(true, Ordering::Relaxed);
    }

    /// Takes (and clears) the operator-requested checkpoint flag.
    pub fn take_checkpoint_request(&self) -> bool {
        self.checkpoint_requested.swap(false, Ordering::Relaxed)
    }

    /// Arms the operator-requested migration flag (`POST /migrate`).
    pub fn request_migrate(&self) {
        self.migrate_requested.store(true, Ordering::Relaxed);
    }

    /// Takes (and clears) the operator-requested migration flag.
    pub fn take_migrate_request(&self) -> bool {
        self.migrate_requested.swap(false, Ordering::Relaxed)
    }
}

/// State shared between the round loop and the ops server.
pub(crate) struct OpsState {
    pub shutdown: AtomicBool,
    pub round: AtomicU64,
    pub aggregate_bytes: AtomicU64,
    pub host_limit: u64,
    pub tenants: Vec<TenantOps>,
}

impl OpsState {
    /// Renders the merged `/metrics` exposition.
    pub fn metrics(&self) -> String {
        let parts: Vec<(&str, &PrometheusSink)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), &t.sink))
            .collect();
        let mut out = PrometheusSink::merged_exposition("tenant", &parts);
        self.render_host_families(&mut out);
        let pauses: Vec<(&str, &PauseHistogram)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), &t.pauses))
            .collect();
        out.push_str(&PauseHistogram::merged_quantiles(
            "lp_pause_nanos",
            "Mutator pause time in nanoseconds (collections and mark quanta).",
            "tenant",
            &pauses,
        ));
        let requests: Vec<(&str, &PauseHistogram)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), &t.requests))
            .collect();
        out.push_str(&PauseHistogram::merged_quantiles(
            "lp_server_request_nanos",
            "Request service time in nanoseconds.",
            "tenant",
            &requests,
        ));
        out
    }

    /// Appends the host-plane `lp_server_*` families.
    fn render_host_families(&self, out: &mut String) {
        use std::fmt::Write as _;

        fn family(out: &mut String, name: &str, help: &str, kind: &str) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
        family(
            out,
            "lp_server_admitted_total",
            "Requests admitted to the tenant's queue.",
            "counter",
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "lp_server_admitted_total{{tenant=\"{}\"}} {}",
                escape_label_value(&t.name),
                t.counters.admitted()
            );
        }
        family(
            out,
            "lp_server_shed_total",
            "Requests shed at admission, by reason.",
            "counter",
        );
        for t in &self.tenants {
            for (reason, count) in [
                (RejectReason::QueueFull, t.counters.shed_queue_full()),
                (RejectReason::Quarantined, t.counters.shed_quarantined()),
            ] {
                let _ = writeln!(
                    out,
                    "lp_server_shed_total{{tenant=\"{}\",reason=\"{}\"}} {}",
                    escape_label_value(&t.name),
                    reason.tag(),
                    count
                );
            }
        }
        family(
            out,
            "lp_server_processed_total",
            "Requests the tenant's worker has completed.",
            "counter",
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "lp_server_processed_total{{tenant=\"{}\"}} {}",
                escape_label_value(&t.name),
                t.counters.processed()
            );
        }
        family(
            out,
            "lp_server_queue_depth",
            "Requests admitted but not yet processed.",
            "gauge",
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "lp_server_queue_depth{{tenant=\"{}\"}} {}",
                escape_label_value(&t.name),
                t.counters.queue_depth()
            );
        }
        family(
            out,
            "lp_server_tenant_state",
            "1 for the tenant's current state, 0 otherwise.",
            "gauge",
        );
        for t in &self.tenants {
            let current = t.state();
            for state in [
                TenantState::Running,
                TenantState::Quarantined,
                TenantState::Finished,
                TenantState::Failed,
            ] {
                let _ = writeln!(
                    out,
                    "lp_server_tenant_state{{tenant=\"{}\",state=\"{}\"}} {}",
                    escape_label_value(&t.name),
                    state.tag(),
                    u64::from(state == current)
                );
            }
        }
        family(
            out,
            "lp_server_round",
            "Rounds the host has completed.",
            "counter",
        );
        let _ = writeln!(
            out,
            "lp_server_round {}",
            self.round.load(Ordering::Relaxed)
        );
        family(
            out,
            "lp_server_aggregate_bytes",
            "Live bytes summed across all tenant heaps.",
            "gauge",
        );
        let _ = writeln!(
            out,
            "lp_server_aggregate_bytes {}",
            self.aggregate_bytes.load(Ordering::Relaxed)
        );
        family(
            out,
            "lp_server_host_limit_bytes",
            "The hard aggregate memory limit the arbiter defends.",
            "gauge",
        );
        let _ = writeln!(out, "lp_server_host_limit_bytes {}", self.host_limit);
    }

    /// Renders the `/tenants` JSON snapshot.
    pub fn tenants_json(&self) -> String {
        let tenants: Vec<JsonValue> = self
            .tenants
            .iter()
            .map(|t| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(t.name.clone())),
                    ("state".into(), JsonValue::Str(t.state().tag().into())),
                    (
                        "used_bytes".into(),
                        JsonValue::from_u64(t.used_bytes.load(Ordering::Relaxed)),
                    ),
                    ("prune_events".into(), JsonValue::from_u64(t.prune_events())),
                    (
                        "admitted".into(),
                        JsonValue::from_u64(t.counters.admitted()),
                    ),
                    (
                        "processed".into(),
                        JsonValue::from_u64(t.counters.processed()),
                    ),
                    (
                        "queue_depth".into(),
                        JsonValue::from_u64(t.counters.queue_depth()),
                    ),
                    (
                        "shed_queue_full".into(),
                        JsonValue::from_u64(t.counters.shed_queue_full()),
                    ),
                    (
                        "shed_quarantined".into(),
                        JsonValue::from_u64(t.counters.shed_quarantined()),
                    ),
                    (
                        "postmortem_count".into(),
                        JsonValue::from_u64(t.postmortem_count()),
                    ),
                    (
                        "last_postmortem".into(),
                        t.last_postmortem_path()
                            .map_or(JsonValue::Null, JsonValue::Str),
                    ),
                    ("replayed".into(), JsonValue::from_u64(t.replayed())),
                    (
                        "last_checkpoint".into(),
                        t.last_checkpoint_path()
                            .map_or(JsonValue::Null, JsonValue::Str),
                    ),
                    (
                        "restored_from".into(),
                        t.restored_from_path()
                            .map_or(JsonValue::Null, JsonValue::Str),
                    ),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            (
                "round".into(),
                JsonValue::from_u64(self.round.load(Ordering::Relaxed)),
            ),
            (
                "aggregate_bytes".into(),
                JsonValue::from_u64(self.aggregate_bytes.load(Ordering::Relaxed)),
            ),
            (
                "host_limit_bytes".into(),
                JsonValue::from_u64(self.host_limit),
            ),
            ("tenants".into(), JsonValue::Arr(tenants)),
        ])
        .to_string()
    }

    /// Renders the `GET /timeseries` JSON: every tenant's heap-trend
    /// buckets, oldest first, plus the bucket interval so clients can
    /// place windows on a wall clock.
    pub fn timeseries_json(&self) -> String {
        let tenants: Vec<JsonValue> = self
            .tenants
            .iter()
            .map(|t| {
                let buckets: Vec<JsonValue> = t
                    .series
                    .snapshot()
                    .into_iter()
                    .map(|b| {
                        JsonValue::Obj(vec![
                            ("window".into(), JsonValue::from_u64(b.window)),
                            ("live_bytes".into(), JsonValue::from_u64(b.live_bytes)),
                            ("live_objects".into(), JsonValue::from_u64(b.live_objects)),
                            (
                                "edge_table_bytes".into(),
                                JsonValue::from_u64(b.edge_table_bytes),
                            ),
                            ("collections".into(), JsonValue::from_u64(b.collections)),
                            ("pruned_refs".into(), JsonValue::from_u64(b.pruned_refs)),
                            ("sheds".into(), JsonValue::from_u64(b.sheds)),
                            (
                                "pause_p50_nanos".into(),
                                JsonValue::from_u64(b.pause_p50_nanos),
                            ),
                            (
                                "pause_p95_nanos".into(),
                                JsonValue::from_u64(b.pause_p95_nanos),
                            ),
                            (
                                "pause_p99_nanos".into(),
                                JsonValue::from_u64(b.pause_p99_nanos),
                            ),
                        ])
                    })
                    .collect();
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(t.name.clone())),
                    (
                        "interval_nanos".into(),
                        JsonValue::from_u64(
                            u64::try_from(t.series.interval().as_nanos()).unwrap_or(u64::MAX),
                        ),
                    ),
                    ("buckets".into(), JsonValue::Arr(buckets)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            (
                "round".into(),
                JsonValue::from_u64(self.round.load(Ordering::Relaxed)),
            ),
            ("tenants".into(), JsonValue::Arr(tenants)),
        ])
        .to_string()
    }

    /// Renders the `GET /postmortems` JSON: per tenant, how many
    /// bundles exist and where the most recent one was written.
    pub fn postmortems_json(&self) -> String {
        let tenants: Vec<JsonValue> = self
            .tenants
            .iter()
            .map(|t| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(t.name.clone())),
                    ("count".into(), JsonValue::from_u64(t.postmortem_count())),
                    (
                        "path".into(),
                        t.last_postmortem_path()
                            .map_or(JsonValue::Null, JsonValue::Str),
                    ),
                ])
            })
            .collect();
        JsonValue::Obj(vec![("tenants".into(), JsonValue::Arr(tenants))]).to_string()
    }

    /// Handles `POST /postmortem`: arms the named tenant's request flag.
    /// Returns `false` for an unknown tenant.
    fn request_postmortem(&self, name: &str) -> bool {
        match self.tenants.iter().find(|t| t.name == name) {
            Some(tenant) => {
                tenant.request_postmortem();
                true
            }
            None => false,
        }
    }

    /// Handles `POST /checkpoint`: arms the named tenant's checkpoint
    /// flag. Returns `false` for an unknown tenant.
    fn request_checkpoint(&self, name: &str) -> bool {
        match self.tenants.iter().find(|t| t.name == name) {
            Some(tenant) => {
                tenant.request_checkpoint();
                true
            }
            None => false,
        }
    }

    /// Handles `POST /migrate`: arms the named tenant's migration flag.
    /// Returns `false` for an unknown tenant.
    fn request_migrate(&self, name: &str) -> bool {
        match self.tenants.iter().find(|t| t.name == name) {
            Some(tenant) => {
                tenant.request_migrate();
                true
            }
            None => false,
        }
    }

    /// Handles `POST /inject`: offers `n` requests to tenant `name`.
    /// Returns `(admitted, shed)` or `None` for an unknown tenant.
    fn inject(&self, name: &str, n: u64) -> Option<(u64, u64)> {
        let tenant = self.tenants.iter().find(|t| t.name == name)?;
        let mut admitted = 0;
        let mut shed = 0;
        for _ in 0..n {
            let quarantined = tenant.state() == TenantState::Quarantined;
            match offer(&tenant.queue, &tenant.counters, quarantined) {
                None => admitted += 1,
                Some(_) => shed += 1,
            }
        }
        Some((admitted, shed))
    }
}

/// Handle to the running ops server thread.
pub(crate) struct OpsServer {
    pub addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `addr` and starts the accept loop. The loop polls the
    /// shared shutdown flag between accepts, so `shutdown` + join never
    /// hangs.
    pub fn start(addr: &str, state: Arc<OpsState>) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let thread = std::thread::Builder::new()
            .name("lp-server-ops".into())
            .spawn(move || accept_loop(listener, state))?;
        Ok(OpsServer {
            addr: local,
            thread: Some(thread),
        })
    }

    /// Joins the accept loop (the shutdown flag must already be set).
    pub fn join(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<OpsState>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, &state),
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads the request head (start line + headers). Bodies are ignored —
/// every mutating route carries its arguments in the query string.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }
    String::from_utf8(head).ok()
}

/// One `key=value` pair from a query string (no percent-decoding; tenant
/// names on this plane are plain identifiers).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, state: &Arc<OpsState>) {
    let Some(head) = read_request_head(&mut stream) else {
        return;
    };
    let Some(start_line) = head.lines().next() else {
        return;
    };
    let mut parts = start_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "bad request\n",
        );
        return;
    };
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    match (method, path) {
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        ("GET", "/metrics") => {
            let body = state.metrics();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        ("GET", "/tenants") => {
            let body = state.tenants_json();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        ("GET", "/timeseries") => {
            let body = state.timeseries_json();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        ("GET", "/postmortems") => {
            let body = state.postmortems_json();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        ("POST", "/postmortem") => {
            let name = query_param(query, "tenant").unwrap_or("");
            if state.request_postmortem(name) {
                respond(
                    &mut stream,
                    "202 Accepted",
                    "application/json",
                    "{\"requested\":true}",
                );
            } else {
                respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "unknown tenant\n",
                );
            }
        }
        ("POST", "/checkpoint") => {
            let name = query_param(query, "tenant").unwrap_or("");
            if state.request_checkpoint(name) {
                respond(
                    &mut stream,
                    "202 Accepted",
                    "application/json",
                    "{\"requested\":true}",
                );
            } else {
                respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "unknown tenant\n",
                );
            }
        }
        ("POST", "/migrate") => {
            let name = query_param(query, "tenant").unwrap_or("");
            if state.request_migrate(name) {
                respond(
                    &mut stream,
                    "202 Accepted",
                    "application/json",
                    "{\"requested\":true}",
                );
            } else {
                respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "unknown tenant\n",
                );
            }
        }
        ("POST", "/inject") => {
            let name = query_param(query, "tenant").unwrap_or("");
            let n = query_param(query, "n")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(1);
            match state.inject(name, n) {
                Some((admitted, shed)) => {
                    let body = format!("{{\"admitted\":{admitted},\"shed\":{shed}}}");
                    respond(&mut stream, "200 OK", "application/json", &body);
                }
                None => respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "unknown tenant\n",
                ),
            }
        }
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::Relaxed);
            respond(&mut stream, "200 OK", "text/plain", "shutting down\n");
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn test_state() -> Arc<OpsState> {
        let (tx, rx) = sync_channel::<()>(4);
        // Keep the receiver alive so the queue stays connected; the test
        // only exercises the sender side.
        std::mem::forget(rx);
        let tenant = TenantOps::new(
            "alpha".into(),
            Arc::new(TenantCounters::new()),
            PrometheusSink::new(),
            PauseHistogram::new(),
            PauseHistogram::new(),
            TimeSeries::new(Duration::from_millis(25), 16),
            Arc::new(AtomicU64::new(1234)),
            tx,
        );
        Arc::new(OpsState {
            shutdown: AtomicBool::new(false),
            round: AtomicU64::new(7),
            aggregate_bytes: AtomicU64::new(1234),
            host_limit: 1 << 20,
            tenants: vec![tenant],
        })
    }

    #[test]
    fn metrics_carry_tenant_and_host_families() {
        let state = test_state();
        let text = state.metrics();
        assert!(text.contains("lp_collections_total{tenant=\"alpha\"} 0"));
        assert!(text.contains("lp_server_admitted_total{tenant=\"alpha\"} 0"));
        assert!(text.contains("lp_server_host_limit_bytes 1048576"));
        assert!(text.contains("lp_server_tenant_state{tenant=\"alpha\",state=\"running\"} 1"));
        // HELP appears once per family even with host families appended.
        let helps = text.matches("# HELP lp_server_admitted_total").count();
        assert_eq!(helps, 1);
    }

    #[test]
    fn metrics_include_quantile_families() {
        let state = test_state();
        state.tenants[0].pauses.record_nanos(1000);
        state.tenants[0].requests.record_nanos(5000);
        let text = state.metrics();
        assert!(text.contains("# TYPE lp_pause_nanos gauge"));
        assert!(text.contains("lp_pause_nanos{tenant=\"alpha\",quantile=\"0.5\"} 1000"));
        assert!(text.contains("lp_pause_nanos_count{tenant=\"alpha\"} 1"));
        assert!(text.contains("lp_server_request_nanos{tenant=\"alpha\",quantile=\"0.99\"} 5000"));
        assert!(text.contains("lp_server_request_nanos_count{tenant=\"alpha\"} 1"));
    }

    #[test]
    fn timeseries_json_is_parseable() {
        let state = test_state();
        state.tenants[0].series.fold_sheds(2);
        let parsed = lp_telemetry::json::parse(&state.timeseries_json()).unwrap();
        assert_eq!(parsed.get("round").unwrap().as_u64(), Some(7));
        let tenants = parsed.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(
            tenants[0].get("interval_nanos").unwrap().as_u64(),
            Some(25_000_000)
        );
        let buckets = tenants[0].get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("sheds").unwrap().as_u64(), Some(2));
        assert_eq!(buckets[0].get("live_bytes").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn tenants_json_is_parseable_and_complete() {
        let state = test_state();
        let parsed = lp_telemetry::json::parse(&state.tenants_json()).unwrap();
        assert_eq!(parsed.get("round").unwrap().as_u64(), Some(7));
        let tenants = parsed.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(tenants[0].get("state").unwrap().as_str(), Some("running"));
        assert_eq!(tenants[0].get("used_bytes").unwrap().as_u64(), Some(1234));
        assert_eq!(
            tenants[0].get("postmortem_count").unwrap().as_u64(),
            Some(0)
        );
        assert!(matches!(
            tenants[0].get("last_postmortem"),
            Some(JsonValue::Null)
        ));
    }

    #[test]
    fn postmortem_tally_round_trips_through_json() {
        let state = test_state();
        state.tenants[0].set_postmortems(2, Some("/tmp/postmortem-latest.jsonl".into()));
        let parsed = lp_telemetry::json::parse(&state.postmortems_json()).unwrap();
        let tenants = parsed.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants[0].get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(tenants[0].get("count").unwrap().as_u64(), Some(2));
        assert_eq!(
            tenants[0].get("path").unwrap().as_str(),
            Some("/tmp/postmortem-latest.jsonl")
        );
        // A later report with no bundle keeps the last known path.
        state.tenants[0].set_postmortems(2, None);
        assert_eq!(
            state.tenants[0].last_postmortem_path().as_deref(),
            Some("/tmp/postmortem-latest.jsonl")
        );
    }

    #[test]
    fn postmortem_request_flag_is_edge_triggered() {
        let state = test_state();
        assert!(!state.tenants[0].take_postmortem_request());
        assert!(state.request_postmortem("alpha"));
        assert!(!state.request_postmortem("missing"));
        assert!(state.tenants[0].take_postmortem_request());
        assert!(!state.tenants[0].take_postmortem_request(), "flag drained");
    }

    #[test]
    fn inject_respects_queue_bounds_and_quarantine() {
        let state = test_state();
        let (admitted, shed) = state.inject("alpha", 6).unwrap();
        assert_eq!((admitted, shed), (4, 2), "queue holds 4");
        state.tenants[0].set_state(TenantState::Quarantined);
        let (admitted, shed) = state.inject("alpha", 3).unwrap();
        assert_eq!((admitted, shed), (0, 3));
        assert!(state.inject("missing", 1).is_none());
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(query_param("tenant=a&n=5", "tenant"), Some("a"));
        assert_eq!(query_param("tenant=a&n=5", "n"), Some("5"));
        assert_eq!(query_param("tenant=a", "n"), None);
    }
}
