//! Terminal ASCII line charts, enough to eyeball the shape of the paper's
//! figures straight from the experiment binaries.

use crate::series::Series;

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

/// A fixed-size character-grid chart of one or more series.
///
/// # Example
///
/// ```
/// use lp_metrics::{AsciiChart, Series};
///
/// let mut s = Series::new("leak");
/// for i in 0..50 { s.push(i as f64, i as f64); }
/// let chart = AsciiChart::new(40, 10).log_x(false);
/// let text = chart.render(&[&s]);
/// assert!(text.contains('*'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_x: bool,
}

impl AsciiChart {
    /// Creates a chart with a plotting area of `width` x `height`
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "chart must have positive area");
        AsciiChart {
            width,
            height,
            log_x: false,
        }
    }

    /// Plots x on a log10 axis (several of the paper's figures use a
    /// logarithmic x-axis). Points with `x <= 0` are dropped.
    pub fn log_x(mut self, enabled: bool) -> Self {
        self.log_x = enabled;
        self
    }

    /// Renders the series onto the grid, with a y-axis scale and a legend.
    pub fn render(&self, series: &[&Series]) -> String {
        let transform = |x: f64| if self.log_x { x.log10() } else { x };

        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min: f64 = 0.0; // charts anchor at zero like the paper's
        let mut y_max = f64::NEG_INFINITY;
        for s in series {
            for (x, y) in s.points() {
                if self.log_x && *x <= 0.0 {
                    continue;
                }
                let tx = transform(*x);
                x_min = x_min.min(tx);
                x_max = x_max.max(tx);
                y_min = y_min.min(*y);
                y_max = y_max.max(*y);
            }
        }
        if !x_min.is_finite() || !y_max.is_finite() {
            return String::from("(no data)\n");
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for (x, y) in s.points() {
                if self.log_x && *x <= 0.0 {
                    continue;
                }
                let tx = transform(*x);
                let col =
                    (((tx - x_min) / (x_max - x_min)) * (self.width - 1) as f64).round() as usize;
                let row =
                    (((y - y_min) / (y_max - y_min)) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row.min(self.height - 1);
                grid[row][col.min(self.width - 1)] = mark;
            }
        }

        let mut out = String::new();
        // Small-magnitude axes (e.g. seconds per iteration) need scientific
        // notation to stay legible.
        let scientific = y_max.abs().max(y_min.abs()) < 0.1;
        for (i, row) in grid.iter().enumerate() {
            let value = y_max - (y_max - y_min) * i as f64 / (self.height - 1) as f64;
            if scientific {
                out.push_str(&format!("{value:>10.2e} |"));
            } else {
                out.push_str(&format!("{value:>10.1} |"));
            }
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(self.width)));
        let x_label = if self.log_x {
            format!("{:>10}  10^{:.1} .. 10^{:.1}", "", x_min, x_max)
        } else {
            format!("{:>10}  {:.1} .. {:.1}", "", x_min, x_max)
        };
        out.push_str(&x_label);
        out.push('\n');
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!(
                "{:>12} {} = {}\n",
                "",
                MARKS[si % MARKS.len()],
                s.label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_marks_and_legend() {
        let mut s = Series::new("memory");
        for i in 1..100 {
            s.push(i as f64, (i % 10) as f64);
        }
        let text = AsciiChart::new(60, 12).render(&[&s]);
        assert!(text.contains('*'));
        assert!(text.contains("memory"));
        assert_eq!(text.lines().count(), 12 + 2 + 1);
    }

    #[test]
    fn empty_series_render_placeholder() {
        let s = Series::new("empty");
        let text = AsciiChart::new(10, 5).render(&[&s]);
        assert_eq!(text, "(no data)\n");
    }

    #[test]
    fn log_axis_drops_nonpositive_x() {
        let mut s = Series::new("log");
        s.push(0.0, 1.0); // dropped
        s.push(1.0, 1.0);
        s.push(1000.0, 5.0);
        let text = AsciiChart::new(30, 5).log_x(true).render(&[&s]);
        assert!(text.contains("10^0.0 .. 10^3.0"));
    }

    #[test]
    fn two_series_use_distinct_marks() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let mut b = Series::new("b");
        b.push(2.0, 2.0);
        let text = AsciiChart::new(20, 5).render(&[&a, &b]);
        assert!(text.contains('*') && text.contains('+'));
    }
}
