//! Measurement plumbing for the leak-pruning experiment harness: labelled
//! series, aligned text tables, CSV emission, and terminal ASCII charts for
//! regenerating the paper's figures.
//!
//! # Example
//!
//! ```
//! use lp_metrics::{Series, TextTable};
//!
//! let mut s = Series::new("reachable MB");
//! s.push(1.0, 10.0);
//! s.push(2.0, 20.0);
//! assert_eq!(s.len(), 2);
//!
//! let mut table = TextTable::new(vec!["Leak".into(), "Iterations".into()]);
//! table.row(vec!["ListLeak".into(), "2700000".into()]);
//! assert!(table.render().contains("ListLeak"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod csv;
mod series;
mod table;

pub use chart::AsciiChart;
pub use csv::write_csv;
pub use series::Series;
pub use table::TextTable;
