//! Minimal CSV emission for experiment outputs.

use std::io::{self, Write};

use crate::series::Series;

/// Writes one or more series sharing an x column as CSV:
/// `x,label1,label2,...`. Series are joined on point index when their x
/// values diverge (each row takes the x of the first series that has a
/// point at that index); missing values are left empty.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_csv<W: Write>(writer: &mut W, x_label: &str, series: &[&Series]) -> io::Result<()> {
    write!(writer, "{}", escape(x_label))?;
    for s in series {
        write!(writer, ",{}", escape(s.label()))?;
    }
    writeln!(writer)?;

    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series.iter().find_map(|s| s.points().get(i).map(|p| p.0));
        match x {
            Some(x) => write!(writer, "{x}")?,
            None => write!(writer, "")?,
        }
        for s in series {
            match s.points().get(i) {
                Some((_, y)) => write!(writer, ",{y}")?,
                None => write!(writer, ",")?,
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_joined_series() {
        let mut a = Series::new("base");
        a.extend([(1.0, 10.0), (2.0, 20.0)]);
        let mut b = Series::new("pruned");
        b.extend([(1.0, 5.0)]);

        let mut out = Vec::new();
        write_csv(&mut out, "iteration", &[&a, &b]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "iteration,base,pruned");
        assert_eq!(lines[1], "1,10,5");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn escapes_labels_with_commas() {
        let s = Series::new("a,b");
        let mut out = Vec::new();
        write_csv(&mut out, "x", &[&s]).unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("x,\"a,b\""));
    }
}
