//! Minimal CSV emission for experiment outputs.

use std::io::{self, Write};

use crate::series::Series;

/// Writes one or more series sharing an x column as CSV:
/// `x,label1,label2,...`. Series are joined on point index when their x
/// values diverge (each row takes the x of the first series that has a
/// point at that index); missing values are left empty.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_csv<W: Write>(writer: &mut W, x_label: &str, series: &[&Series]) -> io::Result<()> {
    write!(writer, "{}", escape(x_label))?;
    for s in series {
        write!(writer, ",{}", escape(s.label()))?;
    }
    writeln!(writer)?;

    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series.iter().find_map(|s| s.points().get(i).map(|p| p.0));
        match x {
            Some(x) => write!(writer, "{x}")?,
            None => write!(writer, "")?,
        }
        for s in series {
            match s.points().get(i) {
                Some((_, y)) => write!(writer, ",{y}")?,
                None => write!(writer, ",")?,
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

fn escape(field: &str) -> String {
    // RFC 4180: quote fields containing separators, quotes, or either line
    // ending ('\r' alone still breaks naive consumers), doubling quotes.
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_joined_series() {
        let mut a = Series::new("base");
        a.extend([(1.0, 10.0), (2.0, 20.0)]);
        let mut b = Series::new("pruned");
        b.extend([(1.0, 5.0)]);

        let mut out = Vec::new();
        write_csv(&mut out, "iteration", &[&a, &b]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "iteration,base,pruned");
        assert_eq!(lines[1], "1,10,5");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn escapes_labels_with_commas() {
        let s = Series::new("a,b");
        let mut out = Vec::new();
        write_csv(&mut out, "x", &[&s]).unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("x,\"a,b\""));
    }

    fn header_for(label: &str) -> String {
        let s = Series::new(label);
        let mut out = Vec::new();
        write_csv(&mut out, "x", &[&s]).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_owned()
    }

    #[test]
    fn generic_class_names_pass_through_quoted() {
        // Edge-type labels are class-name pairs; generics carry commas.
        assert_eq!(
            header_for("java.util.Map<K,V> -> Entry<K,V>"),
            "x,\"java.util.Map<K,V> -> Entry<K,V>\""
        );
        // Angle brackets alone need no quoting.
        assert_eq!(header_for("List<T>"), "x,List<T>");
    }

    #[test]
    fn embedded_quotes_are_doubled() {
        assert_eq!(header_for("say \"hi\""), "x,\"say \"\"hi\"\"\"");
    }

    #[test]
    fn newlines_and_carriage_returns_are_quoted() {
        assert_eq!(header_for("two\nlines"), "x,\"two");
        let s = Series::new("cr\rhere");
        let mut out = Vec::new();
        write_csv(&mut out, "x", &[&s]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("x,\"cr\rhere\""), "{text:?}");
    }

    #[test]
    fn quoted_x_label_too() {
        assert!(header_for_x("time,s").starts_with("\"time,s\""));
    }

    fn header_for_x(x_label: &str) -> String {
        let s = Series::new("y");
        let mut out = Vec::new();
        write_csv(&mut out, x_label, &[&s]).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_owned()
    }
}
