//! Aligned text tables for paper-style output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator under the
    /// header.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Leak".into(), "Effect".into()]);
        t.row(vec!["ListLeak".into(), "Runs indefinitely".into()]);
        t.row(vec!["DualLeak".into(), "No help".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Leak"));
        let col = lines[2].find("Runs").unwrap();
        assert_eq!(lines[3].find("No help").unwrap(), col);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["A".into()]);
        t.row(vec!["x".into(), "extra".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("extra"));
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["H".into()]);
        t.row(vec!["v".into()]);
        assert_eq!(format!("{t}"), t.render());
    }
}
