//! Labelled `(x, y)` series.

/// A labelled sequence of `(x, y)` points, e.g. reachable megabytes per
/// iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Minimum and maximum x values, if non-empty.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        range(self.points.iter().map(|p| p.0))
    }

    /// Minimum and maximum y values, if non-empty.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        range(self.points.iter().map(|p| p.1))
    }

    /// Arithmetic mean of the y values, if non-empty.
    pub fn y_mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64)
    }

    /// The last y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }

    /// Downsamples to at most `max_points` points by keeping every k-th
    /// point (always keeping the last), for plotting long runs.
    pub fn downsampled(&self, max_points: usize) -> Series {
        assert!(max_points > 0, "max_points must be positive");
        if self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut out = Series::new(self.label.clone());
        for (i, (x, y)) in self.points.iter().enumerate() {
            if i % stride == 0 || i == self.points.len() - 1 {
                out.push(*x, *y);
            }
        }
        out
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

fn range(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        any = true;
        min = min.min(v);
        max = max.max(v);
    }
    any.then_some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranges_and_mean() {
        let mut s = Series::new("t");
        s.extend([(0.0, 2.0), (1.0, 6.0), (2.0, 4.0)]);
        assert_eq!(s.x_range(), Some((0.0, 2.0)));
        assert_eq!(s.y_range(), Some((2.0, 6.0)));
        assert_eq!(s.y_mean(), Some(4.0));
        assert_eq!(s.last_y(), Some(4.0));
    }

    #[test]
    fn empty_series_has_no_ranges() {
        let s = Series::new("e");
        assert!(s.is_empty());
        assert_eq!(s.x_range(), None);
        assert_eq!(s.y_mean(), None);
    }

    #[test]
    fn downsample_keeps_last_point() {
        let mut s = Series::new("d");
        for i in 0..1000 {
            s.push(i as f64, (i * 2) as f64);
        }
        let d = s.downsampled(100);
        assert!(d.len() <= 101);
        assert_eq!(d.points().last(), Some(&(999.0, 1998.0)));
        assert_eq!(d.points()[0], (0.0, 0.0));
    }

    proptest! {
        #[test]
        fn prop_downsample_bounds(n in 1usize..2000, cap in 1usize..200) {
            let mut s = Series::new("p");
            for i in 0..n {
                s.push(i as f64, i as f64);
            }
            let d = s.downsampled(cap);
            prop_assert!(d.len() <= cap + 1);
            prop_assert!(!d.is_empty());
            // Points remain in x order.
            for w in d.points().windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }
    }
}
