//! Static heap-liveness analyzer for the workload model.
//!
//! The workloads in `lp-workloads` drive the managed runtime exclusively
//! through a small, explicit API (`rt.register_class`, `rt.alloc`,
//! `rt.write_field`, `rt.read_field`, `rt.add_static`, `rt.set_static`,
//! `rt.static_ref`). That narrow surface makes a useful *static* liveness
//! analysis tractable: this crate scans the workload sources, recovers which
//! `(class, field)` pairs are ever written and ever read back, and emits a
//! [`LivenessSummaries`] table whose `certainly_dead` verdicts feed the
//! pruning engine's hybrid SELECT policy (see the `leak-pruning` crate).
//!
//! # Approach
//!
//! Sources are scrubbed with `lp-check`'s lexer (comments and literal bodies
//! blanked, `#[cfg(test)]` ranges removed), tokenized, and scanned with a
//! flow-insensitive abstract interpreter over a tiny binding domain:
//!
//! * `Class(name)` — the result of `rt.register_class("name")`;
//! * `Handle(name)` — the result of `rt.alloc(class, ..)` or of
//!   `rt.static_ref(slot)` where the slot provably holds one class;
//! * `Static(id)` — the result of `rt.add_static()`;
//! * `Opaque` — anything else.
//!
//! Locals bind in their enclosing brace scope; `self.field` bindings bind in
//! their enclosing `impl` block. Everything the scanner cannot resolve
//! degrades toward **Live** via taint, never toward Dead:
//!
//! * a read whose *field index* is not a literal/const taints the receiver's
//!   class (all its fields are considered read);
//! * a read whose *receiver* is not resolvable taints the whole file (every
//!   class the file touches is considered read);
//! * a class registered from more than one file is considered read (handles
//!   may flow between files, which the per-file scan cannot track).
//!
//! A `(class, field)` pair with at least one resolvable write, no observed
//! read, and no taint is `certainly_dead`: the program never loads that
//! field outside test code, so references stored there can never be
//! followed. Unresolvable *writes* are simply dropped — missing a write
//! cannot create a spurious Dead verdict, only a missing entry.
//!
//! The summary file is deterministic (sorted by `(class, field)`) and is
//! regenerated / diffed in CI by the `lp-liveness` binary (`--check`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::path::{Path, PathBuf};

use leak_pruning::{LivenessSummaries, LivenessVerdict, SummaryEntry};
use lp_check::Scrubbed;

/// Result of analyzing a set of workload sources.
pub struct Analysis {
    /// Per-(class, field) access summaries with liveness verdicts, sorted.
    pub summaries: LivenessSummaries,
    /// Files that contained a read with an unresolvable receiver; every
    /// class such a file touches is forced Live.
    pub tainted_files: Vec<String>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Str(String),
    Punct(char),
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    off: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize scrubbed code. String literal *values* are read back from the
/// original source at the same offsets, because the scrubber blanks literal
/// bodies (it preserves byte offsets exactly, so the spans line up).
fn tokenize(blanked: &str, original: &str) -> Vec<Token> {
    let bytes = blanked.as_bytes();
    let orig = original.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_start(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Token {
                tok: Tok::Ident(blanked[start..i].to_string()),
                off: start,
            });
        } else if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let digits: String = blanked[start..i].chars().filter(|c| *c != '_').collect();
            // Strip a type suffix like `u64` / `usize` if present.
            let numeric: String = digits.chars().take_while(char::is_ascii_digit).collect();
            let value = numeric.parse::<u64>().unwrap_or(u64::MAX);
            toks.push(Token {
                tok: Tok::Int(value),
                off: start,
            });
        } else if b == b'"' {
            // The scrubber blanks string contents but keeps both quotes, and
            // blanked contents contain no escapes, so the next quote closes.
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            let end = i.min(bytes.len());
            let value = if end > start + 1 && end <= orig.len() {
                String::from_utf8_lossy(&orig[start + 1..end]).into_owned()
            } else {
                String::new()
            };
            toks.push(Token {
                tok: Tok::Str(value),
                off: start,
            });
            i = end + 1;
        } else if b.is_ascii() {
            toks.push(Token {
                tok: Tok::Punct(b as char),
                off: i,
            });
            i += 1;
        } else {
            i += 1; // non-ASCII outside literals/comments: skip defensively
        }
    }
    toks
}

/// Blank the `#[cfg(test)]` ranges of a scrubbed file with spaces
/// (preserving newlines so offsets and line numbers stay stable).
fn blank_test_ranges(scrubbed: &Scrubbed) -> String {
    let mut out: Vec<u8> = scrubbed.code.bytes().collect();
    let len = out.len();
    for &(start, end) in &scrubbed.test_ranges {
        for slot in out.iter_mut().take(end.min(len)).skip(start) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Per-file scanner
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Binding {
    /// A class id from `rt.register_class("name")`.
    Class(String),
    /// An object handle whose class is known.
    Handle(String),
    /// A static slot id from `rt.add_static()` (keyed by token offset).
    Static(usize),
    /// Anything the analysis cannot resolve.
    Opaque,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum SlotState {
    Holds(String),
    Conflicted,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ScopeKind {
    Plain,
    Impl,
    Fn(String),
}

struct Scope {
    kind: ScopeKind,
    bindings: HashMap<String, Binding>,
}

/// Everything the scanner learned about one file.
#[derive(Default)]
struct FileFacts {
    registered: BTreeSet<String>,
    /// (class, field, phase) per resolvable write site.
    writes: Vec<(String, usize, String)>,
    /// (class, field) per resolvable read site.
    reads: Vec<(String, usize)>,
    /// Classes read through an unresolvable field index.
    class_taint: BTreeSet<String>,
    /// A read had an unresolvable receiver: treat every class this file
    /// touches as read.
    file_taint: bool,
}

impl FileFacts {
    fn touched_classes(&self) -> BTreeSet<String> {
        let mut all = self.registered.clone();
        all.extend(self.writes.iter().map(|(c, _, _)| c.clone()));
        all.extend(self.reads.iter().map(|(c, _)| c.clone()));
        all.extend(self.class_taint.iter().cloned());
        all
    }
}

struct Scanner<'a> {
    toks: &'a [Token],
    consts: HashMap<String, u64>,
    scopes: Vec<Scope>,
    pending: Option<ScopeKind>,
    slots: HashMap<usize, SlotState>,
    facts: FileFacts,
}

impl<'a> Scanner<'a> {
    fn new(toks: &'a [Token]) -> Self {
        Scanner {
            toks,
            consts: HashMap::new(),
            scopes: vec![Scope {
                kind: ScopeKind::Plain,
                bindings: HashMap::new(),
            }],
            pending: None,
            slots: HashMap::new(),
            facts: FileFacts::default(),
        }
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    fn lookup(&self, name: &str) -> Binding {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.bindings.get(name) {
                return b.clone();
            }
        }
        Binding::Opaque
    }

    fn bind_local(&mut self, name: &str, binding: Binding) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.bindings.insert(name.to_string(), binding);
        }
    }

    /// Bind `self.field` into the nearest enclosing `impl` scope so two impl
    /// blocks with the same field name do not collide.
    fn bind_self(&mut self, field: &str, binding: Binding) {
        let key = format!("self.{field}");
        for scope in self.scopes.iter_mut().rev() {
            if scope.kind == ScopeKind::Impl {
                scope.bindings.insert(key, binding);
                return;
            }
        }
        if let Some(scope) = self.scopes.first_mut() {
            scope.bindings.insert(key, binding);
        }
    }

    fn current_fn(&self) -> String {
        for scope in self.scopes.iter().rev() {
            if let ScopeKind::Fn(name) = &scope.kind {
                return name.clone();
            }
        }
        "top".to_string()
    }

    /// Find the matching close bracket for the open bracket at `open`,
    /// tracking `()[]{}` depth. Returns the index of the closer.
    fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            if let Tok::Punct(p) = t.tok {
                match p {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Split the token range `[start, end)` at top-level commas.
    fn split_args(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut item_start = start;
        for i in start..end {
            if let Tok::Punct(p) = self.toks[i].tok {
                match p {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ',' if depth == 0 => {
                        args.push((item_start, i));
                        item_start = i + 1;
                    }
                    _ => {}
                }
            }
        }
        if item_start < end {
            args.push((item_start, end));
        }
        args
    }

    /// Resolve a field-index expression: an integer literal or a module
    /// const. Anything else is unresolved.
    fn resolve_index(&self, start: usize, end: usize) -> Option<usize> {
        let mut e = end;
        while e > start && self.punct_at(e - 1, '?') {
            e -= 1;
        }
        if e != start + 1 {
            return None;
        }
        match &self.toks[start].tok {
            Tok::Int(v) => usize::try_from(*v).ok(),
            Tok::Ident(name) => self
                .consts
                .get(name)
                .copied()
                .and_then(|v| usize::try_from(v).ok()),
            _ => None,
        }
    }

    /// Check that `[start, end)` is a chain of value-preserving suffixes:
    /// `.expect(..)`, `.unwrap()`, `.clone()`, or a trailing `?`.
    fn benign_suffixes(&self, mut start: usize, end: usize) -> bool {
        loop {
            if start == end {
                return true;
            }
            if self.punct_at(start, '?') {
                start += 1;
                continue;
            }
            if self.punct_at(start, '.') {
                if let Some(m) = self.ident_at(start + 1) {
                    if matches!(m, "expect" | "unwrap" | "clone") && self.punct_at(start + 2, '(') {
                        if let Some(close) = self.matching_close(start + 2) {
                            if close < end {
                                start = close + 1;
                                continue;
                            }
                        }
                    }
                }
            }
            return false;
        }
    }

    /// Resolve the value of an expression in `[start, end)`.
    fn resolve(&self, mut start: usize, mut end: usize) -> Binding {
        // Strip leading borrows and `mut`.
        while start < end && (self.punct_at(start, '&') || self.ident_at(start) == Some("mut")) {
            start += 1;
        }
        while end > start && self.punct_at(end - 1, '?') {
            end -= 1;
        }
        if start >= end {
            return Binding::Opaque;
        }
        match &self.toks[start].tok {
            Tok::Ident(head) if head == "Some" && self.punct_at(start + 1, '(') => {
                match self.matching_close(start + 1) {
                    Some(close) if close == end - 1 => self.resolve(start + 2, close),
                    _ => Binding::Opaque,
                }
            }
            Tok::Ident(head) if head == "rt" && self.punct_at(start + 1, '.') => {
                let (Some(method), true) =
                    (self.ident_at(start + 2), self.punct_at(start + 3, '('))
                else {
                    return Binding::Opaque;
                };
                let Some(close) = self.matching_close(start + 3) else {
                    return Binding::Opaque;
                };
                if !self.benign_suffixes(close + 1, end) {
                    return Binding::Opaque;
                }
                let args = self.split_args(start + 4, close);
                match method {
                    "register_class" => match args.first() {
                        Some(&(a, b)) if b == a + 1 => match &self.toks[a].tok {
                            Tok::Str(name) => Binding::Class(name.clone()),
                            _ => Binding::Opaque,
                        },
                        _ => Binding::Opaque,
                    },
                    "add_static" => Binding::Static(self.toks[start + 2].off),
                    "alloc" => match args.first().map(|&(a, b)| self.resolve(a, b)) {
                        Some(Binding::Class(c)) => Binding::Handle(c),
                        _ => Binding::Opaque,
                    },
                    "static_ref" => match args.first().map(|&(a, b)| self.resolve(a, b)) {
                        Some(Binding::Static(id)) => match self.slots.get(&id) {
                            Some(SlotState::Holds(c)) => Binding::Handle(c.clone()),
                            _ => Binding::Opaque,
                        },
                        _ => Binding::Opaque,
                    },
                    _ => Binding::Opaque,
                }
            }
            Tok::Ident(head) if head == "self" && self.punct_at(start + 1, '.') => {
                match self.ident_at(start + 2) {
                    Some(field) if self.benign_suffixes(start + 3, end) => {
                        self.lookup(&format!("self.{field}"))
                    }
                    _ => Binding::Opaque,
                }
            }
            Tok::Ident(name) => {
                if self.benign_suffixes(start + 1, end) {
                    self.lookup(name)
                } else {
                    Binding::Opaque
                }
            }
            _ => Binding::Opaque,
        }
    }

    /// Find the end of a right-hand side starting at `start`: the first
    /// top-level `;`, `{`, or `else`.
    fn rhs_end(&self, start: usize) -> usize {
        let mut depth = 0i32;
        for i in start..self.toks.len() {
            match &self.toks[i].tok {
                Tok::Punct(p) => match p {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' if depth == 0 => return i,
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    ';' if depth == 0 => return i,
                    _ => {}
                },
                Tok::Ident(s) if s == "else" && depth == 0 => return i,
                _ => {}
            }
        }
        self.toks.len()
    }

    /// `const NAME: TYPE = <int>;` at any nesting level.
    fn scan_const(&mut self, i: usize) {
        let Some(name) = self.ident_at(i + 1) else {
            return;
        };
        if !self.punct_at(i + 2, ':') {
            return;
        }
        // Find the `=` at bracket depth 0.
        let mut depth = 0i32;
        for j in i + 3..self.toks.len() {
            if let Tok::Punct(p) = &self.toks[j].tok {
                match p {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth == 0 => return,
                    '=' if depth == 0 => {
                        if let (Some(Tok::Int(v)), true) = (
                            self.toks.get(j + 1).map(|t| t.tok.clone()),
                            self.punct_at(j + 2, ';'),
                        ) {
                            self.consts.insert(name.to_string(), v);
                        }
                        return;
                    }
                    _ => {}
                }
            }
        }
    }

    /// `let` patterns: `let [mut] x = ..`, `let Some(x) = ..` (also the
    /// `if let` / `while let` forms, which reach here via the `let` token),
    /// and tuple destructures `let (Some(a), b, ..) = (ea, eb, ..)`.
    fn scan_let(&mut self, i: usize) {
        let mut j = i + 1;
        if self.ident_at(j) == Some("mut") {
            j += 1;
        }
        if self.ident_at(j) == Some("Some") && self.punct_at(j + 1, '(') {
            let (Some(name), true) = (self.ident_at(j + 2), self.punct_at(j + 3, ')')) else {
                return;
            };
            // Owned copy: `name` borrows `self.toks` and `bind_local` needs
            // `&mut self`.
            let name = name.to_string();
            if !self.punct_at(j + 4, '=') || self.punct_at(j + 5, '=') {
                return;
            }
            let end = self.rhs_end(j + 5);
            let value = self.resolve(j + 5, end);
            self.bind_local(&name, value);
            return;
        }
        if self.punct_at(j, '(') {
            self.scan_let_tuple(j);
            return;
        }
        let Some(name) = self.ident_at(j) else {
            return;
        };
        let name = name.to_string();
        let mut k = j + 1;
        if self.punct_at(k, ':') {
            // Skip a type ascription: find the `=` at bracket depth 0.
            let mut depth = 0i32;
            let mut found = None;
            for m in k + 1..self.toks.len() {
                if let Tok::Punct(p) = &self.toks[m].tok {
                    match p {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth -= 1,
                        ';' if depth == 0 => return,
                        '=' if depth == 0 => {
                            found = Some(m);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            match found {
                Some(m) => k = m,
                None => return,
            }
        }
        if !self.punct_at(k, '=') || self.punct_at(k + 1, '=') {
            return;
        }
        let end = self.rhs_end(k + 1);
        let value = self.resolve(k + 1, end);
        self.bind_local(&name, value);
    }

    /// `let (P1, P2, ..) = (E1, E2, ..)` — bind pairwise where each pattern
    /// is `IDENT` or `Some(IDENT)`.
    fn scan_let_tuple(&mut self, open: usize) {
        let Some(close) = self.matching_close(open) else {
            return;
        };
        if !self.punct_at(close + 1, '=') || !self.punct_at(close + 2, '(') {
            return;
        }
        let Some(rhs_close) = self.matching_close(close + 2) else {
            return;
        };
        let pats = self.split_args(open + 1, close);
        let exprs = self.split_args(close + 3, rhs_close);
        if pats.len() != exprs.len() {
            return;
        }
        let mut bindings = Vec::new();
        for (&(ps, pe), &(es, ee)) in pats.iter().zip(exprs.iter()) {
            let name = if self.ident_at(ps) == Some("Some")
                && self.punct_at(ps + 1, '(')
                && self.punct_at(ps + 3, ')')
                && pe == ps + 4
            {
                self.ident_at(ps + 2)
            } else if pe == ps + 1 {
                self.ident_at(ps)
            } else {
                None
            };
            if let Some(name) = name {
                if name != "_" {
                    bindings.push((name.to_string(), self.resolve(es, ee)));
                }
            }
        }
        for (name, value) in bindings {
            self.bind_local(&name, value);
        }
    }

    /// `self.field = <expr>;` — an impl-scoped binding.
    fn scan_self_assign(&mut self, i: usize) {
        let Some(field) = self.ident_at(i + 2) else {
            return;
        };
        if !self.punct_at(i + 3, '=') || self.punct_at(i + 4, '=') {
            return;
        }
        // Exclude compound assignment (`+=`, `>=` comparisons etc. never
        // parse here because their first char is not `=`).
        let field = field.to_string();
        let end = self.rhs_end(i + 4);
        let value = self.resolve(i + 4, end);
        self.bind_self(&field, value);
    }

    /// Record a tracked `rt.<method>(..)` call at token `i` (the `rt`).
    fn scan_rt_call(&mut self, i: usize) {
        let (Some(method), true) = (self.ident_at(i + 2), self.punct_at(i + 3, '(')) else {
            return;
        };
        let method = method.to_string();
        let Some(close) = self.matching_close(i + 3) else {
            return;
        };
        let args = self.split_args(i + 4, close);
        match method.as_str() {
            "register_class" => {
                if let Some(&(a, b)) = args.first() {
                    if b == a + 1 {
                        if let Tok::Str(name) = &self.toks[a].tok {
                            self.facts.registered.insert(name.clone());
                        }
                    }
                }
            }
            "read_field" => {
                if args.len() < 2 {
                    return;
                }
                let recv = self.resolve(args[0].0, args[0].1);
                let idx = self.resolve_index(args[1].0, args[1].1);
                match (recv, idx) {
                    (Binding::Handle(c), Some(f)) => self.facts.reads.push((c, f)),
                    (Binding::Handle(c), None) => {
                        self.facts.class_taint.insert(c);
                    }
                    _ => self.facts.file_taint = true,
                }
            }
            "write_field" => {
                if args.len() < 2 {
                    return;
                }
                let recv = self.resolve(args[0].0, args[0].1);
                let idx = self.resolve_index(args[1].0, args[1].1);
                if let (Binding::Handle(c), Some(f)) = (recv, idx) {
                    let phase = self.current_fn();
                    self.facts.writes.push((c, f, phase));
                }
                // An unresolvable write is dropped: it can lose an entry but
                // never manufacture a Dead verdict.
            }
            "set_static" => {
                if args.len() < 2 {
                    return;
                }
                let slot = self.resolve(args[0].0, args[0].1);
                let value = self.resolve(args[1].0, args[1].1);
                if let Binding::Static(id) = slot {
                    let next = match (self.slots.get(&id), value) {
                        (None, Binding::Handle(c)) => SlotState::Holds(c),
                        (Some(SlotState::Holds(prev)), Binding::Handle(c)) if *prev == c => {
                            SlotState::Holds(c)
                        }
                        _ => SlotState::Conflicted,
                    };
                    self.slots.insert(id, next);
                }
            }
            _ => {}
        }
    }

    fn run(mut self) -> FileFacts {
        let mut i = 0;
        while i < self.toks.len() {
            match &self.toks[i].tok {
                Tok::Punct('{') => {
                    let kind = self.pending.take().unwrap_or(ScopeKind::Plain);
                    self.scopes.push(Scope {
                        kind,
                        bindings: HashMap::new(),
                    });
                }
                Tok::Punct('}') if self.scopes.len() > 1 => {
                    self.scopes.pop();
                }
                Tok::Punct(';') => {
                    self.pending = None;
                }
                Tok::Ident(s) => match s.as_str() {
                    // `impl` in return position (`-> impl Iterator`) must not
                    // steal the pending `fn` scope.
                    "impl" if self.pending.is_none() => {
                        self.pending = Some(ScopeKind::Impl);
                    }
                    "fn" => {
                        if let Some(name) = self.ident_at(i + 1) {
                            self.pending = Some(ScopeKind::Fn(name.to_string()));
                        }
                    }
                    "const" => self.scan_const(i),
                    "let" => self.scan_let(i),
                    "self" if self.punct_at(i + 1, '.') => {
                        // Either `self.field = ..;` or part of an expression;
                        // scan_self_assign checks the shape itself.
                        self.scan_self_assign(i);
                    }
                    "rt" if self.punct_at(i + 1, '.') => self.scan_rt_call(i),
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        self.facts
    }
}

fn scan_file(source: &str) -> FileFacts {
    let scrubbed = Scrubbed::new(source);
    let blanked = blank_test_ranges(&scrubbed);
    let toks = tokenize(&blanked, source);
    Scanner::new(&toks).run()
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Analyze a set of `(file name, source)` pairs and compute liveness
/// verdicts. File order affects only `last_write_phase` tie-breaking, so
/// callers should pass files in a deterministic (sorted) order.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut registered_in: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut writes: BTreeMap<(String, usize), (u64, String)> = BTreeMap::new();
    let mut reads: BTreeMap<(String, usize), u64> = BTreeMap::new();
    let mut live_classes: BTreeSet<String> = BTreeSet::new();
    let mut tainted_files = Vec::new();

    for (name, source) in files {
        let facts = scan_file(source);
        for class in &facts.registered {
            registered_in
                .entry(class.clone())
                .or_default()
                .insert(name.clone());
        }
        if facts.file_taint {
            live_classes.extend(facts.touched_classes());
            tainted_files.push(name.clone());
        }
        live_classes.extend(facts.class_taint.iter().cloned());
        for (class, field, phase) in facts.writes {
            let entry = writes.entry((class, field)).or_insert((0, String::new()));
            entry.0 += 1;
            entry.1 = phase;
        }
        for (class, field) in facts.reads {
            *reads.entry((class, field)).or_insert(0) += 1;
        }
    }
    // A class registered from more than one file may leak handles across
    // files, which the per-file scan cannot follow: force it Live.
    for (class, files) in &registered_in {
        if files.len() > 1 {
            live_classes.insert(class.clone());
        }
    }

    let mut summaries = LivenessSummaries::new();
    for ((class, field), (write_count, phase)) in writes {
        let read_count = reads.get(&(class.clone(), field)).copied().unwrap_or(0);
        let verdict = if read_count > 0 || live_classes.contains(&class) {
            LivenessVerdict::Live
        } else {
            LivenessVerdict::CertainlyDead
        };
        summaries.insert_summary(SummaryEntry {
            class,
            field,
            writes: write_count,
            reads: read_count,
            last_write_phase: phase,
            verdict,
        });
    }
    Analysis {
        summaries,
        tainted_files,
        files_scanned: files.len(),
    }
}

/// Recursively collect `.rs` files under `dir` (sorted by relative path)
/// and [`analyze_sources`] them.
pub fn analyze_dir(dir: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    collect_sources(dir, dir, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(analyze_sources(&files))
}

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_sources(root, &path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            out.push((rel, source));
        }
    }
    Ok(())
}

/// The workload source directory of this workspace, for the generator
/// binary and tests.
pub fn workspace_workloads_src() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../lp-workloads/src")
}

/// Where the generated summary file is checked in.
pub fn checked_in_summaries_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../lp-workloads/liveness_summaries.jsonl")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(src: &str) -> Analysis {
        analyze_sources(&[("one.rs".to_string(), src.to_string())])
    }

    fn verdict_of(a: &Analysis, class: &str, field: usize) -> Option<LivenessVerdict> {
        a.summaries.lookup(class, field).map(|e| e.verdict)
    }

    #[test]
    fn write_never_read_is_certainly_dead_and_read_back_is_live() {
        let a = analyze_one(
            r#"
            fn setup(&mut self, rt: &mut Runtime) {
                self.reg = Some(rt.register_class("app.Registry"));
                self.rec = Some(rt.register_class("app.Record"));
            }
            fn step(&mut self, rt: &mut Runtime) {
                let rec = self.rec.expect("setup");
                let r = rt.alloc(rec, &AllocSpec::new(1, 0, 64)).unwrap();
                rt.write_field(r, 0, None);
                let g = rt.alloc(self.reg.expect("setup"), &AllocSpec::with_refs(2)).unwrap();
                rt.write_field(g, 1, Some(r));
                let _ = rt.read_field(g, 1);
            }
            "#,
        );
        assert_eq!(
            verdict_of(&a, "app.Record", 0),
            Some(LivenessVerdict::CertainlyDead)
        );
        assert_eq!(
            verdict_of(&a, "app.Registry", 1),
            Some(LivenessVerdict::Live)
        );
        let entry = a.summaries.lookup("app.Record", 0).unwrap();
        assert_eq!(entry.last_write_phase, "step");
        assert_eq!((entry.writes, entry.reads), (1, 0));
    }

    #[test]
    fn unresolved_index_taints_only_the_receiver_class() {
        let a = analyze_one(
            r#"
            const SLOT: usize = 3;
            fn step(rt: &mut Runtime, dynamic: usize) {
                let w = rt.alloc(rt.register_class("app.Window"), &AllocSpec::with_refs(8)).unwrap();
                rt.write_field(w, SLOT, None);
                let _ = rt.read_field(w, dynamic);
                let r = rt.alloc(rt.register_class("app.Record"), &AllocSpec::leaf(16)).unwrap();
                rt.write_field(r, 0, None);
            }
            "#,
        );
        assert_eq!(verdict_of(&a, "app.Window", 3), Some(LivenessVerdict::Live));
        assert_eq!(
            verdict_of(&a, "app.Record", 0),
            Some(LivenessVerdict::CertainlyDead)
        );
        assert!(a.tainted_files.is_empty());
    }

    #[test]
    fn unresolved_receiver_taints_the_whole_file() {
        let a = analyze_one(
            r#"
            fn step(rt: &mut Runtime, chain: &mut Vec<Handle>) {
                let r = rt.alloc(rt.register_class("app.Record"), &AllocSpec::leaf(16)).unwrap();
                rt.write_field(r, 0, None);
                let n = chain.pop().unwrap();
                let _ = rt.read_field(n, 0);
            }
            "#,
        );
        assert_eq!(verdict_of(&a, "app.Record", 0), Some(LivenessVerdict::Live));
        assert_eq!(a.tainted_files, vec!["one.rs".to_string()]);
    }

    #[test]
    fn class_registered_in_two_files_is_live() {
        let writer = r#"
            fn step(rt: &mut Runtime) {
                let s = rt.alloc(rt.register_class("app.Shared"), &AllocSpec::leaf(8)).unwrap();
                rt.write_field(s, 0, None);
            }
        "#;
        let other = r#"
            fn elsewhere(rt: &mut Runtime) {
                let _cls = rt.register_class("app.Shared");
            }
        "#;
        let a = analyze_sources(&[
            ("a.rs".to_string(), writer.to_string()),
            ("b.rs".to_string(), other.to_string()),
        ]);
        assert_eq!(verdict_of(&a, "app.Shared", 0), Some(LivenessVerdict::Live));
    }

    #[test]
    fn cfg_test_code_is_ignored() {
        let a = analyze_one(
            r#"
            fn step(rt: &mut Runtime) {
                let r = rt.alloc(rt.register_class("app.Record"), &AllocSpec::leaf(8)).unwrap();
                rt.write_field(r, 0, None);
            }
            #[cfg(test)]
            mod tests {
                fn poke(rt: &mut Runtime, h: Handle) {
                    let _ = rt.read_field(h, 0);
                }
            }
            "#,
        );
        // The test read has an opaque receiver, but test code is blanked, so
        // the file is not tainted and the verdict stays Dead.
        assert_eq!(
            verdict_of(&a, "app.Record", 0),
            Some(LivenessVerdict::CertainlyDead)
        );
        assert!(a.tainted_files.is_empty());
    }

    #[test]
    fn static_ref_chain_and_let_else_resolve_like_the_services() {
        let a = analyze_one(
            r#"
            impl A {
                fn setup(&mut self, rt: &mut Runtime) {
                    self.rec = Some(rt.register_class("a.Rec"));
                    let cls = rt.register_class("a.Table");
                    let root = rt.add_static();
                    self.table = Some(root);
                    let table = rt.alloc(cls, &AllocSpec::with_refs(4)).unwrap();
                    rt.write_field(table, 0, None);
                    rt.set_static(root, Some(table));
                }
                fn handle(&mut self, rt: &mut Runtime, slot: usize) {
                    let (Some(rec), Some(root)) = (self.rec, self.table) else { return; };
                    let Some(table) = rt.static_ref(root) else { return; };
                    let _ = rt.read_field(table, slot);
                    let r = rt.alloc(rec, &AllocSpec::new(1, 0, 8)).unwrap();
                    rt.write_field(r, 0, None);
                }
            }
            impl B {
                fn setup(&mut self, rt: &mut Runtime) {
                    let cls = rt.register_class("b.Table");
                    let root = rt.add_static();
                    self.table = Some(root);
                    let table = rt.alloc(cls, &AllocSpec::with_refs(4)).unwrap();
                    rt.write_field(table, 1, None);
                    rt.set_static(root, Some(table));
                }
            }
            "#,
        );
        // A's dynamic-index read of its own table taints a.Table only;
        // a.Rec.0 is written and never read; b.Table.1 is untouched by A's
        // read because `self.table` is scoped to each impl block.
        assert_eq!(verdict_of(&a, "a.Table", 0), Some(LivenessVerdict::Live));
        assert_eq!(
            verdict_of(&a, "a.Rec", 0),
            Some(LivenessVerdict::CertainlyDead)
        );
        assert_eq!(
            verdict_of(&a, "b.Table", 1),
            Some(LivenessVerdict::CertainlyDead)
        );
        assert!(a.tainted_files.is_empty());
    }

    #[test]
    fn conflicted_static_slot_makes_static_ref_opaque() {
        let a = analyze_one(
            r#"
            fn step(rt: &mut Runtime) {
                let root = rt.add_static();
                let x = rt.alloc(rt.register_class("app.X"), &AllocSpec::with_refs(1)).unwrap();
                let y = rt.alloc(rt.register_class("app.Y"), &AllocSpec::with_refs(1)).unwrap();
                rt.set_static(root, Some(x));
                rt.set_static(root, Some(y));
                let Some(back) = rt.static_ref(root) else { return; };
                let _ = rt.read_field(back, 0);
                rt.write_field(x, 0, None);
            }
            "#,
        );
        // The slot holds two classes, so the read-back receiver is opaque
        // and the whole file is tainted: app.X.0 must not be Dead.
        assert_eq!(verdict_of(&a, "app.X", 0), Some(LivenessVerdict::Live));
        assert_eq!(a.tainted_files, vec!["one.rs".to_string()]);
    }

    #[test]
    fn real_workloads_yield_exactly_the_pinned_dead_set() {
        let a = analyze_dir(&workspace_workloads_src()).expect("scan lp-workloads");
        let dead: Vec<(String, usize)> = a
            .summaries
            .entries()
            .iter()
            .filter(|e| e.verdict == LivenessVerdict::CertainlyDead)
            .map(|e| (e.class.clone(), e.field))
            .collect();
        assert_eq!(
            dead,
            vec![
                ("java.util.LinkedList$Node".to_string(), 0),
                ("mckoi.DatabaseConnection".to_string(), 0),
                ("session.Record".to_string(), 0),
            ]
        );
        // The healthy service's table and the windowed service's cache must
        // never acquire a Dead verdict: both are read back dynamically.
        assert_eq!(a.summaries.entries_for("session.Table").count(), 0);
        assert_eq!(a.summaries.entries_for("cache.Window").count(), 0);
        let order = a
            .summaries
            .lookup("spec.jbb.Order", 1)
            .expect("order entry");
        assert_eq!(order.verdict, LivenessVerdict::Live);
    }

    #[test]
    fn analysis_is_deterministic_and_round_trips_through_jsonl() {
        let a = analyze_dir(&workspace_workloads_src()).expect("scan lp-workloads");
        let b = analyze_dir(&workspace_workloads_src()).expect("scan lp-workloads");
        assert_eq!(a.summaries.to_jsonl(), b.summaries.to_jsonl());
        let reparsed = LivenessSummaries::from_jsonl(&a.summaries.to_jsonl()).expect("reparse");
        assert_eq!(reparsed.to_jsonl(), a.summaries.to_jsonl());
    }

    #[test]
    fn checked_in_summaries_match_a_fresh_regeneration() {
        let a = analyze_dir(&workspace_workloads_src()).expect("scan lp-workloads");
        let on_disk = fs::read_to_string(checked_in_summaries_path())
            .expect("read checked-in liveness_summaries.jsonl");
        assert_eq!(
            a.summaries.to_jsonl(),
            on_disk,
            "stale summaries: regenerate with `cargo run -p lp-liveness`"
        );
    }
}
