//! Generator binary for the static liveness summaries.
//!
//! Scans `crates/lp-workloads/src` and writes the per-(class, field)
//! summaries to `crates/lp-workloads/liveness_summaries.jsonl`.
//!
//! ```text
//! cargo run -p lp-liveness            # regenerate the checked-in file
//! cargo run -p lp-liveness -- --check # diff against the checked-in file
//! ```
//!
//! `--check` exits with status 2 when the checked-in file is stale, which is
//! how CI keeps the summaries honest.

#![forbid(unsafe_code)]

use std::fs;
use std::process::ExitCode;

use leak_pruning::LivenessVerdict;
use lp_liveness::{analyze_dir, checked_in_summaries_path, workspace_workloads_src};

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");
    let src = workspace_workloads_src();
    let analysis = match analyze_dir(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lp-liveness: {e}");
            return ExitCode::from(1);
        }
    };
    let dead = analysis
        .summaries
        .entries()
        .iter()
        .filter(|e| e.verdict == LivenessVerdict::CertainlyDead)
        .count();
    eprintln!(
        "lp-liveness: scanned {} files, {} summaries ({} certainly-dead), {} tainted file(s)",
        analysis.files_scanned,
        analysis.summaries.len(),
        dead,
        analysis.tainted_files.len()
    );
    for file in &analysis.tainted_files {
        eprintln!("lp-liveness:   taint: {file}");
    }

    let out_path = checked_in_summaries_path();
    let fresh = analysis.summaries.to_jsonl();
    if check {
        match fs::read_to_string(&out_path) {
            Ok(on_disk) if on_disk == fresh => {
                eprintln!("lp-liveness: {} is up to date", out_path.display());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "lp-liveness: {} is STALE; regenerate with `cargo run -p lp-liveness`",
                    out_path.display()
                );
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("lp-liveness: read {}: {e}", out_path.display());
                ExitCode::from(2)
            }
        }
    } else {
        match fs::write(&out_path, &fresh) {
            Ok(()) => {
                eprintln!("lp-liveness: wrote {}", out_path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lp-liveness: write {}: {e}", out_path.display());
                ExitCode::from(1)
            }
        }
    }
}
