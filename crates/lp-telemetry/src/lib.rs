//! Always-on structured telemetry for the leak-pruning runtime.
//!
//! The paper's argument is a time series — reachable memory per
//! collection (Figs. 1, 9), the OBSERVE→SELECT→PRUNE trajectory
//! (Fig. 2), pause behaviour across heap sizes (Fig. 7) — so the runtime
//! emits typed [`Event`]s at every hook point it already has and lets
//! listeners decide what to keep:
//!
//! - a fixed-capacity [`FlightRecorder`] ring buffer retaining the most
//!   recent events for post-hoc inspection,
//! - a [`JsonlSink`] writing a replayable trace (one JSON object per
//!   line; `lp-bench`'s `trace_replay` binary rebuilds the Fig. 1/9
//!   curves from the file alone),
//! - a [`PrometheusSink`] folding the stream into a text-exposition
//!   snapshot, and
//! - a [`PauseHistogram`] answering pause-time percentile questions.
//!
//! With nothing attached, [`Telemetry::emit`] is one relaxed atomic load
//! and a not-taken branch; event payloads are built lazily inside a
//! closure. The cost is measured (see `lp-bench`'s `telemetry` bench and
//! DESIGN.md), not assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod event;
pub mod json;
mod sinks;

pub use bus::{FlightRecorder, Sink, Telemetry};
pub use event::{CensusEntry, EdgeShare, Event, GcPhase, TraceLine};
pub use sinks::{escape_label_value, JsonlSink, PauseHistogram, PrometheusSink};
