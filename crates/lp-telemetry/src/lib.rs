//! Always-on structured telemetry for the leak-pruning runtime.
//!
//! The paper's argument is a time series — reachable memory per
//! collection (Figs. 1, 9), the OBSERVE→SELECT→PRUNE trajectory
//! (Fig. 2), pause behaviour across heap sizes (Fig. 7) — so the runtime
//! emits typed [`Event`]s at every hook point it already has and lets
//! listeners decide what to keep:
//!
//! - a fixed-capacity [`FlightRecorder`] ring buffer retaining the most
//!   recent events for post-hoc inspection,
//! - a [`JsonlSink`] writing a replayable trace (one JSON object per
//!   line; `lp-bench`'s `trace_replay` binary rebuilds the Fig. 1/9
//!   curves from the file alone),
//! - a [`PrometheusSink`] folding the stream into a text-exposition
//!   snapshot,
//! - a [`PauseHistogram`] answering pause-time percentile questions, and
//! - a [`TimeSeries`] ring of per-interval buckets answering heap-trend
//!   questions ("has retained memory grown for N windows straight?").
//!
//! Causality between events comes from spans: [`Telemetry::span`] opens a
//! [`SpanGuard`] that emits paired [`Event::SpanBegin`]/[`Event::SpanEnd`]
//! markers, so a trace is a tree — a prune decision nests inside the
//! collection that made it, which nests inside the request that triggered
//! exhaustion.
//!
//! With nothing attached, [`Telemetry::emit`] is one relaxed atomic load
//! and a not-taken branch; event payloads are built lazily inside a
//! closure. The cost is measured (see `lp-bench`'s `telemetry` bench and
//! DESIGN.md), not assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod event;
pub mod json;
mod sinks;

pub use bus::{FlightRecorder, Sink, SpanGuard, Telemetry};
pub use event::{span_name, CensusEntry, EdgeShare, Event, GcPhase, TraceLine};
pub use sinks::{
    escape_label_value, JsonlSink, LeakTrend, PauseHistogram, PrometheusSink, TimeSeries,
    TimeSeriesBucket,
};
