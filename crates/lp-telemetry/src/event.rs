//! The typed event taxonomy and its JSONL wire format.
//!
//! Events are deliberately flat and self-describing: class names appear
//! once as [`Event::ClassReg`] registrations, and every later event refers
//! to classes by their `u32` index, so a trace file carries everything a
//! replay tool needs without access to the runtime that produced it.

use std::fmt;
use std::time::Duration;

use crate::json::{self, JsonValue};

/// A garbage-collection phase for span events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcPhase {
    /// The tracing/mark phase.
    Mark,
    /// The sweep phase.
    Sweep,
}

impl GcPhase {
    /// Stable lowercase tag used in traces and metric labels.
    pub fn tag(self) -> &'static str {
        match self {
            GcPhase::Mark => "mark",
            GcPhase::Sweep => "sweep",
        }
    }

    fn from_tag(tag: &str) -> Option<GcPhase> {
        match tag {
            "mark" => Some(GcPhase::Mark),
            "sweep" => Some(GcPhase::Sweep),
            _ => None,
        }
    }
}

impl fmt::Display for GcPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One runner-up edge in a SELECT decision, so selection is explainable:
/// the trace shows what was chosen *and* what it beat.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeShare {
    /// Source class index.
    pub src: u32,
    /// Target class index.
    pub tgt: u32,
    /// Bytes attributed to the edge this SELECT window.
    pub bytes: u64,
}

/// One edge-table entry in a census snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CensusEntry {
    /// Source class index.
    pub src: u32,
    /// Target class index.
    pub tgt: u32,
    /// Saturating maximum staleness observed for the edge.
    pub max_stale_use: u8,
    /// Bytes attributed during the last SELECT window.
    pub bytes_used: u64,
}

/// A typed telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A class was registered; maps the `class` index used by every other
    /// event to a human-readable name.
    ClassReg {
        /// Class index.
        class: u32,
        /// Fully-qualified class name (may contain commas/angle brackets).
        name: String,
    },
    /// A GC phase started.
    PhaseBegin {
        /// 1-based collection index.
        gc_index: u64,
        /// Which phase.
        phase: GcPhase,
    },
    /// A GC phase finished.
    PhaseEnd {
        /// 1-based collection index.
        gc_index: u64,
        /// Which phase.
        phase: GcPhase,
        /// Wall-clock duration of the phase in nanoseconds.
        nanos: u64,
        /// Worker threads used (1 for serial phases).
        threads: u64,
        /// Summed per-thread busy time in nanoseconds (equals `nanos`
        /// for serial phases).
        busy_nanos: u64,
    },
    /// A Figure-2 state-machine transition, with the occupancy inputs
    /// that drove it.
    StateTransition {
        /// Collection index at which the transition took effect.
        gc_index: u64,
        /// State the machine left (e.g. `"OBSERVE"`).
        from: &'static str,
        /// State the machine entered.
        to: &'static str,
        /// Post-collection heap occupancy in `[0, 1]`.
        occupancy: f64,
        /// Threshold for entering SELECT.
        expected_threshold: f64,
        /// Threshold for entering PRUNE.
        nearly_full_threshold: f64,
        /// Whether memory exhaustion has forced the machine at least once.
        exhausted_once: bool,
    },
    /// A SELECT decision that chose an edge to prune.
    SelectionEdge {
        /// Collection index of the selecting collection.
        gc_index: u64,
        /// Source class index of the chosen edge.
        src: u32,
        /// Target class index of the chosen edge.
        tgt: u32,
        /// Bytes attributed to the chosen edge.
        bytes: u64,
        /// The next-best edges it beat, in descending byte order.
        runners_up: Vec<EdgeShare>,
    },
    /// A SELECT decision under the most-stale policy (no single edge).
    SelectionStale {
        /// Collection index of the selecting collection.
        gc_index: u64,
        /// The staleness level selected for pruning.
        level: u8,
    },
    /// A SELECT decision whose chosen edge was backed by a static liveness
    /// verdict. Emitted *instead of* [`Event::SelectionEdge`] when the
    /// hybrid policy's static signal participated, so purely-dynamic traces
    /// keep their original shape.
    SelectionStatic {
        /// Collection index of the selecting collection.
        gc_index: u64,
        /// Source class index of the chosen edge.
        src: u32,
        /// Target class index of the chosen edge.
        tgt: u32,
        /// Bytes attributed to the chosen edge.
        bytes: u64,
        /// Which signal made the edge a candidate: `"static"` (the
        /// certainly-dead verdict alone) or `"both"` (the dynamic
        /// staleness threshold fired as well).
        signal: &'static str,
        /// The next-best edges it beat, in descending byte order.
        runners_up: Vec<EdgeShare>,
    },
    /// Per-collection snapshot mirroring the in-process `GcRecord`.
    Collection {
        /// 1-based collection index.
        gc_index: u64,
        /// Pruning state during the collection (e.g. `"OBSERVE"`).
        state: String,
        /// Live bytes after the collection.
        live_bytes_after: u64,
        /// Live objects after the collection.
        live_objects_after: u64,
        /// Bytes freed by the collection.
        freed_bytes: u64,
        /// Objects freed by the collection.
        freed_objects: u64,
        /// References poisoned by the collection.
        pruned_refs: u64,
        /// Mark-phase wall time in nanoseconds. For incremental
        /// collections this is the *accumulated* marking time across all
        /// quanta plus the final flush — mutator work ran inside it, so it
        /// is not a pause.
        mark_nanos: u64,
        /// Sweep-phase wall time in nanoseconds.
        sweep_nanos: u64,
        /// Wall time of the final stop-the-world flush in nanoseconds,
        /// present only for incremental collections. The collection's
        /// longest mutator pause is `flush_nanos + sweep_nanos`; for
        /// stop-the-world collections (`None`) it is
        /// `mark_nanos + sweep_nanos`.
        flush_nanos: Option<u64>,
    },
    /// One bounded increment of an incremental mark cycle ran between
    /// mutator slices. Each quantum is a short mutator pause of its own,
    /// which is why it carries its wall time.
    MarkQuantum {
        /// 1-based index of the collection the quantum belongs to.
        gc_index: u64,
        /// Objects newly marked during the quantum.
        objects: u64,
        /// Bytes of the objects newly marked during the quantum.
        bytes: u64,
        /// SATB log entries drained at the start of the quantum.
        satb_drained: u64,
        /// Wall-clock duration of the quantum in nanoseconds.
        nanos: u64,
    },
    /// A minor (nursery) collection ran. Deliberately carries no
    /// `gc_index`: minor collections do not advance the full-heap
    /// numbering, and consumers must never attribute them to one.
    MinorCollection {
        /// Objects reclaimed from the nursery.
        freed_objects: u64,
        /// Bytes reclaimed from the nursery.
        freed_bytes: u64,
        /// Mark-phase wall time in nanoseconds.
        mark_nanos: u64,
        /// Sweep-phase wall time in nanoseconds.
        sweep_nanos: u64,
    },
    /// Barrier and mutator counter *deltas* since the previous
    /// `CounterDelta` event.
    CounterDelta {
        /// Collection index the delta window ended at.
        gc_index: u64,
        /// Reference reads through `read_field`.
        ref_reads: u64,
        /// Cold-path barrier executions.
        barrier_cold_hits: u64,
        /// Stale-use observations recorded in the edge table.
        stale_use_updates: u64,
        /// Poisoned-reference accesses that threw.
        pruned_access_throws: u64,
        /// Finalizers run.
        finalizers_run: u64,
        /// Finalizers skipped on pruned objects.
        finalizers_skipped: u64,
        /// Minor (nursery) collections.
        minor_collections: u64,
        /// Old-to-young stores logged in the remembered set.
        remembered_stores: u64,
    },
    /// Edge-table census: occupancy and the live entries.
    EdgeCensus {
        /// Collection index the census was taken at.
        gc_index: u64,
        /// Number of live entries.
        edge_types: u64,
        /// Table capacity in entries.
        capacity: u64,
        /// Table footprint in bytes (matches `PruneReport`).
        footprint_bytes: u64,
        /// The live entries.
        entries: Vec<CensusEntry>,
    },
    /// An allocation was accounted.
    Alloc {
        /// Class index of the allocated object.
        class: u32,
        /// Object size in bytes.
        bytes: u64,
    },
    /// A sweep freed memory.
    Freed {
        /// Objects reclaimed.
        objects: u64,
        /// Bytes reclaimed.
        bytes: u64,
    },
    /// The heap could not satisfy an allocation even after collecting.
    Exhausted {
        /// Collection index at which exhaustion was observed.
        gc_index: u64,
        /// Used bytes at exhaustion.
        used_bytes: u64,
        /// Heap capacity in bytes.
        capacity: u64,
    },
    /// A workload driver finished one iteration.
    Iteration {
        /// 0-based iteration index.
        index: u64,
    },
    /// A heap-snapshot capture began. The capture piggybacks on a
    /// stop-the-world collection, so `gc_index` names the collection whose
    /// mark phase dumps the live object graph.
    SnapshotBegin {
        /// 1-based index of the snapshot collection.
        gc_index: u64,
    },
    /// A heap-snapshot capture finished.
    SnapshotEnd {
        /// 1-based index of the snapshot collection.
        gc_index: u64,
        /// Objects recorded in the snapshot.
        objects: u64,
        /// Reference edges recorded in the snapshot.
        edges: u64,
        /// Total footprint of the recorded objects.
        live_bytes: u64,
        /// Wall-clock cost of the capture in nanoseconds — the transitive
        /// closure plus the graph dump, i.e. the pause the snapshot turned
        /// into compared to doing nothing at all.
        nanos: u64,
    },
    /// A heap-sanitizer pass ran (see `Runtime::verify_heap`). Emitted
    /// whether or not violations were found, so a trace shows both the
    /// verification cadence and its cost.
    VerifyHeap {
        /// 1-based index of the collection the pass ran after.
        gc_index: u64,
        /// Number of invariant violations found (0 = healthy).
        violations: u64,
        /// Wall-clock cost of the pass in nanoseconds.
        nanos: u64,
    },
    /// One invariant violation found by a heap-sanitizer pass. Emitted
    /// before the runtime panics, so the trace records *what* was corrupted
    /// even when the process dies.
    VerifyViolation {
        /// 1-based index of the collection the pass ran after.
        gc_index: u64,
        /// Stable violation kind tag (e.g. `"tag-legality"`).
        kind: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A multi-tenant host admitted requests into a tenant's queue.
    /// Aggregated per admission round, emitted only when non-zero.
    TenantAdmit {
        /// 0-based host round the admissions happened in.
        round: u64,
        /// Tenant name.
        tenant: String,
        /// Requests admitted this round.
        admitted: u64,
    },
    /// A multi-tenant host shed requests instead of admitting them.
    /// Aggregated per admission round, emitted only when non-zero.
    TenantShed {
        /// 0-based host round the sheds happened in.
        round: u64,
        /// Tenant name.
        tenant: String,
        /// Requests rejected because the bounded queue was full.
        queue_full: u64,
        /// Requests rejected because the tenant was quarantined.
        quarantined: u64,
    },
    /// The global memory arbiter acted on a tenant (forced a collection,
    /// forced pruning, quarantined it, or resumed it from quarantine).
    ArbiterAction {
        /// 0-based host round the action was taken in.
        round: u64,
        /// Tenant the action targeted.
        tenant: String,
        /// Stable action tag: `"collect"`, `"prune"`, `"quarantine"` or
        /// `"resume"`.
        action: &'static str,
        /// The tenant's used bytes after the action.
        used_bytes: u64,
        /// Aggregate used bytes across all tenants after the action.
        aggregate_bytes: u64,
        /// The shared host byte limit the arbiter enforces.
        limit_bytes: u64,
    },
    /// A workload run finished; the terminal companion to the per-step
    /// [`Event::Iteration`] stream, carrying *why* the run ended so a trace
    /// is self-describing without the in-process `RunResult`.
    RunEnd {
        /// Iterations completed before termination.
        iterations: u64,
        /// Stable termination tag: `"reached_cap"`, `"completed"`,
        /// `"out_of_memory"` or `"pruned_access"`.
        termination: &'static str,
    },
    /// A causal span opened. Spans turn the flat event stream into a tree:
    /// every event emitted between a span's begin and end happened *inside*
    /// it, and the parent id links nested work (a prune collection inside
    /// the request that triggered exhaustion) across abstraction layers.
    SpanBegin {
        /// Bus-unique span id, dense and starting at 1.
        id: u64,
        /// Enclosing span id; absent for root spans.
        parent: Option<u64>,
        /// Stable span name from the closed taxonomy (see `span_name`).
        name: &'static str,
        /// Name-specific argument: the gc index for GC spans, the request
        /// sequence for request spans, the round for host rounds, the
        /// tenant index for service spans.
        arg: u64,
    },
    /// A causal span closed. Every `SpanBegin` has exactly one matching
    /// `SpanEnd`, and a span closes only after all of its children have
    /// closed (interval containment) — `lp-bench`'s replay checker rejects
    /// traces that violate either rule.
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
    },
    /// The leak-trend detector observed monotone retained-heap growth over
    /// enough consecutive time-series windows to suspect a leak. A typed,
    /// attributed report (which tenant, how long, how much) rather than raw
    /// state, emitted on the host bus once per sustained trend.
    LeakSuspected {
        /// Tenant whose retained heap keeps growing.
        tenant: String,
        /// Consecutive completed windows with monotone growth.
        windows: u64,
        /// Live bytes at the start of the trend.
        from_bytes: u64,
        /// Live bytes at the latest window of the trend.
        to_bytes: u64,
    },
    /// A postmortem bundle was written to disk. Emitted after the file is
    /// durable, so a trace both names the trigger and points at the
    /// evidence it produced.
    PostmortemWritten {
        /// Stable trigger tag (`"exhaustion"`, `"quarantine"`,
        /// `"leak_suspected"`, `"manual"`).
        trigger: String,
        /// Filesystem path of the bundle.
        path: String,
        /// Collection index stamped into the bundle's snapshot.
        gc_index: u64,
    },
    /// A checkpoint capture started. Emitted only at quiescent points (no
    /// incremental cycle in flight, SATB log drained), so a trace proves
    /// every checkpoint honoured the quiescence rule.
    CheckpointBegin {
        /// Collection index at capture time.
        gc_index: u64,
    },
    /// A checkpoint file is durable on disk. The replay watermark names the
    /// last journal entry whose effects the checkpoint already contains;
    /// recovery replays strictly newer entries.
    CheckpointEnd {
        /// Collection index stamped into the checkpoint.
        gc_index: u64,
        /// Total JSONL lines written (validated by the trailer on read).
        lines: u64,
        /// Journal replay watermark captured with the image.
        watermark: u64,
    },
    /// A runtime was rebuilt from a checkpoint. Emitted after `verify_heap`
    /// passed on the materialized heap, so the event is a liveness proof,
    /// not just an attempt record.
    Restore {
        /// Collection index the restored runtime resumes from.
        gc_index: u64,
        /// Live objects materialized.
        objects: u64,
        /// Live bytes materialized.
        bytes: u64,
    },
}

impl Event {
    /// Stable snake_case discriminator written as the `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ClassReg { .. } => "class_reg",
            Event::PhaseBegin { .. } => "phase_begin",
            Event::PhaseEnd { .. } => "phase_end",
            Event::StateTransition { .. } => "state",
            Event::SelectionEdge { .. } => "select_edge",
            Event::SelectionStale { .. } => "select_stale",
            Event::SelectionStatic { .. } => "select_static",
            Event::Collection { .. } => "collection",
            Event::MarkQuantum { .. } => "mark_quantum",
            Event::MinorCollection { .. } => "minor_collection",
            Event::CounterDelta { .. } => "counters",
            Event::EdgeCensus { .. } => "census",
            Event::Alloc { .. } => "alloc",
            Event::Freed { .. } => "freed",
            Event::Exhausted { .. } => "exhausted",
            Event::Iteration { .. } => "iteration",
            Event::SnapshotBegin { .. } => "snapshot_begin",
            Event::SnapshotEnd { .. } => "snapshot_end",
            Event::VerifyHeap { .. } => "verify",
            Event::VerifyViolation { .. } => "verify_violation",
            Event::TenantAdmit { .. } => "tenant_admit",
            Event::TenantShed { .. } => "tenant_shed",
            Event::ArbiterAction { .. } => "arbiter",
            Event::RunEnd { .. } => "run_end",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::LeakSuspected { .. } => "leak_suspected",
            Event::PostmortemWritten { .. } => "postmortem_written",
            Event::CheckpointBegin { .. } => "checkpoint_begin",
            Event::CheckpointEnd { .. } => "checkpoint_end",
            Event::Restore { .. } => "restore",
        }
    }
}

/// A sequenced, timestamped event — the unit the recorder and sinks see,
/// and exactly one line of a JSONL trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceLine {
    /// Monotonic sequence number (0-based, gap-free per bus).
    pub seq: u64,
    /// Nanoseconds since the bus was created.
    pub ts_nanos: u64,
    /// The event payload.
    pub event: Event,
}

impl TraceLine {
    /// Timestamp as a [`Duration`] since bus creation.
    pub fn timestamp(&self) -> Duration {
        Duration::from_nanos(self.ts_nanos)
    }

    /// Serializes the line as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = vec![
            ("seq".to_owned(), JsonValue::from_u64(self.seq)),
            ("ts_ns".to_owned(), JsonValue::from_u64(self.ts_nanos)),
            (
                "ev".to_owned(),
                JsonValue::Str(self.event.kind().to_owned()),
            ),
        ];
        let mut field = |name: &str, value: JsonValue| obj.push((name.to_owned(), value));
        match &self.event {
            Event::ClassReg { class, name } => {
                field("class", JsonValue::from_u64(u64::from(*class)));
                field("name", JsonValue::Str(name.clone()));
            }
            Event::PhaseBegin { gc_index, phase } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("phase", JsonValue::Str(phase.tag().to_owned()));
            }
            Event::PhaseEnd {
                gc_index,
                phase,
                nanos,
                threads,
                busy_nanos,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("phase", JsonValue::Str(phase.tag().to_owned()));
                field("nanos", JsonValue::from_u64(*nanos));
                field("threads", JsonValue::from_u64(*threads));
                field("busy_nanos", JsonValue::from_u64(*busy_nanos));
            }
            Event::StateTransition {
                gc_index,
                from,
                to,
                occupancy,
                expected_threshold,
                nearly_full_threshold,
                exhausted_once,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("from", JsonValue::Str((*from).to_owned()));
                field("to", JsonValue::Str((*to).to_owned()));
                field("occupancy", JsonValue::Float(*occupancy));
                field("expected", JsonValue::Float(*expected_threshold));
                field("nearly_full", JsonValue::Float(*nearly_full_threshold));
                field("exhausted_once", JsonValue::Bool(*exhausted_once));
            }
            Event::SelectionEdge {
                gc_index,
                src,
                tgt,
                bytes,
                runners_up,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("src", JsonValue::from_u64(u64::from(*src)));
                field("tgt", JsonValue::from_u64(u64::from(*tgt)));
                field("bytes", JsonValue::from_u64(*bytes));
                let list = runners_up
                    .iter()
                    .map(|r| {
                        JsonValue::Obj(vec![
                            ("src".to_owned(), JsonValue::from_u64(u64::from(r.src))),
                            ("tgt".to_owned(), JsonValue::from_u64(u64::from(r.tgt))),
                            ("bytes".to_owned(), JsonValue::from_u64(r.bytes)),
                        ])
                    })
                    .collect();
                field("runners_up", JsonValue::Arr(list));
            }
            Event::SelectionStale { gc_index, level } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("level", JsonValue::from_u64(u64::from(*level)));
            }
            Event::SelectionStatic {
                gc_index,
                src,
                tgt,
                bytes,
                signal,
                runners_up,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("src", JsonValue::from_u64(u64::from(*src)));
                field("tgt", JsonValue::from_u64(u64::from(*tgt)));
                field("bytes", JsonValue::from_u64(*bytes));
                field("signal", JsonValue::Str((*signal).to_owned()));
                let list = runners_up
                    .iter()
                    .map(|r| {
                        JsonValue::Obj(vec![
                            ("src".to_owned(), JsonValue::from_u64(u64::from(r.src))),
                            ("tgt".to_owned(), JsonValue::from_u64(u64::from(r.tgt))),
                            ("bytes".to_owned(), JsonValue::from_u64(r.bytes)),
                        ])
                    })
                    .collect();
                field("runners_up", JsonValue::Arr(list));
            }
            Event::Collection {
                gc_index,
                state,
                live_bytes_after,
                live_objects_after,
                freed_bytes,
                freed_objects,
                pruned_refs,
                mark_nanos,
                sweep_nanos,
                flush_nanos,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("state", JsonValue::Str(state.clone()));
                field("live_bytes", JsonValue::from_u64(*live_bytes_after));
                field("live_objects", JsonValue::from_u64(*live_objects_after));
                field("freed_bytes", JsonValue::from_u64(*freed_bytes));
                field("freed_objects", JsonValue::from_u64(*freed_objects));
                field("pruned_refs", JsonValue::from_u64(*pruned_refs));
                field("mark_ns", JsonValue::from_u64(*mark_nanos));
                field("sweep_ns", JsonValue::from_u64(*sweep_nanos));
                // Absent (not null) for stop-the-world collections, so
                // pre-incremental traces parse unchanged.
                if let Some(flush) = flush_nanos {
                    field("flush_ns", JsonValue::from_u64(*flush));
                }
            }
            Event::MarkQuantum {
                gc_index,
                objects,
                bytes,
                satb_drained,
                nanos,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("objects", JsonValue::from_u64(*objects));
                field("bytes", JsonValue::from_u64(*bytes));
                field("satb_drained", JsonValue::from_u64(*satb_drained));
                field("ns", JsonValue::from_u64(*nanos));
            }
            Event::MinorCollection {
                freed_objects,
                freed_bytes,
                mark_nanos,
                sweep_nanos,
            } => {
                field("freed_objects", JsonValue::from_u64(*freed_objects));
                field("freed_bytes", JsonValue::from_u64(*freed_bytes));
                field("mark_ns", JsonValue::from_u64(*mark_nanos));
                field("sweep_ns", JsonValue::from_u64(*sweep_nanos));
            }
            Event::CounterDelta {
                gc_index,
                ref_reads,
                barrier_cold_hits,
                stale_use_updates,
                pruned_access_throws,
                finalizers_run,
                finalizers_skipped,
                minor_collections,
                remembered_stores,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("ref_reads", JsonValue::from_u64(*ref_reads));
                field("cold_hits", JsonValue::from_u64(*barrier_cold_hits));
                field("stale_updates", JsonValue::from_u64(*stale_use_updates));
                field("throws", JsonValue::from_u64(*pruned_access_throws));
                field("finalized", JsonValue::from_u64(*finalizers_run));
                field("fin_skipped", JsonValue::from_u64(*finalizers_skipped));
                field("minor_gcs", JsonValue::from_u64(*minor_collections));
                field("rem_stores", JsonValue::from_u64(*remembered_stores));
            }
            Event::EdgeCensus {
                gc_index,
                edge_types,
                capacity,
                footprint_bytes,
                entries,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("edge_types", JsonValue::from_u64(*edge_types));
                field("capacity", JsonValue::from_u64(*capacity));
                field("footprint", JsonValue::from_u64(*footprint_bytes));
                let list = entries
                    .iter()
                    .map(|e| {
                        JsonValue::Obj(vec![
                            ("src".to_owned(), JsonValue::from_u64(u64::from(e.src))),
                            ("tgt".to_owned(), JsonValue::from_u64(u64::from(e.tgt))),
                            (
                                "stale".to_owned(),
                                JsonValue::from_u64(u64::from(e.max_stale_use)),
                            ),
                            ("bytes".to_owned(), JsonValue::from_u64(e.bytes_used)),
                        ])
                    })
                    .collect();
                field("entries", JsonValue::Arr(list));
            }
            Event::Alloc { class, bytes } => {
                field("class", JsonValue::from_u64(u64::from(*class)));
                field("bytes", JsonValue::from_u64(*bytes));
            }
            Event::Freed { objects, bytes } => {
                field("objects", JsonValue::from_u64(*objects));
                field("bytes", JsonValue::from_u64(*bytes));
            }
            Event::Exhausted {
                gc_index,
                used_bytes,
                capacity,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("used", JsonValue::from_u64(*used_bytes));
                field("capacity", JsonValue::from_u64(*capacity));
            }
            Event::Iteration { index } => {
                field("index", JsonValue::from_u64(*index));
            }
            Event::SnapshotBegin { gc_index } => {
                field("gc", JsonValue::from_u64(*gc_index));
            }
            Event::SnapshotEnd {
                gc_index,
                objects,
                edges,
                live_bytes,
                nanos,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("objects", JsonValue::from_u64(*objects));
                field("edges", JsonValue::from_u64(*edges));
                field("live_bytes", JsonValue::from_u64(*live_bytes));
                field("nanos", JsonValue::from_u64(*nanos));
            }
            Event::VerifyHeap {
                gc_index,
                violations,
                nanos,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("violations", JsonValue::from_u64(*violations));
                field("nanos", JsonValue::from_u64(*nanos));
            }
            Event::VerifyViolation {
                gc_index,
                kind,
                detail,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("kind", JsonValue::Str(kind.clone()));
                field("detail", JsonValue::Str(detail.clone()));
            }
            Event::TenantAdmit {
                round,
                tenant,
                admitted,
            } => {
                field("round", JsonValue::from_u64(*round));
                field("tenant", JsonValue::Str(tenant.clone()));
                field("admitted", JsonValue::from_u64(*admitted));
            }
            Event::TenantShed {
                round,
                tenant,
                queue_full,
                quarantined,
            } => {
                field("round", JsonValue::from_u64(*round));
                field("tenant", JsonValue::Str(tenant.clone()));
                field("queue_full", JsonValue::from_u64(*queue_full));
                field("quarantined", JsonValue::from_u64(*quarantined));
            }
            Event::ArbiterAction {
                round,
                tenant,
                action,
                used_bytes,
                aggregate_bytes,
                limit_bytes,
            } => {
                field("round", JsonValue::from_u64(*round));
                field("tenant", JsonValue::Str(tenant.clone()));
                field("action", JsonValue::Str((*action).to_owned()));
                field("used", JsonValue::from_u64(*used_bytes));
                field("aggregate", JsonValue::from_u64(*aggregate_bytes));
                field("limit", JsonValue::from_u64(*limit_bytes));
            }
            Event::RunEnd {
                iterations,
                termination,
            } => {
                field("iterations", JsonValue::from_u64(*iterations));
                field("termination", JsonValue::Str((*termination).to_owned()));
            }
            Event::SpanBegin {
                id,
                parent,
                name,
                arg,
            } => {
                field("id", JsonValue::from_u64(*id));
                // Absent (not null) for root spans, mirroring `flush_ns`.
                if let Some(parent) = parent {
                    field("parent", JsonValue::from_u64(*parent));
                }
                field("name", JsonValue::Str((*name).to_owned()));
                field("arg", JsonValue::from_u64(*arg));
            }
            Event::SpanEnd { id } => {
                field("id", JsonValue::from_u64(*id));
            }
            Event::LeakSuspected {
                tenant,
                windows,
                from_bytes,
                to_bytes,
            } => {
                field("tenant", JsonValue::Str(tenant.clone()));
                field("windows", JsonValue::from_u64(*windows));
                field("from_bytes", JsonValue::from_u64(*from_bytes));
                field("to_bytes", JsonValue::from_u64(*to_bytes));
            }
            Event::PostmortemWritten {
                trigger,
                path,
                gc_index,
            } => {
                field("trigger", JsonValue::Str(trigger.clone()));
                field("path", JsonValue::Str(path.clone()));
                field("gc", JsonValue::from_u64(*gc_index));
            }
            Event::CheckpointBegin { gc_index } => {
                field("gc", JsonValue::from_u64(*gc_index));
            }
            Event::CheckpointEnd {
                gc_index,
                lines,
                watermark,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("lines", JsonValue::from_u64(*lines));
                field("watermark", JsonValue::from_u64(*watermark));
            }
            Event::Restore {
                gc_index,
                objects,
                bytes,
            } => {
                field("gc", JsonValue::from_u64(*gc_index));
                field("objects", JsonValue::from_u64(*objects));
                field("bytes", JsonValue::from_u64(*bytes));
            }
        }
        JsonValue::Obj(obj).to_string()
    }

    /// Parses one JSONL line back into a [`TraceLine`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn parse(line: &str) -> Result<TraceLine, String> {
        let value = json::parse(line).map_err(|e| e.to_string())?;
        let seq = need_u64(&value, "seq")?;
        let ts_nanos = need_u64(&value, "ts_ns")?;
        let kind = need_str(&value, "ev")?;
        let event = match kind {
            "class_reg" => Event::ClassReg {
                class: need_u32(&value, "class")?,
                name: need_str(&value, "name")?.to_owned(),
            },
            "phase_begin" => Event::PhaseBegin {
                gc_index: need_u64(&value, "gc")?,
                phase: need_phase(&value)?,
            },
            "phase_end" => Event::PhaseEnd {
                gc_index: need_u64(&value, "gc")?,
                phase: need_phase(&value)?,
                nanos: need_u64(&value, "nanos")?,
                threads: need_u64(&value, "threads")?,
                busy_nanos: need_u64(&value, "busy_nanos")?,
            },
            "state" => Event::StateTransition {
                gc_index: need_u64(&value, "gc")?,
                from: state_name(need_str(&value, "from")?)?,
                to: state_name(need_str(&value, "to")?)?,
                occupancy: need_f64(&value, "occupancy")?,
                expected_threshold: need_f64(&value, "expected")?,
                nearly_full_threshold: need_f64(&value, "nearly_full")?,
                exhausted_once: need_bool(&value, "exhausted_once")?,
            },
            "select_edge" => Event::SelectionEdge {
                gc_index: need_u64(&value, "gc")?,
                src: need_u32(&value, "src")?,
                tgt: need_u32(&value, "tgt")?,
                bytes: need_u64(&value, "bytes")?,
                runners_up: value
                    .get("runners_up")
                    .and_then(JsonValue::as_arr)
                    .ok_or("missing runners_up")?
                    .iter()
                    .map(|r| {
                        Ok(EdgeShare {
                            src: need_u32(r, "src")?,
                            tgt: need_u32(r, "tgt")?,
                            bytes: need_u64(r, "bytes")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
            "select_stale" => Event::SelectionStale {
                gc_index: need_u64(&value, "gc")?,
                level: u8::try_from(need_u64(&value, "level")?)
                    .map_err(|_| "level out of range".to_owned())?,
            },
            "select_static" => Event::SelectionStatic {
                gc_index: need_u64(&value, "gc")?,
                src: need_u32(&value, "src")?,
                tgt: need_u32(&value, "tgt")?,
                bytes: need_u64(&value, "bytes")?,
                signal: selection_signal_name(need_str(&value, "signal")?)?,
                runners_up: value
                    .get("runners_up")
                    .and_then(JsonValue::as_arr)
                    .ok_or("missing runners_up")?
                    .iter()
                    .map(|r| {
                        Ok(EdgeShare {
                            src: need_u32(r, "src")?,
                            tgt: need_u32(r, "tgt")?,
                            bytes: need_u64(r, "bytes")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
            "collection" => Event::Collection {
                gc_index: need_u64(&value, "gc")?,
                state: need_str(&value, "state")?.to_owned(),
                live_bytes_after: need_u64(&value, "live_bytes")?,
                live_objects_after: need_u64(&value, "live_objects")?,
                freed_bytes: need_u64(&value, "freed_bytes")?,
                freed_objects: need_u64(&value, "freed_objects")?,
                pruned_refs: need_u64(&value, "pruned_refs")?,
                mark_nanos: need_u64(&value, "mark_ns")?,
                sweep_nanos: need_u64(&value, "sweep_ns")?,
                flush_nanos: value.get("flush_ns").and_then(JsonValue::as_u64),
            },
            "mark_quantum" => Event::MarkQuantum {
                gc_index: need_u64(&value, "gc")?,
                objects: need_u64(&value, "objects")?,
                bytes: need_u64(&value, "bytes")?,
                satb_drained: need_u64(&value, "satb_drained")?,
                nanos: need_u64(&value, "ns")?,
            },
            "minor_collection" => Event::MinorCollection {
                freed_objects: need_u64(&value, "freed_objects")?,
                freed_bytes: need_u64(&value, "freed_bytes")?,
                mark_nanos: need_u64(&value, "mark_ns")?,
                sweep_nanos: need_u64(&value, "sweep_ns")?,
            },
            "counters" => Event::CounterDelta {
                gc_index: need_u64(&value, "gc")?,
                ref_reads: need_u64(&value, "ref_reads")?,
                barrier_cold_hits: need_u64(&value, "cold_hits")?,
                stale_use_updates: need_u64(&value, "stale_updates")?,
                pruned_access_throws: need_u64(&value, "throws")?,
                finalizers_run: need_u64(&value, "finalized")?,
                finalizers_skipped: need_u64(&value, "fin_skipped")?,
                minor_collections: need_u64(&value, "minor_gcs")?,
                remembered_stores: need_u64(&value, "rem_stores")?,
            },
            "census" => Event::EdgeCensus {
                gc_index: need_u64(&value, "gc")?,
                edge_types: need_u64(&value, "edge_types")?,
                capacity: need_u64(&value, "capacity")?,
                footprint_bytes: need_u64(&value, "footprint")?,
                entries: value
                    .get("entries")
                    .and_then(JsonValue::as_arr)
                    .ok_or("missing entries")?
                    .iter()
                    .map(|e| {
                        Ok(CensusEntry {
                            src: need_u32(e, "src")?,
                            tgt: need_u32(e, "tgt")?,
                            max_stale_use: u8::try_from(need_u64(e, "stale")?)
                                .map_err(|_| "stale out of range".to_owned())?,
                            bytes_used: need_u64(e, "bytes")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
            "alloc" => Event::Alloc {
                class: need_u32(&value, "class")?,
                bytes: need_u64(&value, "bytes")?,
            },
            "freed" => Event::Freed {
                objects: need_u64(&value, "objects")?,
                bytes: need_u64(&value, "bytes")?,
            },
            "exhausted" => Event::Exhausted {
                gc_index: need_u64(&value, "gc")?,
                used_bytes: need_u64(&value, "used")?,
                capacity: need_u64(&value, "capacity")?,
            },
            "iteration" => Event::Iteration {
                index: need_u64(&value, "index")?,
            },
            "snapshot_begin" => Event::SnapshotBegin {
                gc_index: need_u64(&value, "gc")?,
            },
            "snapshot_end" => Event::SnapshotEnd {
                gc_index: need_u64(&value, "gc")?,
                objects: need_u64(&value, "objects")?,
                edges: need_u64(&value, "edges")?,
                live_bytes: need_u64(&value, "live_bytes")?,
                nanos: need_u64(&value, "nanos")?,
            },
            "verify" => Event::VerifyHeap {
                gc_index: need_u64(&value, "gc")?,
                violations: need_u64(&value, "violations")?,
                nanos: need_u64(&value, "nanos")?,
            },
            "verify_violation" => Event::VerifyViolation {
                gc_index: need_u64(&value, "gc")?,
                kind: need_str(&value, "kind")?.to_owned(),
                detail: need_str(&value, "detail")?.to_owned(),
            },
            "tenant_admit" => Event::TenantAdmit {
                round: need_u64(&value, "round")?,
                tenant: need_str(&value, "tenant")?.to_owned(),
                admitted: need_u64(&value, "admitted")?,
            },
            "tenant_shed" => Event::TenantShed {
                round: need_u64(&value, "round")?,
                tenant: need_str(&value, "tenant")?.to_owned(),
                queue_full: need_u64(&value, "queue_full")?,
                quarantined: need_u64(&value, "quarantined")?,
            },
            "arbiter" => Event::ArbiterAction {
                round: need_u64(&value, "round")?,
                tenant: need_str(&value, "tenant")?.to_owned(),
                action: arbiter_action_name(need_str(&value, "action")?)?,
                used_bytes: need_u64(&value, "used")?,
                aggregate_bytes: need_u64(&value, "aggregate")?,
                limit_bytes: need_u64(&value, "limit")?,
            },
            "run_end" => Event::RunEnd {
                iterations: need_u64(&value, "iterations")?,
                termination: termination_name(need_str(&value, "termination")?)?,
            },
            "span_begin" => Event::SpanBegin {
                id: need_u64(&value, "id")?,
                parent: value.get("parent").and_then(JsonValue::as_u64),
                name: span_name(need_str(&value, "name")?)?,
                arg: need_u64(&value, "arg")?,
            },
            "span_end" => Event::SpanEnd {
                id: need_u64(&value, "id")?,
            },
            "leak_suspected" => Event::LeakSuspected {
                tenant: need_str(&value, "tenant")?.to_owned(),
                windows: need_u64(&value, "windows")?,
                from_bytes: need_u64(&value, "from_bytes")?,
                to_bytes: need_u64(&value, "to_bytes")?,
            },
            "postmortem_written" => Event::PostmortemWritten {
                trigger: need_str(&value, "trigger")?.to_owned(),
                path: need_str(&value, "path")?.to_owned(),
                gc_index: need_u64(&value, "gc")?,
            },
            "checkpoint_begin" => Event::CheckpointBegin {
                gc_index: need_u64(&value, "gc")?,
            },
            "checkpoint_end" => Event::CheckpointEnd {
                gc_index: need_u64(&value, "gc")?,
                lines: need_u64(&value, "lines")?,
                watermark: need_u64(&value, "watermark")?,
            },
            "restore" => Event::Restore {
                gc_index: need_u64(&value, "gc")?,
                objects: need_u64(&value, "objects")?,
                bytes: need_u64(&value, "bytes")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(TraceLine {
            seq,
            ts_nanos,
            event,
        })
    }
}

fn need_u64(value: &JsonValue, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or invalid field {key:?}"))
}

fn need_u32(value: &JsonValue, key: &str) -> Result<u32, String> {
    u32::try_from(need_u64(value, key)?).map_err(|_| format!("field {key:?} out of u32 range"))
}

fn need_f64(value: &JsonValue, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or invalid field {key:?}"))
}

fn need_bool(value: &JsonValue, key: &str) -> Result<bool, String> {
    value
        .get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing or invalid field {key:?}"))
}

fn need_str<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or invalid field {key:?}"))
}

fn need_phase(value: &JsonValue) -> Result<GcPhase, String> {
    let tag = need_str(value, "phase")?;
    GcPhase::from_tag(tag).ok_or_else(|| format!("unknown phase {tag:?}"))
}

/// Interns a parsed state name so `StateTransition` can keep `&'static str`
/// fields on both the emit and parse paths.
fn state_name(name: &str) -> Result<&'static str, String> {
    match name {
        "INACTIVE" => Ok("INACTIVE"),
        "OBSERVE" => Ok("OBSERVE"),
        "SELECT" => Ok("SELECT"),
        "PRUNE" => Ok("PRUNE"),
        other => Err(format!("unknown state {other:?}")),
    }
}

/// Interns a parsed arbiter action tag (see [`Event::ArbiterAction`]).
fn arbiter_action_name(name: &str) -> Result<&'static str, String> {
    match name {
        "collect" => Ok("collect"),
        "prune" => Ok("prune"),
        "quarantine" => Ok("quarantine"),
        "resume" => Ok("resume"),
        other => Err(format!("unknown arbiter action {other:?}")),
    }
}

/// Interns a span name against the closed span taxonomy (see
/// [`Event::SpanBegin`]): GC work (`collection`, `cycle`, `quantum`,
/// `flush`, `mark`, `sweep`, `snapshot`), pruning decisions (`state`,
/// `select`, `prune`), allocation stalls (`collect_until_fits`), host
/// serving (`round`, `service`, `request`) and recovery work
/// (`checkpoint`, `restore`). A closed set keeps traces
/// self-describing and lets exporters special-case names safely.
///
/// # Errors
///
/// Returns a message naming the unknown span.
pub fn span_name(name: &str) -> Result<&'static str, String> {
    match name {
        "collection" => Ok("collection"),
        "cycle" => Ok("cycle"),
        "quantum" => Ok("quantum"),
        "flush" => Ok("flush"),
        "mark" => Ok("mark"),
        "sweep" => Ok("sweep"),
        "snapshot" => Ok("snapshot"),
        "state" => Ok("state"),
        "select" => Ok("select"),
        "prune" => Ok("prune"),
        "collect_until_fits" => Ok("collect_until_fits"),
        "round" => Ok("round"),
        "service" => Ok("service"),
        "request" => Ok("request"),
        "checkpoint" => Ok("checkpoint"),
        "restore" => Ok("restore"),
        other => Err(format!("unknown span name {other:?}")),
    }
}

/// Interns a parsed selection-signal tag (see [`Event::SelectionStatic`]).
/// Purely-dynamic selections emit [`Event::SelectionEdge`] instead, so the
/// closed set here is only the two static-backed shapes.
fn selection_signal_name(name: &str) -> Result<&'static str, String> {
    match name {
        "static" => Ok("static"),
        "both" => Ok("both"),
        other => Err(format!("unknown selection signal {other:?}")),
    }
}

/// Interns a parsed termination tag (see [`Event::RunEnd`]).
fn termination_name(name: &str) -> Result<&'static str, String> {
    match name {
        "reached_cap" => Ok("reached_cap"),
        "completed" => Ok("completed"),
        "out_of_memory" => Ok("out_of_memory"),
        "pruned_access" => Ok("pruned_access"),
        other => Err(format!("unknown termination {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: Event) {
        let line = TraceLine {
            seq: 42,
            ts_nanos: 1_234_567_890,
            event,
        };
        let text = line.to_json();
        assert!(!text.contains('\n'), "JSONL line must be one line: {text}");
        let parsed = TraceLine::parse(&text).expect(&text);
        assert_eq!(parsed, line);
    }

    #[test]
    fn every_event_kind_round_trips() {
        round_trip(Event::ClassReg {
            class: 3,
            name: "java.util.Map<K,V>\"entry\"".to_owned(),
        });
        round_trip(Event::PhaseBegin {
            gc_index: 9,
            phase: GcPhase::Mark,
        });
        round_trip(Event::PhaseEnd {
            gc_index: 9,
            phase: GcPhase::Sweep,
            nanos: 12_000,
            threads: 4,
            busy_nanos: 40_000,
        });
        round_trip(Event::StateTransition {
            gc_index: 10,
            from: "OBSERVE",
            to: "SELECT",
            occupancy: 0.8125,
            expected_threshold: 0.8,
            nearly_full_threshold: 0.9,
            exhausted_once: false,
        });
        round_trip(Event::SelectionEdge {
            gc_index: 11,
            src: 1,
            tgt: 2,
            bytes: 65_536,
            runners_up: vec![
                EdgeShare {
                    src: 3,
                    tgt: 4,
                    bytes: 1024,
                },
                EdgeShare {
                    src: 5,
                    tgt: 6,
                    bytes: 512,
                },
            ],
        });
        round_trip(Event::SelectionStale {
            gc_index: 11,
            level: 7,
        });
        round_trip(Event::SelectionStatic {
            gc_index: 11,
            src: 1,
            tgt: 2,
            bytes: 65_536,
            signal: "static",
            runners_up: vec![EdgeShare {
                src: 3,
                tgt: 4,
                bytes: 1024,
            }],
        });
        round_trip(Event::SelectionStatic {
            gc_index: 12,
            src: 1,
            tgt: 2,
            bytes: 4096,
            signal: "both",
            runners_up: Vec::new(),
        });
        round_trip(Event::Collection {
            gc_index: 12,
            state: "PRUNE".to_owned(),
            live_bytes_after: 1_048_576,
            live_objects_after: 4096,
            freed_bytes: 2_097_152,
            freed_objects: 8192,
            pruned_refs: 3,
            mark_nanos: 500_000,
            sweep_nanos: 250_000,
            flush_nanos: None,
        });
        // Incremental collections carry the final-flush pause as an extra,
        // optional key; both shapes must survive the wire.
        round_trip(Event::Collection {
            gc_index: 13,
            state: "INACTIVE".to_owned(),
            live_bytes_after: 1_048_576,
            live_objects_after: 4096,
            freed_bytes: 2_097_152,
            freed_objects: 8192,
            pruned_refs: 0,
            mark_nanos: 500_000,
            sweep_nanos: 250_000,
            flush_nanos: Some(40_000),
        });
        round_trip(Event::MarkQuantum {
            gc_index: 13,
            objects: 256,
            bytes: 65_536,
            satb_drained: 9,
            nanos: 12_345,
        });
        round_trip(Event::MinorCollection {
            freed_objects: 300,
            freed_bytes: 24_000,
            mark_nanos: 30_000,
            sweep_nanos: 15_000,
        });
        round_trip(Event::CounterDelta {
            gc_index: 12,
            ref_reads: 1_000_000,
            barrier_cold_hits: 500,
            stale_use_updates: 12,
            pruned_access_throws: 1,
            finalizers_run: 2,
            finalizers_skipped: 3,
            minor_collections: 40,
            remembered_stores: 77,
        });
        round_trip(Event::EdgeCensus {
            gc_index: 12,
            edge_types: 1,
            capacity: 1024,
            footprint_bytes: 16_384,
            entries: vec![CensusEntry {
                src: 1,
                tgt: 2,
                max_stale_use: 5,
                bytes_used: 4096,
            }],
        });
        round_trip(Event::Alloc {
            class: 2,
            bytes: 320,
        });
        round_trip(Event::Freed {
            objects: 100,
            bytes: 32_000,
        });
        round_trip(Event::Exhausted {
            gc_index: 13,
            used_bytes: 2_090_000,
            capacity: 2_097_152,
        });
        round_trip(Event::Iteration { index: 1499 });
        round_trip(Event::SnapshotBegin { gc_index: 14 });
        round_trip(Event::SnapshotEnd {
            gc_index: 14,
            objects: 5000,
            edges: 4999,
            live_bytes: 1_600_000,
            nanos: 750_000,
        });
        round_trip(Event::VerifyHeap {
            gc_index: 15,
            violations: 0,
            nanos: 42_000,
        });
        round_trip(Event::VerifyViolation {
            gc_index: 15,
            kind: "tag-legality".to_owned(),
            detail: "slot 7 field 0: poison bit set without unlogged bit".to_owned(),
        });
        round_trip(Event::TenantAdmit {
            round: 17,
            tenant: "checkout\"svc\"".to_owned(),
            admitted: 12,
        });
        round_trip(Event::TenantShed {
            round: 17,
            tenant: "checkout".to_owned(),
            queue_full: 3,
            quarantined: 9,
        });
        round_trip(Event::ArbiterAction {
            round: 18,
            tenant: "checkout".to_owned(),
            action: "prune",
            used_bytes: 40_960,
            aggregate_bytes: 900_000,
            limit_bytes: 1_048_576,
        });
        round_trip(Event::RunEnd {
            iterations: 2_000,
            termination: "pruned_access",
        });
        // Root spans omit the parent key; child spans carry it. Both
        // shapes must survive the wire.
        round_trip(Event::SpanBegin {
            id: 1,
            parent: None,
            name: "round",
            arg: 17,
        });
        round_trip(Event::SpanBegin {
            id: 2,
            parent: Some(1),
            name: "request",
            arg: 451,
        });
        round_trip(Event::SpanEnd { id: 2 });
        round_trip(Event::LeakSuspected {
            tenant: "checkout\"svc\"".to_owned(),
            windows: 6,
            from_bytes: 100_000,
            to_bytes: 180_000,
        });
        round_trip(Event::PostmortemWritten {
            trigger: "exhaustion".to_owned(),
            path: "out/postmortem-exhaustion-gc12.jsonl".to_owned(),
            gc_index: 12,
        });
        round_trip(Event::CheckpointBegin { gc_index: 19 });
        round_trip(Event::CheckpointEnd {
            gc_index: 19,
            lines: 4_321,
            watermark: 1_500,
        });
        round_trip(Event::Restore {
            gc_index: 19,
            objects: 5_000,
            bytes: 1_600_000,
        });
        round_trip(Event::SpanBegin {
            id: 3,
            parent: None,
            name: "checkpoint",
            arg: 19,
        });
        round_trip(Event::SpanBegin {
            id: 4,
            parent: None,
            name: "restore",
            arg: 19,
        });
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceLine::parse("not json").is_err());
        assert!(TraceLine::parse("{}").is_err());
        assert!(TraceLine::parse(r#"{"seq":1,"ts_ns":2,"ev":"nope"}"#).is_err());
        // A known kind with a missing payload field.
        assert!(TraceLine::parse(r#"{"seq":1,"ts_ns":2,"ev":"alloc","class":1}"#).is_err());
        // A state transition naming an unknown state.
        assert!(TraceLine::parse(
            r#"{"seq":1,"ts_ns":2,"ev":"state","gc":1,"from":"LIMBO","to":"SELECT","occupancy":0.5,"expected":0.8,"nearly_full":0.9,"exhausted_once":false}"#
        )
        .is_err());
        // An arbiter action / termination outside the interned tag sets.
        assert!(TraceLine::parse(
            r#"{"seq":1,"ts_ns":2,"ev":"arbiter","round":1,"tenant":"a","action":"evict","used":1,"aggregate":2,"limit":3}"#
        )
        .is_err());
        assert!(TraceLine::parse(
            r#"{"seq":1,"ts_ns":2,"ev":"run_end","iterations":5,"termination":"crashed"}"#
        )
        .is_err());
        // A static selection whose signal is outside the interned set
        // ("stale" selections are SelectionEdge events, not this kind).
        assert!(TraceLine::parse(
            r#"{"seq":1,"ts_ns":2,"ev":"select_static","gc":1,"src":1,"tgt":2,"bytes":64,"signal":"stale","runners_up":[]}"#
        )
        .is_err());
        // A span outside the closed taxonomy, and one missing its id.
        assert!(TraceLine::parse(
            r#"{"seq":1,"ts_ns":2,"ev":"span_begin","id":1,"name":"mystery","arg":0}"#
        )
        .is_err());
        assert!(TraceLine::parse(r#"{"seq":1,"ts_ns":2,"ev":"span_end"}"#).is_err());
    }
}
