//! A minimal JSON value with a writer and a parser.
//!
//! The build environment has no crates registry, so the JSONL trace sink
//! and its replay tools cannot use `serde`; this module implements the
//! small, strict subset of JSON the trace format needs (objects, arrays,
//! strings, integers, floats, booleans, null). Integers are kept exact —
//! the replay guarantee ("a trace reproduces the in-process
//! `live_bytes_after` sequence bit-for-bit") forbids round-tripping byte
//! counts through `f64`.

use std::fmt;

/// A parsed or to-be-serialized JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part, kept exact.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A `u64` as an exact integer value.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds `i64::MAX` — simulated byte counts and
    /// indices never do; overflowing silently would corrupt a trace.
    pub fn from_u64(value: u64) -> JsonValue {
        JsonValue::Int(i64::try_from(value).expect("trace integer exceeds i64"))
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` into `out` as JSON string *contents* (no surrounding
/// quotes). Control characters, quotes and backslashes are escaped; class
/// names like `Map<K,V>` pass through unchanged.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Float(x) if x.is_finite() => {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64, and always keeps a `.` or exponent
                // so the reader knows it is a float.
                write!(f, "{x:?}")
            }
            // NaN / infinity have no JSON spelling; null keeps the line
            // parseable. No event field should ever produce one.
            JsonValue::Float(_) => f.write_str("null"),
            JsonValue::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(key.len());
                    escape_into(&mut buf, key);
                    write!(f, "\"{buf}\":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// content not).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first offending byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser { input, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != input.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.input[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let run_start = self.pos;
            // Copy the unescaped run wholesale; `"` and `\` are ASCII, so
            // the slice boundaries always fall on character boundaries.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                if self.peek() < Some(0x20) {
                    return Err(self.err("unescaped control character"));
                }
                self.pos += 1;
            }
            out.push_str(&self.input[run_start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(byte) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match byte {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let first = self.hex4()?;
                let scalar = if (0xd800..0xdc00).contains(&first) {
                    // A high surrogate must be followed by `\uDC00..DFFF`.
                    if self.input[self.pos..].starts_with("\\u") {
                        self.pos += 2;
                        let second = self.hex4()?;
                        if (0xdc00..0xe000).contains(&second) {
                            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                        } else {
                            return Err(self.err("invalid low surrogate"));
                        }
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    first
                };
                out.push(char::from_u32(scalar).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let value = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers out of i64 range degrade to floats rather than
            // failing the whole line.
            text.parse::<i64>()
                .map(JsonValue::Int)
                .or_else(|_| text.parse::<f64>().map(JsonValue::Float))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_a_trace_like_object() {
        let text = r#"{"seq":7,"ev":"class_reg","class":3,"name":"Map<K,V>","occ":0.9}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.get("seq").unwrap().as_u64(), Some(7));
        assert_eq!(value.get("name").unwrap().as_str(), Some("Map<K,V>"));
        assert_eq!(value.get("occ").unwrap().as_f64(), Some(0.9));
        assert_eq!(value.to_string(), text);
    }

    #[test]
    fn escapes_quotes_newlines_and_controls() {
        let nasty = "a\"b\\c\nd\re\tf\u{1}g";
        let value = JsonValue::Str(nasty.to_owned());
        let text = value.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\"");
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_nested_arrays_and_objects() {
        let value =
            parse(r#"{"entries":[{"src":1,"b":true},{"src":2,"b":false}],"n":null}"#).unwrap();
        let entries = value.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].get("src").unwrap().as_u64(), Some(2));
        assert_eq!(entries[0].get("b").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn integers_stay_exact() {
        // 2^53 + 1 is not representable in f64; the Int variant keeps it.
        let big = (1i64 << 53) + 1;
        let value = parse(&format!("{{\"x\":{big}}}")).unwrap();
        assert_eq!(value.get("x"), Some(&JsonValue::Int(big)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,}",
            "\"\\u12\"",
            "\"unterminated",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".to_owned())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ud83dx\"").is_err());
    }

    #[test]
    fn from_u64_is_exact() {
        assert_eq!(JsonValue::from_u64(0).as_u64(), Some(0));
        let large = u64::from(u32::MAX) * 1024;
        assert_eq!(JsonValue::from_u64(large).as_u64(), Some(large));
    }

    proptest! {
        /// Any string — including controls, quotes and non-ASCII scalars —
        /// survives a serialize/parse round trip.
        #[test]
        fn prop_string_round_trip(raw in proptest::collection::vec(any::<u32>(), 0..64)) {
            let s: String = raw
                .iter()
                .filter_map(|&c| char::from_u32(c % 0x11_0000))
                .collect();
            let value = JsonValue::Str(s);
            prop_assert_eq!(parse(&value.to_string()).unwrap(), value);
        }

        /// Finite floats round-trip exactly via the shortest representation.
        #[test]
        fn prop_float_round_trip(mantissa in any::<i64>(), exp in -300i32..300) {
            let x = mantissa as f64 * 10f64.powi(exp);
            if x.is_finite() {
                let value = JsonValue::Float(x);
                let parsed = parse(&value.to_string()).unwrap();
                prop_assert_eq!(parsed.as_f64().unwrap().to_bits(), x.to_bits());
            }
        }

        /// Integers round-trip exactly.
        #[test]
        fn prop_int_round_trip(x in any::<i64>()) {
            let value = JsonValue::Int(x);
            prop_assert_eq!(parse(&value.to_string()).unwrap(), value);
        }
    }
}
