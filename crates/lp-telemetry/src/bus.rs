//! The event bus: a cheap-to-clone handle, a fixed-capacity ring-buffer
//! flight recorder, and pluggable sinks.
//!
//! The design goal is an *always-on* emission path whose disabled cost is
//! one relaxed atomic load and a predictable branch. [`Telemetry::emit`]
//! takes a closure so event payloads (string formatting, vector
//! collection) are never built unless something is listening; the cold
//! delivery path is `#[cold]` and out-of-line.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::event::{Event, TraceLine};

/// A destination for trace lines.
///
/// Sinks run under the bus lock, in sequence order, so implementations
/// should do bounded work per line and defer heavy I/O to [`Sink::flush`]
/// where possible.
pub trait Sink: Send {
    /// Receives one sequenced event.
    fn record(&mut self, line: &TraceLine);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// Fixed-capacity ring buffer holding the most recent trace lines —
/// the "flight recorder": cheap enough to leave on in production, and
/// inspected after the fact when something goes wrong.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: usize,
    buffer: VecDeque<TraceLine>,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `slots` events.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> FlightRecorder {
        assert!(slots > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            slots,
            buffer: VecDeque::with_capacity(slots),
            dropped: 0,
        }
    }

    fn record(&mut self, line: &TraceLine) {
        if self.buffer.len() == self.slots {
            self.buffer.pop_front();
            self.dropped += 1;
        }
        self.buffer.push_back(line.clone());
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceLine> {
        self.buffer.iter().cloned().collect()
    }

    /// Events evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retention capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots
    }
}

#[derive(Default)]
struct BusState {
    recorder: Option<FlightRecorder>,
    sinks: Vec<Box<dyn Sink>>,
    /// Last span id handed out; ids are dense and start at 1, so 0 never
    /// names a span.
    last_span_id: u64,
    /// Open stack-parented spans as (id, name, arg), innermost last.
    /// Maintained under the bus lock; buses are driven by one thread at a
    /// time, so the stack *is* the causal context of the code currently
    /// emitting — which is why postmortem bundles copy it verbatim.
    span_stack: Vec<(u64, &'static str, u64)>,
}

/// How a new span chooses its parent.
enum SpanParent {
    /// Parent is the innermost open stack span; the new span joins the
    /// stack and must be dropped in LIFO order.
    Stack,
    /// No parent and no stack participation: for spans held in a struct
    /// across mutator slices (an incremental mark cycle), whose lifetime
    /// cannot nest inside any scope.
    Detached,
    /// Explicit parent id, stack participation as usual: for work that
    /// logically belongs to a detached span (a mark quantum inside a
    /// cycle) but runs inside an unrelated scope.
    Under(u64),
}

struct Inner {
    /// True iff a recorder or at least one sink is attached. Checked with
    /// a relaxed load on every emission; this is the entire disabled-path
    /// cost.
    enabled: AtomicBool,
    /// Total events delivered (not a sequence source — sequence numbers
    /// are assigned under the lock so sinks see a gap-free order).
    delivered: AtomicU64,
    epoch: Instant,
    state: Mutex<BusState>,
}

/// Handle to an event bus. Cloning is an `Arc` bump; all clones share the
/// same recorder, sinks, sequence and clock, so a handle can be threaded
/// through heap, collector and pruner without coordination.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("delivered", &self.events_delivered())
            .finish()
    }
}

impl Telemetry {
    /// A disabled bus: no recorder, no sinks, emissions cost one load.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                delivered: AtomicU64::new(0),
                epoch: Instant::now(),
                state: Mutex::new(BusState::default()),
            }),
        }
    }

    /// A bus with a flight recorder of `slots` events attached.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_recorder(slots: usize) -> Telemetry {
        let bus = Telemetry::new();
        bus.enable_recorder(slots);
        bus
    }

    /// Attaches (or resizes) the flight recorder; existing recorded
    /// events are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn enable_recorder(&self, slots: usize) {
        let mut state = self.lock();
        state.recorder = Some(FlightRecorder::new(slots));
        self.refresh_enabled(&state);
    }

    /// Attaches a sink; events emitted from now on reach it in sequence
    /// order.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        let mut state = self.lock();
        state.sinks.push(sink);
        self.refresh_enabled(&state);
    }

    /// Whether any recorder or sink is listening. One relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Emits an event. When the bus is disabled this is one relaxed
    /// atomic load and a not-taken branch; `build` runs only when
    /// something is listening.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if self.is_enabled() {
            self.deliver(build());
        }
    }

    #[cold]
    fn deliver(&self, event: Event) {
        let mut state = self.lock();
        self.deliver_locked(&mut state, event);
    }

    fn deliver_locked(&self, state: &mut BusState, event: Event) {
        let ts_nanos = u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Sequence assignment happens under the lock so every recorder and
        // sink observes a strictly increasing, gap-free order even when
        // multiple handles emit concurrently.
        let seq = self.inner.delivered.fetch_add(1, Ordering::Relaxed);
        let line = TraceLine {
            seq,
            ts_nanos,
            event,
        };
        if let Some(recorder) = state.recorder.as_mut() {
            recorder.record(&line);
        }
        for sink in &mut state.sinks {
            sink.record(&line);
        }
    }

    /// Opens a causal span: emits [`Event::SpanBegin`] parented to the
    /// innermost open span and returns a guard that emits the matching
    /// [`Event::SpanEnd`] on drop. Guards must drop in LIFO order (let the
    /// borrow scope do it). With the bus disabled this is one relaxed
    /// atomic load and an inert guard — nothing is emitted at either end,
    /// so traces stay balanced even if a sink attaches mid-span.
    ///
    /// `name` must come from the closed taxonomy in
    /// [`span_name`](crate::event::span_name); `arg` is the name-specific
    /// argument recorded with the begin event.
    #[inline]
    pub fn span(&self, name: &'static str, arg: u64) -> SpanGuard {
        if self.is_enabled() {
            SpanGuard {
                open: Some((self.clone(), self.begin_span(name, arg, SpanParent::Stack))),
            }
        } else {
            SpanGuard { open: None }
        }
    }

    /// Opens a *detached* span: no parent, and no participation in the
    /// span stack, so the guard may be stored in a struct and live across
    /// scopes (an incremental mark cycle spanning many mutator slices).
    /// Attach nested work to it explicitly with
    /// [`span_under`](Telemetry::span_under).
    #[inline]
    pub fn span_detached(&self, name: &'static str, arg: u64) -> SpanGuard {
        if self.is_enabled() {
            SpanGuard {
                open: Some((
                    self.clone(),
                    self.begin_span(name, arg, SpanParent::Detached),
                )),
            }
        } else {
            SpanGuard { open: None }
        }
    }

    /// Opens a span explicitly parented to `parent` (typically a detached
    /// span) instead of the stack top; the new span still joins the stack
    /// so events inside it nest under it. A child of an inert guard is
    /// itself inert: a trace never contains a span whose parent it lacks.
    #[inline]
    pub fn span_under(&self, parent: &SpanGuard, name: &'static str, arg: u64) -> SpanGuard {
        match parent.id() {
            Some(parent_id) if self.is_enabled() => SpanGuard {
                open: Some((
                    self.clone(),
                    self.begin_span(name, arg, SpanParent::Under(parent_id)),
                )),
            },
            _ => SpanGuard { open: None },
        }
    }

    #[cold]
    fn begin_span(&self, name: &'static str, arg: u64, parent: SpanParent) -> u64 {
        debug_assert!(
            crate::event::span_name(name).is_ok(),
            "span name {name:?} is outside the closed taxonomy"
        );
        let mut state = self.lock();
        state.last_span_id += 1;
        let id = state.last_span_id;
        let (parent_id, joins_stack) = match parent {
            SpanParent::Stack => (state.span_stack.last().map(|open| open.0), true),
            SpanParent::Detached => (None, false),
            SpanParent::Under(p) => (Some(p), true),
        };
        if joins_stack {
            state.span_stack.push((id, name, arg));
        }
        self.deliver_locked(
            &mut state,
            Event::SpanBegin {
                id,
                parent: parent_id,
                name,
                arg,
            },
        );
        id
    }

    #[cold]
    fn end_span(&self, id: u64) {
        let mut state = self.lock();
        // Guards drop LIFO so the span is normally the stack top; remove
        // by value anyway so one out-of-order drop cannot corrupt every
        // later parent assignment. Detached spans were never pushed.
        if let Some(pos) = state.span_stack.iter().rposition(|open| open.0 == id) {
            state.span_stack.remove(pos);
        }
        self.deliver_locked(&mut state, Event::SpanEnd { id });
    }

    /// Flushes all attached sinks.
    pub fn flush(&self) {
        for sink in &mut self.lock().sinks {
            sink.flush();
        }
    }

    /// Flight-recorder contents, oldest first (empty when no recorder is
    /// attached).
    pub fn recorder_snapshot(&self) -> Vec<TraceLine> {
        self.lock()
            .recorder
            .as_ref()
            .map(FlightRecorder::snapshot)
            .unwrap_or_default()
    }

    /// The open stack-parented spans as (name, arg), outermost first —
    /// the causal context of the code driving this bus right now.
    /// Postmortem bundles stamp this so a report can say *what the
    /// runtime was doing* when the trigger fired.
    pub fn active_spans(&self) -> Vec<(&'static str, u64)> {
        self.lock()
            .span_stack
            .iter()
            .map(|&(_, name, arg)| (name, arg))
            .collect()
    }

    /// Events evicted from the flight recorder since it was attached.
    pub fn recorder_dropped(&self) -> u64 {
        self.lock()
            .recorder
            .as_ref()
            .map_or(0, FlightRecorder::dropped)
    }

    /// Total events delivered to the recorder/sinks since creation.
    pub fn events_delivered(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }

    fn refresh_enabled(&self, state: &BusState) {
        let enabled = state.recorder.is_some() || !state.sinks.is_empty();
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    fn lock(&self) -> MutexGuard<'_, BusState> {
        // A sink that panicked mid-record poisons the lock; telemetry must
        // never take the process down, so keep serving the current state.
        match self.inner.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII handle for an open causal span: emits [`Event::SpanEnd`] when
/// dropped. Obtained from [`Telemetry::span`], [`Telemetry::span_detached`]
/// or [`Telemetry::span_under`]; a guard created while the bus was
/// disabled is inert and emits nothing on drop.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    /// The bus to close the span on and the span's id; `None` for inert
    /// guards. The decision whether to emit is captured at creation so
    /// begin/end always pair even if listeners attach mid-span.
    open: Option<(Telemetry, u64)>,
}

impl SpanGuard {
    /// An inert guard: no span, nothing emitted on drop. Useful as the
    /// rest state of a struct field holding a detached span.
    pub fn inert() -> SpanGuard {
        SpanGuard { open: None }
    }

    /// The span's bus-unique id, `None` for inert guards.
    pub fn id(&self) -> Option<u64> {
        self.open.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    // Inlined so an inert guard's drop folds to a discriminant check at
    // the call site — the disabled path must cost no more than the lazy
    // `emit` bound it shares.
    #[inline]
    fn drop(&mut self) {
        if let Some((bus, id)) = self.open.take() {
            bus.end_span(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingSink {
        seen: Arc<AtomicUsize>,
        flushes: Arc<AtomicUsize>,
    }

    impl Sink for CountingSink {
        fn record(&mut self, _line: &TraceLine) {
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
        fn flush(&mut self) {
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_bus_never_builds_events() {
        let bus = Telemetry::new();
        assert!(!bus.is_enabled());
        let mut built = false;
        bus.emit(|| {
            built = true;
            Event::Iteration { index: 0 }
        });
        assert!(!built, "closure must not run with no listeners");
        assert_eq!(bus.events_delivered(), 0);
    }

    #[test]
    fn recorder_keeps_most_recent_events() {
        let bus = Telemetry::with_recorder(3);
        assert!(bus.is_enabled());
        for i in 0..5 {
            bus.emit(|| Event::Iteration { index: i });
        }
        let snapshot = bus.recorder_snapshot();
        let indices: Vec<u64> = snapshot
            .iter()
            .map(|l| match l.event {
                Event::Iteration { index } => index,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(indices, vec![2, 3, 4]);
        assert_eq!(bus.recorder_dropped(), 2);
        // Sequence numbers are gap-free and increasing.
        let seqs: Vec<u64> = snapshot.iter().map(|l| l.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn sinks_receive_events_and_flushes() {
        let bus = Telemetry::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let flushes = Arc::new(AtomicUsize::new(0));
        bus.add_sink(Box::new(CountingSink {
            seen: Arc::clone(&seen),
            flushes: Arc::clone(&flushes),
        }));
        assert!(bus.is_enabled());
        bus.emit(|| Event::Iteration { index: 1 });
        bus.emit(|| Event::Freed {
            objects: 1,
            bytes: 2,
        });
        bus.flush();
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(flushes.load(Ordering::Relaxed), 1);
        assert_eq!(bus.events_delivered(), 2);
    }

    #[test]
    fn clones_share_one_stream() {
        let bus = Telemetry::with_recorder(8);
        let clone = bus.clone();
        bus.emit(|| Event::Iteration { index: 0 });
        clone.emit(|| Event::Iteration { index: 1 });
        let snapshot = bus.recorder_snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].seq, 0);
        assert_eq!(snapshot[1].seq, 1);
    }

    #[test]
    fn concurrent_emission_is_gap_free() {
        let bus = Telemetry::with_recorder(4096);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let bus = bus.clone();
                std::thread::spawn(move || {
                    for i in 0..256 {
                        bus.emit(|| Event::Iteration {
                            index: t * 1000 + i,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snapshot = bus.recorder_snapshot();
        assert_eq!(snapshot.len(), 1024);
        for (i, line) in snapshot.iter().enumerate() {
            assert_eq!(line.seq, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_recorder_panics() {
        let _ = FlightRecorder::new(0);
    }

    fn span_events(bus: &Telemetry) -> Vec<Event> {
        bus.recorder_snapshot()
            .into_iter()
            .map(|l| l.event)
            .collect()
    }

    #[test]
    fn spans_nest_via_the_stack_and_close_on_drop() {
        let bus = Telemetry::with_recorder(16);
        {
            let _outer = bus.span("round", 3);
            {
                let _inner = bus.span("request", 9);
                bus.emit(|| Event::Iteration { index: 0 });
            }
        }
        assert_eq!(
            span_events(&bus),
            vec![
                Event::SpanBegin {
                    id: 1,
                    parent: None,
                    name: "round",
                    arg: 3,
                },
                Event::SpanBegin {
                    id: 2,
                    parent: Some(1),
                    name: "request",
                    arg: 9,
                },
                Event::Iteration { index: 0 },
                Event::SpanEnd { id: 2 },
                Event::SpanEnd { id: 1 },
            ]
        );
    }

    #[test]
    fn detached_spans_skip_the_stack_and_parent_explicit_children() {
        let bus = Telemetry::with_recorder(16);
        let cycle = bus.span_detached("cycle", 7);
        {
            // A stack span opened while the cycle is in flight must NOT
            // parent to it — the cycle is not on the stack.
            let _stall = bus.span("collect_until_fits", 64);
            let _quantum = bus.span_under(&cycle, "quantum", 7);
        }
        drop(cycle);
        assert_eq!(
            span_events(&bus),
            vec![
                Event::SpanBegin {
                    id: 1,
                    parent: None,
                    name: "cycle",
                    arg: 7,
                },
                Event::SpanBegin {
                    id: 2,
                    parent: None,
                    name: "collect_until_fits",
                    arg: 64,
                },
                Event::SpanBegin {
                    id: 3,
                    parent: Some(1),
                    name: "quantum",
                    arg: 7,
                },
                Event::SpanEnd { id: 3 },
                Event::SpanEnd { id: 2 },
                Event::SpanEnd { id: 1 },
            ]
        );
    }

    #[test]
    fn active_spans_report_the_open_stack() {
        let bus = Telemetry::with_recorder(16);
        assert!(bus.active_spans().is_empty());
        let _outer = bus.span("round", 3);
        let inner = bus.span("request", 9);
        // Detached spans never join the stack, so they are not "active"
        // in the what-is-the-bus-doing sense.
        let _cycle = bus.span_detached("cycle", 7);
        assert_eq!(bus.active_spans(), vec![("round", 3), ("request", 9)]);
        drop(inner);
        assert_eq!(bus.active_spans(), vec![("round", 3)]);
    }

    #[test]
    fn disabled_bus_spans_are_inert_and_stay_inert() {
        let bus = Telemetry::new();
        let guard = bus.span("round", 0);
        assert_eq!(guard.id(), None);
        // Enabling mid-span must not produce a dangling SpanEnd.
        bus.enable_recorder(8);
        drop(guard);
        assert!(bus.recorder_snapshot().is_empty());
        // Children of inert guards are inert even on an enabled bus.
        let parent = SpanGuard::inert();
        let child = bus.span_under(&parent, "request", 1);
        assert_eq!(child.id(), None);
        drop(child);
        assert!(bus.recorder_snapshot().is_empty());
        assert_eq!(bus.events_delivered(), 0);
    }
}
