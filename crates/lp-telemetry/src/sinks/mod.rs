//! Built-in sinks: JSONL trace files, Prometheus-style text exposition,
//! and an in-process pause-time histogram.

mod histogram;
mod jsonl;
mod prometheus;

pub use histogram::PauseHistogram;
pub use jsonl::JsonlSink;
pub use prometheus::{escape_label_value, PrometheusSink};
