//! Built-in sinks: JSONL trace files, Prometheus-style text exposition,
//! an in-process pause-time histogram, and a fixed-capacity heap-trend
//! time series.

mod histogram;
mod jsonl;
mod prometheus;
mod timeseries;

pub use histogram::PauseHistogram;
pub use jsonl::JsonlSink;
pub use prometheus::{escape_label_value, PrometheusSink};
pub use timeseries::{LeakTrend, TimeSeries, TimeSeriesBucket};
