//! JSONL sink: one JSON object per line, replayable by `lp-bench`'s
//! `trace_replay` binary.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::bus::Sink;
use crate::event::TraceLine;

/// Writes every event as one JSON line to an arbitrary writer.
///
/// I/O errors do not panic — telemetry must never take the runtime down.
/// The first error latches, subsequent lines are dropped, and the error
/// is reported once via a `eprintln!` at flush time.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    error: Option<io::Error>,
    reported: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`. Callers that hand in an unbuffered writer (e.g. a
    /// raw `File`) should wrap it in a [`BufWriter`] first; the sink
    /// writes one line per event.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            error: None,
            reported: false,
        }
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    /// Flushes on drop so short-lived processes (and buses torn down
    /// without an explicit [`Telemetry::flush`](crate::Telemetry::flush))
    /// never truncate the last trace records. A `BufWriter` flushes its
    /// own buffer on drop, but silently swallows the error and does not
    /// help writers without such a drop guard.
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, line: &TraceLine) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{}", line.to_json()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
        if let Some(e) = &self.error {
            if !self.reported {
                self.reported = true;
                eprintln!("lp-telemetry: JSONL sink failed, trace truncated: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use std::sync::{Arc, Mutex};

    /// A writer that keeps everything in an internal buffer until `flush`
    /// moves it to the shared handle — the behaviour of a `BufWriter`
    /// whose buffer never fills, observable from outside the sink.
    struct Buffered {
        pending: Vec<u8>,
        flushed: Arc<Mutex<Vec<u8>>>,
    }

    impl Buffered {
        fn new() -> (Buffered, Arc<Mutex<Vec<u8>>>) {
            let flushed = Arc::new(Mutex::new(Vec::new()));
            (
                Buffered {
                    pending: Vec::new(),
                    flushed: Arc::clone(&flushed),
                },
                flushed,
            )
        }
    }

    impl Write for Buffered {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.pending.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            let mut out = self.flushed.lock().unwrap();
            out.extend_from_slice(&self.pending);
            self.pending.clear();
            Ok(())
        }
    }

    fn iteration(i: u64) -> TraceLine {
        TraceLine {
            seq: i,
            ts_nanos: i * 10,
            event: Event::Iteration { index: i },
        }
    }

    fn assert_three_lines(flushed: &Arc<Mutex<Vec<u8>>>) {
        let text = String::from_utf8(flushed.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let parsed = TraceLine::parse(line).unwrap();
            assert_eq!(parsed.seq, i as u64);
        }
    }

    #[test]
    fn writes_one_parseable_line_per_event() {
        let (writer, flushed) = Buffered::new();
        let mut sink = JsonlSink::new(writer);
        for i in 0..3 {
            sink.record(&iteration(i));
        }
        sink.flush();
        assert!(sink.error().is_none());
        assert_three_lines(&flushed);
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        // Regression test: a short-lived process that never calls flush
        // must still get a complete trace when the sink is dropped.
        let (writer, flushed) = Buffered::new();
        let mut sink = JsonlSink::new(writer);
        for i in 0..3 {
            sink.record(&iteration(i));
        }
        assert!(
            flushed.lock().unwrap().is_empty(),
            "nothing reaches the backing store before a flush"
        );
        drop(sink);
        assert_three_lines(&flushed);
    }

    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_latch_instead_of_panicking() {
        let mut sink = JsonlSink::new(FailingWriter);
        sink.record(&TraceLine {
            seq: 0,
            ts_nanos: 0,
            event: Event::Iteration { index: 0 },
        });
        assert!(sink.error().is_some());
        // Further records are no-ops, not panics.
        sink.record(&TraceLine {
            seq: 1,
            ts_nanos: 1,
            event: Event::Iteration { index: 1 },
        });
        sink.flush();
    }
}
