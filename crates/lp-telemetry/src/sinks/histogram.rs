//! In-process pause-time histogram: answers the percentile questions
//! (p50 / p95 / p99 / p999 / max) that end-of-run `GcStats` aggregates
//! cannot.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::bus::Sink;
use crate::event::{Event, TraceLine};

/// Raw samples are capped so a pathological run cannot grow without
/// bound; at 8 bytes per pause this is 8 MiB.
const MAX_SAMPLES: usize = 1 << 20;

#[derive(Debug, Default)]
struct Samples {
    /// Mutator pauses in nanoseconds, in arrival order: one per
    /// `collection` event (mark + sweep, or flush + sweep when the mark
    /// phase ran incrementally) and one per `mark_quantum` event.
    pauses: Vec<u64>,
    /// Collections observed after the sample cap was hit.
    truncated: u64,
}

/// Sink recording one pause-time sample per `collection` event. Clones
/// share state: hand one clone to the bus and keep the other to query.
#[derive(Clone, Debug, Default)]
pub struct PauseHistogram {
    samples: Arc<Mutex<Samples>>,
}

impl PauseHistogram {
    /// An empty histogram.
    pub fn new() -> PauseHistogram {
        PauseHistogram::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Samples> {
        match self.samples.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of pause samples recorded.
    pub fn count(&self) -> usize {
        self.lock().pauses.len()
    }

    /// Collections dropped after the sample cap was reached.
    pub fn truncated(&self) -> u64 {
        self.lock().truncated
    }

    /// The `q`-quantile pause (nearest-rank), `None` with no samples.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let samples = self.lock();
        if samples.pauses.is_empty() {
            return None;
        }
        let mut sorted = samples.pauses.clone();
        sorted.sort_unstable();
        // Nearest-rank: ceil(q * n) clamped to [1, n], 1-based.
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(Duration::from_nanos(sorted[rank - 1]))
    }

    /// Median pause.
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(0.50)
    }

    /// 95th-percentile pause.
    pub fn p95(&self) -> Option<Duration> {
        self.percentile(0.95)
    }

    /// 99th-percentile pause.
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(0.99)
    }

    /// 99.9th-percentile pause.
    pub fn p999(&self) -> Option<Duration> {
        self.percentile(0.999)
    }

    /// Longest pause.
    pub fn max(&self) -> Option<Duration> {
        self.lock()
            .pauses
            .iter()
            .max()
            .copied()
            .map(Duration::from_nanos)
    }

    /// Records one sample directly, bypassing the event stream. The
    /// histogram is a general duration/latency summary; a multi-tenant
    /// host uses this to record per-request service times that never
    /// appear as telemetry events.
    pub fn record_nanos(&self, nanos: u64) {
        let mut samples = self.lock();
        if samples.pauses.len() < MAX_SAMPLES {
            samples.pauses.push(nanos);
        } else {
            samples.truncated += 1;
        }
    }

    /// Renders one Prometheus summary-style family from several labeled
    /// histograms: `# HELP`/`# TYPE` once, then one
    /// `name{label="...",quantile="..."}` gauge per histogram and
    /// quantile (0.5 / 0.95 / 0.99 / 0.999), plus a `name_count` counter
    /// family with each histogram's sample count. Histograms with no
    /// samples contribute only their count (0) — a quantile of nothing is
    /// not 0ns. Label values are escaped.
    pub fn merged_quantiles(
        name: &str,
        help: &str,
        label: &str,
        parts: &[(&str, &PauseHistogram)],
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (value, histogram) in parts {
            let escaped = crate::sinks::escape_label_value(value);
            for (tag, q) in [
                ("0.5", 0.5),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                if let Some(d) = histogram.percentile(q) {
                    let _ = writeln!(
                        out,
                        "{name}{{{label}=\"{escaped}\",quantile=\"{tag}\"}} {}",
                        d.as_nanos()
                    );
                }
            }
        }
        let _ = writeln!(out, "# HELP {name}_count Samples recorded in {name}.");
        let _ = writeln!(out, "# TYPE {name}_count counter");
        for (value, histogram) in parts {
            let escaped = crate::sinks::escape_label_value(value);
            let _ = writeln!(
                out,
                "{name}_count{{{label}=\"{escaped}\"}} {}",
                histogram.count()
            );
        }
        out
    }

    /// Folds `other`'s samples into `self`, respecting the sample cap:
    /// samples that no longer fit count as truncated, and `other`'s own
    /// truncation count carries over. Percentiles over the merged histogram
    /// answer host-wide questions ("p95 pause across all tenants") that
    /// per-tenant histograms cannot. Merging a histogram with itself (same
    /// shared state) is a no-op rather than a double-count.
    pub fn merge(&self, other: &PauseHistogram) {
        if Arc::ptr_eq(&self.samples, &other.samples) {
            return;
        }
        let (pauses, truncated) = {
            let theirs = other.lock();
            (theirs.pauses.clone(), theirs.truncated)
        };
        let mut mine = self.lock();
        for pause in pauses {
            if mine.pauses.len() < MAX_SAMPLES {
                mine.pauses.push(pause);
            } else {
                mine.truncated += 1;
            }
        }
        mine.truncated += truncated;
    }
}

impl Sink for PauseHistogram {
    fn record(&mut self, line: &TraceLine) {
        // A stop-the-world collection pauses the mutator for mark + sweep.
        // An incremental collection's terminal pause is flush + sweep (the
        // accumulated mark time ran interleaved with the mutator); each of
        // its quanta is a separate short pause and gets its own sample.
        let pause = match line.event {
            Event::Collection {
                mark_nanos,
                sweep_nanos,
                flush_nanos,
                ..
            } => flush_nanos
                .unwrap_or(mark_nanos)
                .saturating_add(sweep_nanos),
            Event::MarkQuantum { nanos, .. } => nanos,
            _ => return,
        };
        let mut samples = self.lock();
        if samples.pauses.len() < MAX_SAMPLES {
            samples.pauses.push(pause);
        } else {
            samples.truncated += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(pause_nanos: u64) -> TraceLine {
        TraceLine {
            seq: 0,
            ts_nanos: 0,
            event: Event::Collection {
                gc_index: 1,
                state: "OBSERVE".to_owned(),
                live_bytes_after: 0,
                live_objects_after: 0,
                freed_bytes: 0,
                freed_objects: 0,
                pruned_refs: 0,
                mark_nanos: pause_nanos / 2,
                sweep_nanos: pause_nanos - pause_nanos / 2,
                flush_nanos: None,
            },
        }
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = PauseHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = PauseHistogram::new();
        let view = h.clone();
        for pause in [100, 200, 300, 400, 1000] {
            h.record(&collection(pause));
        }
        assert_eq!(view.count(), 5);
        assert_eq!(view.p50(), Some(Duration::from_nanos(300)));
        assert_eq!(view.p95(), Some(Duration::from_nanos(1000)));
        assert_eq!(view.max(), Some(Duration::from_nanos(1000)));
        assert_eq!(view.percentile(0.0), Some(Duration::from_nanos(100)));
        assert_eq!(view.percentile(1.0), Some(Duration::from_nanos(1000)));
    }

    #[test]
    fn merge_combines_samples_and_truncation() {
        let mut a = PauseHistogram::new();
        let mut b = PauseHistogram::new();
        for pause in [100, 200] {
            a.record(&collection(pause));
        }
        for pause in [300, 400, 1000] {
            b.record(&collection(pause));
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.p50(), Some(Duration::from_nanos(300)));
        assert_eq!(a.max(), Some(Duration::from_nanos(1000)));
        // b is untouched.
        assert_eq!(b.count(), 3);

        // Self-merge through a clone must not double-count.
        let alias = a.clone();
        a.merge(&alias);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn tail_percentiles_use_nearest_rank() {
        let h = PauseHistogram::new();
        // 1..=1000 ns: nearest-rank p99 is the 990th sample, p999 the
        // 999th — distinct from p95 (950) and max (1000).
        for nanos in 1..=1000 {
            h.record_nanos(nanos);
        }
        assert_eq!(h.p95(), Some(Duration::from_nanos(950)));
        assert_eq!(h.p99(), Some(Duration::from_nanos(990)));
        assert_eq!(h.p999(), Some(Duration::from_nanos(999)));
        assert_eq!(h.max(), Some(Duration::from_nanos(1000)));
    }

    #[test]
    fn merge_preserves_tail_percentiles() {
        // Split 1..=1000 across two histograms so neither alone has the
        // merged tail; the merged percentiles must match a single
        // histogram over the union.
        let evens = PauseHistogram::new();
        let odds = PauseHistogram::new();
        let all = PauseHistogram::new();
        for nanos in 1..=1000u64 {
            if nanos % 2 == 0 {
                evens.record_nanos(nanos);
            } else {
                odds.record_nanos(nanos);
            }
            all.record_nanos(nanos);
        }
        evens.merge(&odds);
        assert_eq!(evens.count(), 1000);
        assert_eq!(evens.p99(), all.p99());
        assert_eq!(evens.p999(), all.p999());
        assert_eq!(evens.p50(), all.p50());
        assert_eq!(evens.max(), all.max());
    }

    #[test]
    fn merged_quantiles_renders_one_family_with_labels() {
        let a = PauseHistogram::new();
        let empty = PauseHistogram::new();
        for nanos in 1..=100 {
            a.record_nanos(nanos);
        }
        let text = PauseHistogram::merged_quantiles(
            "lp_server_request_nanos",
            "Request service time in nanoseconds.",
            "tenant",
            &[("checkout", &a), ("idle\"t\"", &empty)],
        );
        assert_eq!(
            text.matches("# TYPE lp_server_request_nanos gauge").count(),
            1
        );
        assert!(text.contains("lp_server_request_nanos{tenant=\"checkout\",quantile=\"0.5\"} 50"));
        assert!(text.contains("lp_server_request_nanos{tenant=\"checkout\",quantile=\"0.99\"} 99"));
        assert!(
            text.contains("lp_server_request_nanos{tenant=\"checkout\",quantile=\"0.999\"} 100")
        );
        assert!(text.contains("lp_server_request_nanos_count{tenant=\"checkout\"} 100"));
        // The empty histogram reports a count but no quantiles, with its
        // label escaped.
        assert!(text.contains(r#"lp_server_request_nanos_count{tenant="idle\"t\""} 0"#));
        assert!(!text.contains(r#"idle\"t\"",quantile"#));
    }

    #[test]
    fn incremental_collections_sample_flush_plus_sweep_and_each_quantum() {
        let mut h = PauseHistogram::new();
        h.record(&TraceLine {
            seq: 0,
            ts_nanos: 0,
            event: Event::MarkQuantum {
                gc_index: 1,
                objects: 64,
                bytes: 4096,
                satb_drained: 2,
                nanos: 700,
            },
        });
        h.record(&TraceLine {
            seq: 1,
            ts_nanos: 0,
            event: Event::Collection {
                gc_index: 1,
                state: "OBSERVE".to_owned(),
                live_bytes_after: 0,
                live_objects_after: 0,
                freed_bytes: 0,
                freed_objects: 0,
                pruned_refs: 0,
                // Accumulated mark time is huge but ran interleaved with
                // the mutator; the pause sample must ignore it.
                mark_nanos: 1_000_000,
                sweep_nanos: 300,
                flush_nanos: Some(200),
            },
        });
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(Duration::from_nanos(700)));
    }

    #[test]
    fn non_collection_events_are_ignored() {
        let mut h = PauseHistogram::new();
        h.record(&TraceLine {
            seq: 0,
            ts_nanos: 0,
            event: Event::Iteration { index: 0 },
        });
        assert_eq!(h.count(), 0);
    }
}
