//! Fixed-capacity heap-trend time series: the event stream folded into a
//! ring of per-interval buckets (live bytes, edge-table footprint, pause
//! percentiles, prunes, sheds), cheap enough to keep per tenant and old
//! enough to answer "has this heap been growing for the last minute?" —
//! the question a point-in-time gauge cannot. The leak-trend query turns
//! monotone retained growth over enough consecutive windows into a typed
//! suspicion a host can escalate as [`Event::LeakSuspected`].

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::bus::Sink;
use crate::event::{Event, TraceLine};

/// Pause samples kept per bucket; a window with more collections than
/// this still counts them all, it just stops refining the percentiles.
const MAX_BUCKET_PAUSES: usize = 4096;

#[derive(Debug, Default)]
struct Bucket {
    /// Window index: events with `ts_nanos / interval == window` land here.
    window: u64,
    /// Live bytes after the window's most recent collection.
    live_bytes: u64,
    /// Live objects after the window's most recent collection.
    live_objects: u64,
    /// Edge-table footprint after the window's most recent census.
    edge_table_bytes: u64,
    /// Full collections observed in the window.
    collections: u64,
    /// References poisoned by collections in the window.
    pruned_refs: u64,
    /// Requests shed in the window (fed by the host; see
    /// [`TimeSeries::fold_sheds`]).
    sheds: u64,
    /// Mutator pause samples in the window, capped at
    /// [`MAX_BUCKET_PAUSES`].
    pauses: Vec<u64>,
}

impl Bucket {
    fn pause_percentile(&self, q: f64) -> u64 {
        if self.pauses.is_empty() {
            return 0;
        }
        let mut sorted = self.pauses.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }
}

/// One completed view of a time-series bucket, percentiles precomputed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeSeriesBucket {
    /// Window index; the window covers
    /// `[window * interval, (window + 1) * interval)` on the bus clock.
    pub window: u64,
    /// Live bytes after the window's most recent collection.
    pub live_bytes: u64,
    /// Live objects after the window's most recent collection.
    pub live_objects: u64,
    /// Edge-table footprint after the window's most recent census.
    pub edge_table_bytes: u64,
    /// Full collections observed in the window.
    pub collections: u64,
    /// References poisoned in the window.
    pub pruned_refs: u64,
    /// Requests shed in the window.
    pub sheds: u64,
    /// Median mutator pause in the window, 0 with no samples.
    pub pause_p50_nanos: u64,
    /// 95th-percentile mutator pause in the window.
    pub pause_p95_nanos: u64,
    /// 99th-percentile mutator pause in the window.
    pub pause_p99_nanos: u64,
}

/// A sustained retained-growth trend reported by
/// [`TimeSeries::leak_trend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakTrend {
    /// Consecutive buckets the growth spans.
    pub windows: u64,
    /// Live bytes at the start of the trend.
    pub from_bytes: u64,
    /// Live bytes at the newest bucket of the trend.
    pub to_bytes: u64,
}

#[derive(Debug)]
struct Series {
    interval_nanos: u64,
    capacity: usize,
    buckets: VecDeque<Bucket>,
}

impl Series {
    /// The bucket for `ts_nanos`, creating/evicting as needed. Bus
    /// timestamps are monotone, so only the newest bucket is ever
    /// written; a stray early timestamp folds into the newest bucket
    /// rather than corrupting history.
    fn bucket_at(&mut self, ts_nanos: u64) -> &mut Bucket {
        let window = ts_nanos / self.interval_nanos;
        let stale = self
            .buckets
            .back()
            .is_some_and(|newest| newest.window >= window);
        if !stale {
            // Gauges carry forward across empty windows: a quiet window
            // still knows how big the heap was.
            let carried = self.buckets.back();
            let bucket = Bucket {
                window,
                live_bytes: carried.map_or(0, |b| b.live_bytes),
                live_objects: carried.map_or(0, |b| b.live_objects),
                edge_table_bytes: carried.map_or(0, |b| b.edge_table_bytes),
                ..Bucket::default()
            };
            if self.buckets.len() == self.capacity {
                self.buckets.pop_front();
            }
            self.buckets.push_back(bucket);
        }
        self.buckets.back_mut().unwrap_or_else(|| unreachable!())
    }

    fn pause_sample(&mut self, ts_nanos: u64, nanos: u64) {
        let bucket = self.bucket_at(ts_nanos);
        if bucket.pauses.len() < MAX_BUCKET_PAUSES {
            bucket.pauses.push(nanos);
        }
    }
}

/// Clone-shared time-series sink: hand one clone to the bus and keep the
/// other to query. Fixed capacity — at most `capacity` buckets of
/// `interval` each are retained, oldest evicted first.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    inner: Arc<Mutex<Series>>,
}

impl TimeSeries {
    /// A series of up to `capacity` buckets of `interval` each.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `capacity` is zero.
    pub fn new(interval: Duration, capacity: usize) -> TimeSeries {
        let interval_nanos = u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX);
        assert!(interval_nanos > 0, "bucket interval must be non-zero");
        assert!(capacity > 0, "time series needs at least one bucket");
        TimeSeries {
            inner: Arc::new(Mutex::new(Series {
                interval_nanos,
                capacity,
                buckets: VecDeque::with_capacity(capacity),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Series> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Bucket interval.
    pub fn interval(&self) -> Duration {
        Duration::from_nanos(self.lock().interval_nanos)
    }

    /// Adds shed requests to the newest bucket (creating the first bucket
    /// if the series is empty). Sheds are decided on the host plane, whose
    /// clock is not the tenant bus clock, so they are attributed to the
    /// tenant's most recent window rather than timestamped exactly.
    pub fn fold_sheds(&self, count: u64) {
        if count == 0 {
            return;
        }
        let mut series = self.lock();
        series.bucket_at(0).sheds += count;
    }

    /// The retained buckets, oldest first, with pause percentiles
    /// computed.
    pub fn snapshot(&self) -> Vec<TimeSeriesBucket> {
        let series = self.lock();
        series
            .buckets
            .iter()
            .map(|b| TimeSeriesBucket {
                window: b.window,
                live_bytes: b.live_bytes,
                live_objects: b.live_objects,
                edge_table_bytes: b.edge_table_bytes,
                collections: b.collections,
                pruned_refs: b.pruned_refs,
                sheds: b.sheds,
                pause_p50_nanos: b.pause_percentile(0.50),
                pause_p95_nanos: b.pause_percentile(0.95),
                pause_p99_nanos: b.pause_percentile(0.99),
            })
            .collect()
    }

    /// Reports a sustained leak suspicion: `Some` iff the newest `windows`
    /// buckets exist, their live-bytes gauges are monotone non-decreasing
    /// bucket over bucket, and the newest strictly exceeds the oldest.
    /// Plateaus inside the trend are allowed (a leak under a generational
    /// collector grows in steps); any dip breaks it.
    pub fn leak_trend(&self, windows: usize) -> Option<LeakTrend> {
        if windows < 2 {
            return None;
        }
        let series = self.lock();
        if series.buckets.len() < windows {
            return None;
        }
        let start = series.buckets.len() - windows;
        let mut prev: Option<u64> = None;
        for bucket in series.buckets.iter().skip(start) {
            if let Some(prev) = prev {
                if bucket.live_bytes < prev {
                    return None;
                }
            }
            prev = Some(bucket.live_bytes);
        }
        let from_bytes = series.buckets[start].live_bytes;
        let to_bytes = prev.unwrap_or(0);
        (to_bytes > from_bytes).then_some(LeakTrend {
            windows: windows as u64,
            from_bytes,
            to_bytes,
        })
    }
}

impl Sink for TimeSeries {
    fn record(&mut self, line: &TraceLine) {
        let mut series = self.lock();
        match &line.event {
            Event::Collection {
                live_bytes_after,
                live_objects_after,
                pruned_refs,
                mark_nanos,
                sweep_nanos,
                flush_nanos,
                ..
            } => {
                let pause = flush_nanos
                    .unwrap_or(*mark_nanos)
                    .saturating_add(*sweep_nanos);
                let bucket = series.bucket_at(line.ts_nanos);
                bucket.live_bytes = *live_bytes_after;
                bucket.live_objects = *live_objects_after;
                bucket.collections += 1;
                bucket.pruned_refs += pruned_refs;
                if bucket.pauses.len() < MAX_BUCKET_PAUSES {
                    bucket.pauses.push(pause);
                }
            }
            Event::MarkQuantum { nanos, .. } => {
                series.pause_sample(line.ts_nanos, *nanos);
            }
            Event::EdgeCensus {
                footprint_bytes, ..
            } => {
                series.bucket_at(line.ts_nanos).edge_table_bytes = *footprint_bytes;
            }
            Event::TenantShed {
                queue_full,
                quarantined,
                ..
            } => {
                series.bucket_at(line.ts_nanos).sheds += queue_full + quarantined;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection_line(ts_nanos: u64, live_bytes: u64, pruned: u64) -> TraceLine {
        TraceLine {
            seq: 0,
            ts_nanos,
            event: Event::Collection {
                gc_index: 1,
                state: "OBSERVE".to_owned(),
                live_bytes_after: live_bytes,
                live_objects_after: live_bytes / 16,
                freed_bytes: 0,
                freed_objects: 0,
                pruned_refs: pruned,
                mark_nanos: 100,
                sweep_nanos: 50,
                flush_nanos: None,
            },
        }
    }

    fn series_of(interval_ms: u64, capacity: usize) -> TimeSeries {
        TimeSeries::new(Duration::from_millis(interval_ms), capacity)
    }

    #[test]
    fn buckets_fold_collections_and_carry_gauges_forward() {
        let mut ts = series_of(1, 8);
        let view = ts.clone();
        ts.record(&collection_line(100_000, 4096, 1));
        ts.record(&collection_line(200_000, 8192, 0));
        // Window 3 is skipped entirely; window 4 still reports the heap.
        ts.record(&collection_line(4_200_000, 10_000, 2));
        let buckets = view.snapshot();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].window, 0);
        assert_eq!(buckets[0].live_bytes, 8192);
        assert_eq!(buckets[0].collections, 2);
        assert_eq!(buckets[0].pruned_refs, 1);
        assert_eq!(buckets[0].pause_p50_nanos, 150);
        assert_eq!(buckets[1].window, 4);
        assert_eq!(buckets[1].live_bytes, 10_000);
        assert_eq!(buckets[1].pruned_refs, 2);
    }

    #[test]
    fn capacity_evicts_oldest_buckets() {
        let mut ts = series_of(1, 2);
        for window in 0..5u64 {
            ts.record(&collection_line(window * 1_000_000, 1000 + window, 0));
        }
        let buckets = ts.snapshot();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].window, 3);
        assert_eq!(buckets[1].window, 4);
    }

    #[test]
    fn quanta_sample_pauses_and_census_tracks_edge_bytes() {
        let mut ts = series_of(1, 4);
        ts.record(&TraceLine {
            seq: 0,
            ts_nanos: 10,
            event: Event::MarkQuantum {
                gc_index: 1,
                objects: 8,
                bytes: 512,
                satb_drained: 0,
                nanos: 700,
            },
        });
        ts.record(&TraceLine {
            seq: 1,
            ts_nanos: 20,
            event: Event::EdgeCensus {
                gc_index: 1,
                edge_types: 3,
                capacity: 64,
                footprint_bytes: 2048,
                entries: Vec::new(),
            },
        });
        let buckets = ts.snapshot();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].pause_p95_nanos, 700);
        assert_eq!(buckets[0].edge_table_bytes, 2048);
    }

    #[test]
    fn fold_sheds_lands_in_the_newest_bucket() {
        let mut ts = series_of(1, 4);
        let view = ts.clone();
        ts.record(&collection_line(100, 4096, 0));
        view.fold_sheds(3);
        view.fold_sheds(0);
        assert_eq!(ts.snapshot()[0].sheds, 3);
    }

    #[test]
    fn leak_trend_requires_monotone_growth() {
        let mut ts = series_of(1, 16);
        for (window, bytes) in [(0u64, 1000u64), (1, 1000), (2, 1200), (3, 1500)] {
            ts.record(&collection_line(window * 1_000_000, bytes, 0));
        }
        let trend = ts.leak_trend(4).expect("monotone growth with a plateau");
        assert_eq!(trend.windows, 4);
        assert_eq!(trend.from_bytes, 1000);
        assert_eq!(trend.to_bytes, 1500);
        // More windows than buckets: undecidable, not suspected.
        assert_eq!(ts.leak_trend(5), None);
        // A flat tail is not growth.
        ts.record(&collection_line(4 * 1_000_000, 1500, 0));
        ts.record(&collection_line(5 * 1_000_000, 1500, 0));
        assert_eq!(ts.leak_trend(3), None);
        // A dip breaks the trend.
        ts.record(&collection_line(6 * 1_000_000, 900, 0));
        assert_eq!(ts.leak_trend(3), None);
    }
}
