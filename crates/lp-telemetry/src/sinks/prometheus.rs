//! Prometheus-style text exposition: the sink folds the event stream into
//! a small set of counters/gauges and renders them on demand in the
//! `text/plain; version=0.0.4` format a scraper would ingest.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::bus::Sink;
use crate::event::{Event, GcPhase, TraceLine};

/// Escapes a label *value* per the Prometheus text exposition format
/// (v0.0.4): backslash, double quote and newline must be written as `\\`,
/// `\"` and `\n`. Class names are the labels that need this — real
/// workloads register names like `java.util.LinkedList$Node` today, but
/// nothing stops a VM from reporting generics, inner classes or
/// path-like names containing any of the three.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct Metrics {
    collections_total: u64,
    minor_collections_total: u64,
    mark_nanos_total: u64,
    sweep_nanos_total: u64,
    live_bytes: u64,
    live_objects: u64,
    freed_bytes_total: u64,
    freed_objects_total: u64,
    pruned_refs_total: u64,
    ref_reads_total: u64,
    barrier_cold_hits_total: u64,
    stale_use_updates_total: u64,
    pruned_access_throws_total: u64,
    allocations_total: u64,
    allocated_bytes_total: u64,
    exhaustions_total: u64,
    iterations_total: u64,
    state_transitions_total: u64,
    selections_total: u64,
    snapshots_total: u64,
    snapshot_nanos_total: u64,
    verify_passes_total: u64,
    verify_nanos_total: u64,
    verify_violations_total: u64,
    edge_types: u64,
    edge_table_footprint_bytes: u64,
    state: String,
}

/// Aggregating sink whose [`render`](PrometheusSink::render) produces a
/// Prometheus text-exposition snapshot. Clones share state, so keep one
/// clone to render from while the bus owns the other.
#[derive(Clone, Debug, Default)]
pub struct PrometheusSink {
    metrics: Arc<Mutex<Metrics>>,
}

impl PrometheusSink {
    /// An empty snapshot sink.
    pub fn new() -> PrometheusSink {
        PrometheusSink::default()
    }

    /// Renders the current snapshot in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let m = match self.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "lp_collections_total",
            "Full garbage collections performed.",
            m.collections_total,
        );
        counter(
            "lp_minor_collections_total",
            "Nursery collections performed.",
            m.minor_collections_total,
        );
        counter(
            "lp_freed_bytes_total",
            "Bytes reclaimed by sweeps.",
            m.freed_bytes_total,
        );
        counter(
            "lp_freed_objects_total",
            "Objects reclaimed by sweeps.",
            m.freed_objects_total,
        );
        counter(
            "lp_pruned_refs_total",
            "References poisoned by PRUNE collections.",
            m.pruned_refs_total,
        );
        counter(
            "lp_ref_reads_total",
            "Reference loads through the conditional read barrier.",
            m.ref_reads_total,
        );
        counter(
            "lp_barrier_cold_hits_total",
            "Cold-path executions of the read barrier.",
            m.barrier_cold_hits_total,
        );
        counter(
            "lp_stale_use_updates_total",
            "Stale-use observations recorded in the edge table.",
            m.stale_use_updates_total,
        );
        counter(
            "lp_pruned_access_throws_total",
            "Accesses to poisoned references that threw.",
            m.pruned_access_throws_total,
        );
        counter(
            "lp_allocations_total",
            "Objects allocated.",
            m.allocations_total,
        );
        counter(
            "lp_allocated_bytes_total",
            "Bytes allocated.",
            m.allocated_bytes_total,
        );
        counter(
            "lp_heap_exhaustions_total",
            "Allocation failures after collection.",
            m.exhaustions_total,
        );
        counter(
            "lp_workload_iterations_total",
            "Workload driver iterations completed.",
            m.iterations_total,
        );
        counter(
            "lp_state_transitions_total",
            "Figure-2 state machine transitions.",
            m.state_transitions_total,
        );
        counter(
            "lp_selections_total",
            "SELECT decisions made.",
            m.selections_total,
        );
        counter(
            "lp_heap_snapshots_total",
            "Heap snapshots captured.",
            m.snapshots_total,
        );
        counter(
            "lp_heap_snapshot_nanos_total",
            "Cumulative wall time spent capturing heap snapshots.",
            m.snapshot_nanos_total,
        );
        counter(
            "lp_verify_passes_total",
            "Heap-sanitizer passes run.",
            m.verify_passes_total,
        );
        counter(
            "lp_verify_nanos_total",
            "Cumulative wall time spent in heap-sanitizer passes.",
            m.verify_nanos_total,
        );
        counter(
            "lp_verify_violations_total",
            "Heap invariant violations reported by the sanitizer.",
            m.verify_violations_total,
        );
        // Labeled family: HELP/TYPE once, one sample per label set.
        let _ = writeln!(
            out,
            "# HELP lp_gc_phase_nanos_total Cumulative wall time per GC phase in nanoseconds."
        );
        let _ = writeln!(out, "# TYPE lp_gc_phase_nanos_total counter");
        let _ = writeln!(
            out,
            "lp_gc_phase_nanos_total{{phase=\"mark\"}} {}",
            m.mark_nanos_total
        );
        let _ = writeln!(
            out,
            "lp_gc_phase_nanos_total{{phase=\"sweep\"}} {}",
            m.sweep_nanos_total
        );
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "lp_live_bytes",
            "Live bytes after the most recent collection.",
            m.live_bytes,
        );
        gauge(
            "lp_live_objects",
            "Live objects after the most recent collection.",
            m.live_objects,
        );
        gauge(
            "lp_edge_types",
            "Live entries in the edge table.",
            m.edge_types,
        );
        gauge(
            "lp_edge_table_footprint_bytes",
            "Edge table footprint in bytes.",
            m.edge_table_footprint_bytes,
        );
        let _ = writeln!(
            out,
            "# HELP lp_pruning_state 1 for the current Figure-2 state, 0 otherwise."
        );
        let _ = writeln!(out, "# TYPE lp_pruning_state gauge");
        for state in ["INACTIVE", "OBSERVE", "SELECT", "PRUNE"] {
            let active = u64::from(m.state == state);
            let _ = writeln!(
                out,
                "lp_pruning_state{{state=\"{}\"}} {active}",
                escape_label_value(state)
            );
        }
        out
    }
}

impl Sink for PrometheusSink {
    fn record(&mut self, line: &TraceLine) {
        let mut m = match self.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match &line.event {
            Event::PhaseEnd { phase, nanos, .. } => match phase {
                GcPhase::Mark => m.mark_nanos_total += nanos,
                GcPhase::Sweep => m.sweep_nanos_total += nanos,
            },
            Event::Collection {
                state,
                live_bytes_after,
                live_objects_after,
                freed_bytes,
                freed_objects,
                pruned_refs,
                ..
            } => {
                m.collections_total += 1;
                m.live_bytes = *live_bytes_after;
                m.live_objects = *live_objects_after;
                m.freed_bytes_total += freed_bytes;
                m.freed_objects_total += freed_objects;
                m.pruned_refs_total += pruned_refs;
                m.state = state.clone();
            }
            Event::CounterDelta {
                ref_reads,
                barrier_cold_hits,
                stale_use_updates,
                pruned_access_throws,
                minor_collections,
                ..
            } => {
                m.ref_reads_total += ref_reads;
                m.barrier_cold_hits_total += barrier_cold_hits;
                m.stale_use_updates_total += stale_use_updates;
                m.pruned_access_throws_total += pruned_access_throws;
                m.minor_collections_total += minor_collections;
            }
            Event::EdgeCensus {
                edge_types,
                footprint_bytes,
                ..
            } => {
                m.edge_types = *edge_types;
                m.edge_table_footprint_bytes = *footprint_bytes;
            }
            Event::Alloc { bytes, .. } => {
                m.allocations_total += 1;
                m.allocated_bytes_total += bytes;
            }
            Event::Exhausted { .. } => m.exhaustions_total += 1,
            Event::Iteration { .. } => m.iterations_total += 1,
            Event::StateTransition { to, .. } => {
                m.state_transitions_total += 1;
                m.state = (*to).to_owned();
            }
            Event::SelectionEdge { .. } | Event::SelectionStale { .. } => {
                m.selections_total += 1;
            }
            Event::SnapshotEnd { nanos, .. } => {
                m.snapshots_total += 1;
                m.snapshot_nanos_total += nanos;
            }
            Event::VerifyHeap {
                violations, nanos, ..
            } => {
                m.verify_passes_total += 1;
                m.verify_nanos_total += nanos;
                m.verify_violations_total += violations;
            }
            Event::ClassReg { .. }
            | Event::PhaseBegin { .. }
            | Event::Freed { .. }
            | Event::SnapshotBegin { .. }
            | Event::VerifyViolation { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, event: Event) -> TraceLine {
        TraceLine {
            seq,
            ts_nanos: seq,
            event,
        }
    }

    #[test]
    fn folds_events_into_exposition_text() {
        let mut sink = PrometheusSink::new();
        let view = sink.clone();
        sink.record(&line(
            0,
            Event::Alloc {
                class: 1,
                bytes: 100,
            },
        ));
        sink.record(&line(
            1,
            Event::Collection {
                gc_index: 1,
                state: "OBSERVE".to_owned(),
                live_bytes_after: 4096,
                live_objects_after: 10,
                freed_bytes: 512,
                freed_objects: 2,
                pruned_refs: 0,
                mark_nanos: 10,
                sweep_nanos: 20,
            },
        ));
        sink.record(&line(
            2,
            Event::StateTransition {
                gc_index: 1,
                from: "OBSERVE",
                to: "SELECT",
                occupancy: 0.9,
                expected_threshold: 0.8,
                nearly_full_threshold: 0.95,
                exhausted_once: false,
            },
        ));
        let text = view.render();
        assert!(text.contains("lp_collections_total 1"));
        assert!(text.contains("lp_live_bytes 4096"));
        assert!(text.contains("lp_allocated_bytes_total 100"));
        assert!(text.contains("lp_pruning_state{state=\"SELECT\"} 1"));
        assert!(text.contains("lp_pruning_state{state=\"OBSERVE\"} 0"));
        assert!(text.contains("# TYPE lp_live_bytes gauge"));
        assert!(text.contains("# TYPE lp_collections_total counter"));
    }

    #[test]
    fn snapshot_events_fold_into_counters() {
        let mut sink = PrometheusSink::new();
        let view = sink.clone();
        sink.record(&line(0, Event::SnapshotBegin { gc_index: 3 }));
        sink.record(&line(
            1,
            Event::SnapshotEnd {
                gc_index: 3,
                objects: 10,
                edges: 9,
                live_bytes: 4096,
                nanos: 1500,
            },
        ));
        let text = view.render();
        assert!(text.contains("lp_heap_snapshots_total 1"));
        assert!(text.contains("lp_heap_snapshot_nanos_total 1500"));
    }

    #[test]
    fn label_values_escape_exposition_specials() {
        // The three characters the exposition format requires escaping.
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        // Real class names pass through unchanged.
        assert_eq!(
            escape_label_value("java.util.LinkedList$Node"),
            "java.util.LinkedList$Node"
        );
        assert_eq!(escape_label_value("Map<K,V>[]"), "Map<K,V>[]");
        // All three at once, in order.
        assert_eq!(escape_label_value("\"\\\n"), r#"\"\\\n"#);
    }
}
