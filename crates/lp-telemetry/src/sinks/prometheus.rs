//! Prometheus-style text exposition: the sink folds the event stream into
//! a small set of counters/gauges and renders them on demand in the
//! `text/plain; version=0.0.4` format a scraper would ingest.
//!
//! Multi-tenant hosts keep one sink per tenant and either fold them into a
//! host-wide aggregate with [`PrometheusSink::merge`] or render one merged
//! exposition with an injected `tenant` label via
//! [`PrometheusSink::merged_exposition`] — both go through the same typed
//! sample model, so label values are escaped exactly once and `# HELP` /
//! `# TYPE` headers appear once per family no matter how many tenants
//! contribute samples.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::bus::Sink;
use crate::event::{Event, GcPhase, TraceLine};

/// Escapes a label *value* per the Prometheus text exposition format
/// (v0.0.4): backslash, double quote and newline must be written as `\\`,
/// `\"` and `\n`. Class names are the labels that need this — real
/// workloads register names like `java.util.LinkedList$Node` today, but
/// nothing stops a VM from reporting generics, inner classes or
/// path-like names containing any of the three — and tenant names
/// injected by a multi-tenant host are operator input, so they get the
/// same treatment.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Exposition metric kind (the `# TYPE` line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
}

impl MetricKind {
    fn tag(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One typed sample: a family (name/help/kind) plus this sample's own
/// labels and value. The renderers work on these instead of splicing
/// strings, so injected labels compose with per-sample labels uniformly.
struct Sample {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    labels: Vec<(&'static str, String)>,
    value: u64,
}

#[derive(Debug, Default, Clone)]
struct Metrics {
    collections_total: u64,
    minor_collections_total: u64,
    mark_nanos_total: u64,
    sweep_nanos_total: u64,
    live_bytes: u64,
    live_objects: u64,
    freed_bytes_total: u64,
    freed_objects_total: u64,
    pruned_refs_total: u64,
    ref_reads_total: u64,
    barrier_cold_hits_total: u64,
    stale_use_updates_total: u64,
    pruned_access_throws_total: u64,
    allocations_total: u64,
    allocated_bytes_total: u64,
    exhaustions_total: u64,
    iterations_total: u64,
    state_transitions_total: u64,
    selections_total: u64,
    selections_stale: u64,
    selections_static: u64,
    selections_both: u64,
    snapshots_total: u64,
    snapshot_nanos_total: u64,
    verify_passes_total: u64,
    verify_nanos_total: u64,
    verify_violations_total: u64,
    edge_types: u64,
    edge_table_footprint_bytes: u64,
    state: String,
}

impl Metrics {
    /// The snapshot as typed samples, in a fixed family order. Every
    /// `Metrics` yields the same families in the same order, which is what
    /// lets the merged renderer zip per-tenant sample lists family by
    /// family.
    fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(32);
        let mut counter = |name, help, value| {
            out.push(Sample {
                name,
                help,
                kind: MetricKind::Counter,
                labels: Vec::new(),
                value,
            })
        };
        counter(
            "lp_collections_total",
            "Full garbage collections performed.",
            self.collections_total,
        );
        counter(
            "lp_minor_collections_total",
            "Nursery collections performed.",
            self.minor_collections_total,
        );
        counter(
            "lp_freed_bytes_total",
            "Bytes reclaimed by sweeps.",
            self.freed_bytes_total,
        );
        counter(
            "lp_freed_objects_total",
            "Objects reclaimed by sweeps.",
            self.freed_objects_total,
        );
        counter(
            "lp_pruned_refs_total",
            "References poisoned by PRUNE collections.",
            self.pruned_refs_total,
        );
        counter(
            "lp_ref_reads_total",
            "Reference loads through the conditional read barrier.",
            self.ref_reads_total,
        );
        counter(
            "lp_barrier_cold_hits_total",
            "Cold-path executions of the read barrier.",
            self.barrier_cold_hits_total,
        );
        counter(
            "lp_stale_use_updates_total",
            "Stale-use observations recorded in the edge table.",
            self.stale_use_updates_total,
        );
        counter(
            "lp_pruned_access_throws_total",
            "Accesses to poisoned references that threw.",
            self.pruned_access_throws_total,
        );
        counter(
            "lp_allocations_total",
            "Objects allocated.",
            self.allocations_total,
        );
        counter(
            "lp_allocated_bytes_total",
            "Bytes allocated.",
            self.allocated_bytes_total,
        );
        counter(
            "lp_heap_exhaustions_total",
            "Allocation failures after collection.",
            self.exhaustions_total,
        );
        counter(
            "lp_workload_iterations_total",
            "Workload driver iterations completed.",
            self.iterations_total,
        );
        counter(
            "lp_state_transitions_total",
            "Figure-2 state machine transitions.",
            self.state_transitions_total,
        );
        counter(
            "lp_selections_total",
            "SELECT decisions made.",
            self.selections_total,
        );
        counter(
            "lp_heap_snapshots_total",
            "Heap snapshots captured.",
            self.snapshots_total,
        );
        counter(
            "lp_heap_snapshot_nanos_total",
            "Cumulative wall time spent capturing heap snapshots.",
            self.snapshot_nanos_total,
        );
        counter(
            "lp_verify_passes_total",
            "Heap-sanitizer passes run.",
            self.verify_passes_total,
        );
        counter(
            "lp_verify_nanos_total",
            "Cumulative wall time spent in heap-sanitizer passes.",
            self.verify_nanos_total,
        );
        counter(
            "lp_verify_violations_total",
            "Heap invariant violations reported by the sanitizer.",
            self.verify_violations_total,
        );
        // Labeled family: HELP/TYPE once, one sample per label set. Every
        // label value renders even at zero so scrapes always see the full
        // signal breakdown.
        for (signal, count) in [
            ("stale", self.selections_stale),
            ("static", self.selections_static),
            ("both", self.selections_both),
        ] {
            out.push(Sample {
                name: "lp_selection_signal_total",
                help: "SELECT decisions by winning signal: the dynamic staleness threshold, the static liveness verdict, or both.",
                kind: MetricKind::Counter,
                labels: vec![("signal", signal.to_owned())],
                value: count,
            });
        }
        for (phase, nanos) in [
            ("mark", self.mark_nanos_total),
            ("sweep", self.sweep_nanos_total),
        ] {
            out.push(Sample {
                name: "lp_gc_phase_nanos_total",
                help: "Cumulative wall time per GC phase in nanoseconds.",
                kind: MetricKind::Counter,
                labels: vec![("phase", phase.to_owned())],
                value: nanos,
            });
        }
        let mut gauge = |name, help, value| {
            out.push(Sample {
                name,
                help,
                kind: MetricKind::Gauge,
                labels: Vec::new(),
                value,
            })
        };
        gauge(
            "lp_live_bytes",
            "Live bytes after the most recent collection.",
            self.live_bytes,
        );
        gauge(
            "lp_live_objects",
            "Live objects after the most recent collection.",
            self.live_objects,
        );
        gauge(
            "lp_edge_types",
            "Live entries in the edge table.",
            self.edge_types,
        );
        gauge(
            "lp_edge_table_footprint_bytes",
            "Edge table footprint in bytes.",
            self.edge_table_footprint_bytes,
        );
        for state in ["INACTIVE", "OBSERVE", "SELECT", "PRUNE"] {
            out.push(Sample {
                name: "lp_pruning_state",
                help: "1 for the current Figure-2 state, 0 otherwise.",
                kind: MetricKind::Gauge,
                labels: vec![("state", state.to_owned())],
                value: u64::from(self.state == state),
            });
        }
        out
    }

    /// Folds `other` into `self`: counters and byte/object gauges sum; the
    /// state label keeps `self`'s value unless it was never set (an
    /// aggregate of several state machines has no single state — callers
    /// that need per-tenant states should use
    /// [`PrometheusSink::merged_exposition`] instead).
    fn merge_from(&mut self, other: &Metrics) {
        self.collections_total += other.collections_total;
        self.minor_collections_total += other.minor_collections_total;
        self.mark_nanos_total += other.mark_nanos_total;
        self.sweep_nanos_total += other.sweep_nanos_total;
        self.live_bytes += other.live_bytes;
        self.live_objects += other.live_objects;
        self.freed_bytes_total += other.freed_bytes_total;
        self.freed_objects_total += other.freed_objects_total;
        self.pruned_refs_total += other.pruned_refs_total;
        self.ref_reads_total += other.ref_reads_total;
        self.barrier_cold_hits_total += other.barrier_cold_hits_total;
        self.stale_use_updates_total += other.stale_use_updates_total;
        self.pruned_access_throws_total += other.pruned_access_throws_total;
        self.allocations_total += other.allocations_total;
        self.allocated_bytes_total += other.allocated_bytes_total;
        self.exhaustions_total += other.exhaustions_total;
        self.iterations_total += other.iterations_total;
        self.state_transitions_total += other.state_transitions_total;
        self.selections_total += other.selections_total;
        self.selections_stale += other.selections_stale;
        self.selections_static += other.selections_static;
        self.selections_both += other.selections_both;
        self.snapshots_total += other.snapshots_total;
        self.snapshot_nanos_total += other.snapshot_nanos_total;
        self.verify_passes_total += other.verify_passes_total;
        self.verify_nanos_total += other.verify_nanos_total;
        self.verify_violations_total += other.verify_violations_total;
        self.edge_types += other.edge_types;
        self.edge_table_footprint_bytes += other.edge_table_footprint_bytes;
        if self.state.is_empty() {
            self.state = other.state.clone();
        }
    }
}

/// A group of samples with the label set to prepend to each of them.
type SampleGroup<'a> = (Vec<(&'a str, &'a str)>, Vec<Sample>);

/// Renders sample groups family-major: `# HELP`/`# TYPE` once per family
/// (in the order the first group introduces them), then every group's
/// samples for that family with the group's extra labels prepended. All
/// label values are escaped here, in one place.
fn render_groups(groups: &[SampleGroup<'_>]) -> String {
    let mut order: Vec<&'static str> = Vec::new();
    for (_, samples) in groups {
        for sample in samples {
            if !order.contains(&sample.name) {
                order.push(sample.name);
            }
        }
    }
    let mut out = String::new();
    for name in order {
        let Some(first) = groups
            .iter()
            .flat_map(|(_, s)| s.iter())
            .find(|s| s.name == name)
        else {
            continue;
        };
        let _ = writeln!(out, "# HELP {name} {}", first.help);
        let _ = writeln!(out, "# TYPE {name} {}", first.kind.tag());
        for (extra, samples) in groups {
            for sample in samples.iter().filter(|s| s.name == name) {
                let mut labels = String::new();
                for (k, v) in extra
                    .iter()
                    .map(|(k, v)| (*k, (*v).to_owned()))
                    .chain(sample.labels.iter().map(|(k, v)| (*k, v.clone())))
                {
                    if !labels.is_empty() {
                        labels.push(',');
                    }
                    let _ = write!(labels, "{k}=\"{}\"", escape_label_value(&v));
                }
                if labels.is_empty() {
                    let _ = writeln!(out, "{name} {}", sample.value);
                } else {
                    let _ = writeln!(out, "{name}{{{labels}}} {}", sample.value);
                }
            }
        }
    }
    out
}

/// Aggregating sink whose [`render`](PrometheusSink::render) produces a
/// Prometheus text-exposition snapshot. Clones share state, so keep one
/// clone to render from while the bus owns the other.
#[derive(Clone, Debug, Default)]
pub struct PrometheusSink {
    metrics: Arc<Mutex<Metrics>>,
}

impl PrometheusSink {
    /// An empty snapshot sink.
    pub fn new() -> PrometheusSink {
        PrometheusSink::default()
    }

    fn snapshot(&self) -> Metrics {
        match self.metrics.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Renders the current snapshot in Prometheus text exposition format.
    pub fn render(&self) -> String {
        render_groups(&[(Vec::new(), self.snapshot().samples())])
    }

    /// Renders the current snapshot with `labels` injected into every
    /// sample (before each sample's own labels). Values are escaped; use
    /// this to expose one tenant's metrics as e.g.
    /// `lp_live_bytes{tenant="checkout"}`.
    pub fn render_labeled(&self, labels: &[(&str, &str)]) -> String {
        render_groups(&[(labels.to_vec(), self.snapshot().samples())])
    }

    /// Folds `other`'s counters and gauges into `self` (summing; see
    /// `Metrics::merge_from` for the state label). Merging a sink with
    /// itself (same shared state) is a no-op rather than a double-count.
    pub fn merge(&self, other: &PrometheusSink) {
        if Arc::ptr_eq(&self.metrics, &other.metrics) {
            return;
        }
        let theirs = other.snapshot();
        let mut mine = match self.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        mine.merge_from(&theirs);
    }

    /// Renders one exposition from several per-tenant sinks, injecting the
    /// given label (typically `"tenant"`) with each sink's value. `# HELP`
    /// and `# TYPE` appear once per family; every sample of every tenant
    /// carries its tenant label, so per-tenant states and counters stay
    /// distinguishable — the exposition a multi-tenant host's `/metrics`
    /// endpoint serves.
    pub fn merged_exposition(label: &str, parts: &[(&str, &PrometheusSink)]) -> String {
        let groups: Vec<SampleGroup<'_>> = parts
            .iter()
            .map(|(value, sink)| (vec![(label, *value)], sink.snapshot().samples()))
            .collect();
        render_groups(&groups)
    }
}

impl Sink for PrometheusSink {
    fn record(&mut self, line: &TraceLine) {
        let mut m = match self.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match &line.event {
            Event::PhaseEnd { phase, nanos, .. } => match phase {
                GcPhase::Mark => m.mark_nanos_total += nanos,
                GcPhase::Sweep => m.sweep_nanos_total += nanos,
            },
            Event::Collection {
                state,
                live_bytes_after,
                live_objects_after,
                freed_bytes,
                freed_objects,
                pruned_refs,
                ..
            } => {
                m.collections_total += 1;
                m.live_bytes = *live_bytes_after;
                m.live_objects = *live_objects_after;
                m.freed_bytes_total += freed_bytes;
                m.freed_objects_total += freed_objects;
                m.pruned_refs_total += pruned_refs;
                m.state = state.clone();
            }
            Event::CounterDelta {
                ref_reads,
                barrier_cold_hits,
                stale_use_updates,
                pruned_access_throws,
                minor_collections,
                ..
            } => {
                m.ref_reads_total += ref_reads;
                m.barrier_cold_hits_total += barrier_cold_hits;
                m.stale_use_updates_total += stale_use_updates;
                m.pruned_access_throws_total += pruned_access_throws;
                m.minor_collections_total += minor_collections;
            }
            Event::EdgeCensus {
                edge_types,
                footprint_bytes,
                ..
            } => {
                m.edge_types = *edge_types;
                m.edge_table_footprint_bytes = *footprint_bytes;
            }
            Event::Alloc { bytes, .. } => {
                m.allocations_total += 1;
                m.allocated_bytes_total += bytes;
            }
            Event::Exhausted { .. } => m.exhaustions_total += 1,
            Event::Iteration { .. } => m.iterations_total += 1,
            Event::StateTransition { to, .. } => {
                m.state_transitions_total += 1;
                m.state = (*to).to_owned();
            }
            Event::SelectionEdge { .. } | Event::SelectionStale { .. } => {
                m.selections_total += 1;
                m.selections_stale += 1;
            }
            Event::SelectionStatic { signal, .. } => {
                m.selections_total += 1;
                if *signal == "both" {
                    m.selections_both += 1;
                } else {
                    m.selections_static += 1;
                }
            }
            Event::SnapshotEnd { nanos, .. } => {
                m.snapshots_total += 1;
                m.snapshot_nanos_total += nanos;
            }
            Event::VerifyHeap {
                violations, nanos, ..
            } => {
                m.verify_passes_total += 1;
                m.verify_nanos_total += nanos;
                m.verify_violations_total += violations;
            }
            // Host-plane events (admission, arbitration, run terminations)
            // are counted by the host's own exposition, not the per-tenant
            // runtime sink. Mark quanta and minor collections are already
            // rolled up elsewhere: quantum mark time lands in the Mark
            // `PhaseEnd`, and minor-collection counts arrive via
            // `CounterDelta::minor_collections`.
            Event::ClassReg { .. }
            | Event::PhaseBegin { .. }
            | Event::MarkQuantum { .. }
            | Event::MinorCollection { .. }
            | Event::Freed { .. }
            | Event::SnapshotBegin { .. }
            | Event::VerifyViolation { .. }
            | Event::TenantAdmit { .. }
            | Event::TenantShed { .. }
            | Event::ArbiterAction { .. }
            | Event::RunEnd { .. }
            | Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::LeakSuspected { .. }
            | Event::PostmortemWritten { .. }
            | Event::CheckpointBegin { .. }
            | Event::CheckpointEnd { .. }
            | Event::Restore { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, event: Event) -> TraceLine {
        TraceLine {
            seq,
            ts_nanos: seq,
            event,
        }
    }

    fn collection(live_bytes: u64, state: &str) -> Event {
        Event::Collection {
            gc_index: 1,
            state: state.to_owned(),
            live_bytes_after: live_bytes,
            live_objects_after: 10,
            freed_bytes: 512,
            freed_objects: 2,
            pruned_refs: 1,
            mark_nanos: 10,
            sweep_nanos: 20,
            flush_nanos: None,
        }
    }

    #[test]
    fn folds_events_into_exposition_text() {
        let mut sink = PrometheusSink::new();
        let view = sink.clone();
        sink.record(&line(
            0,
            Event::Alloc {
                class: 1,
                bytes: 100,
            },
        ));
        sink.record(&line(
            1,
            Event::Collection {
                gc_index: 1,
                state: "OBSERVE".to_owned(),
                live_bytes_after: 4096,
                live_objects_after: 10,
                freed_bytes: 512,
                freed_objects: 2,
                pruned_refs: 0,
                mark_nanos: 10,
                sweep_nanos: 20,
                flush_nanos: None,
            },
        ));
        sink.record(&line(
            2,
            Event::StateTransition {
                gc_index: 1,
                from: "OBSERVE",
                to: "SELECT",
                occupancy: 0.9,
                expected_threshold: 0.8,
                nearly_full_threshold: 0.95,
                exhausted_once: false,
            },
        ));
        let text = view.render();
        assert!(text.contains("lp_collections_total 1"));
        assert!(text.contains("lp_live_bytes 4096"));
        assert!(text.contains("lp_allocated_bytes_total 100"));
        assert!(text.contains("lp_pruning_state{state=\"SELECT\"} 1"));
        assert!(text.contains("lp_pruning_state{state=\"OBSERVE\"} 0"));
        assert!(text.contains("lp_gc_phase_nanos_total{phase=\"mark\"} 0"));
        assert!(text.contains("# TYPE lp_live_bytes gauge"));
        assert!(text.contains("# TYPE lp_collections_total counter"));
    }

    #[test]
    fn selection_signals_render_as_a_labeled_family() {
        let mut sink = PrometheusSink::new();
        let view = sink.clone();
        // Before any selection, every label value renders at zero.
        let text = view.render();
        assert!(text.contains("lp_selection_signal_total{signal=\"stale\"} 0"));
        assert!(text.contains("lp_selection_signal_total{signal=\"static\"} 0"));
        assert!(text.contains("lp_selection_signal_total{signal=\"both\"} 0"));
        sink.record(&line(
            0,
            Event::SelectionEdge {
                gc_index: 1,
                src: 1,
                tgt: 2,
                bytes: 64,
                runners_up: Vec::new(),
            },
        ));
        sink.record(&line(
            1,
            Event::SelectionStatic {
                gc_index: 2,
                src: 1,
                tgt: 2,
                bytes: 64,
                signal: "static",
                runners_up: Vec::new(),
            },
        ));
        sink.record(&line(
            2,
            Event::SelectionStatic {
                gc_index: 3,
                src: 1,
                tgt: 2,
                bytes: 64,
                signal: "both",
                runners_up: Vec::new(),
            },
        ));
        let text = view.render();
        assert!(text.contains("lp_selections_total 3"), "{text}");
        assert!(text.contains("lp_selection_signal_total{signal=\"stale\"} 1"));
        assert!(text.contains("lp_selection_signal_total{signal=\"static\"} 1"));
        assert!(text.contains("lp_selection_signal_total{signal=\"both\"} 1"));
    }

    #[test]
    fn snapshot_events_fold_into_counters() {
        let mut sink = PrometheusSink::new();
        let view = sink.clone();
        sink.record(&line(0, Event::SnapshotBegin { gc_index: 3 }));
        sink.record(&line(
            1,
            Event::SnapshotEnd {
                gc_index: 3,
                objects: 10,
                edges: 9,
                live_bytes: 4096,
                nanos: 1500,
            },
        ));
        let text = view.render();
        assert!(text.contains("lp_heap_snapshots_total 1"));
        assert!(text.contains("lp_heap_snapshot_nanos_total 1500"));
    }

    #[test]
    fn label_values_escape_exposition_specials() {
        // The three characters the exposition format requires escaping.
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        // Real class names pass through unchanged.
        assert_eq!(
            escape_label_value("java.util.LinkedList$Node"),
            "java.util.LinkedList$Node"
        );
        assert_eq!(escape_label_value("Map<K,V>[]"), "Map<K,V>[]");
        // All three at once, in order.
        assert_eq!(escape_label_value("\"\\\n"), r#"\"\\\n"#);
    }

    #[test]
    fn render_labeled_injects_and_escapes_the_tenant_label() {
        let mut sink = PrometheusSink::new();
        sink.record(&line(0, collection(4096, "OBSERVE")));
        sink.record(&line(
            1,
            Event::PhaseEnd {
                gc_index: 1,
                phase: GcPhase::Mark,
                nanos: 10,
                threads: 1,
                busy_nanos: 10,
            },
        ));
        let text = sink.render_labeled(&[("tenant", "a\"b\\c\nd")]);
        // The injected value is escaped once, exactly.
        assert!(
            text.contains(r#"lp_live_bytes{tenant="a\"b\\c\nd"} 4096"#),
            "{text}"
        );
        // Injected labels compose with per-sample labels.
        assert!(text.contains(r#"lp_pruning_state{tenant="a\"b\\c\nd",state="OBSERVE"} 1"#));
        assert!(text.contains(r#"lp_gc_phase_nanos_total{tenant="a\"b\\c\nd",phase="mark"} 10"#));
        // Headers are unlabeled.
        assert!(text.contains("# TYPE lp_live_bytes gauge"));
    }

    #[test]
    fn merge_sums_counters_and_is_self_merge_safe() {
        let mut a = PrometheusSink::new();
        let mut b = PrometheusSink::new();
        a.record(&line(0, collection(1000, "OBSERVE")));
        b.record(&line(0, collection(2000, "SELECT")));
        b.record(&line(
            1,
            Event::Alloc {
                class: 1,
                bytes: 64,
            },
        ));
        a.merge(&b);
        let text = a.render();
        assert!(text.contains("lp_collections_total 2"), "{text}");
        assert!(text.contains("lp_live_bytes 3000"));
        assert!(text.contains("lp_freed_bytes_total 1024"));
        assert!(text.contains("lp_allocations_total 1"));
        // The aggregate keeps self's state label.
        assert!(text.contains("lp_pruning_state{state=\"OBSERVE\"} 1"));

        // Merging a clone (shared state) must not double-count.
        let alias = a.clone();
        a.merge(&alias);
        assert!(a.render().contains("lp_collections_total 2"));
    }

    #[test]
    fn merged_exposition_emits_help_once_and_labels_every_sample() {
        let mut a = PrometheusSink::new();
        let mut b = PrometheusSink::new();
        a.record(&line(0, collection(1000, "OBSERVE")));
        b.record(&line(0, collection(2000, "PRUNE")));
        let text =
            PrometheusSink::merged_exposition("tenant", &[("checkout", &a), ("search\"2\"", &b)]);
        assert_eq!(text.matches("# HELP lp_live_bytes ").count(), 1);
        assert_eq!(text.matches("# TYPE lp_live_bytes gauge").count(), 1);
        assert!(text.contains("lp_live_bytes{tenant=\"checkout\"} 1000"));
        assert!(text.contains(r#"lp_live_bytes{tenant="search\"2\""} 2000"#));
        // Per-tenant states survive, unlike a summed merge.
        assert!(text.contains("lp_pruning_state{tenant=\"checkout\",state=\"OBSERVE\"} 1"));
        assert!(text.contains(r#"lp_pruning_state{tenant="search\"2\"",state="PRUNE"} 1"#));
        // Families stay contiguous: each family header appears before any
        // sample of the next family.
        let help_count = text.matches("# HELP ").count();
        let type_count = text.matches("# TYPE ").count();
        assert_eq!(help_count, type_count);
    }
}
